#!/usr/bin/env python3
"""Energy/ED2P report: the Figure 10 trade-off on one workload.

Compares the baseline core, the shrunken core without LTP, and the
shrunken core with the proposed LTP, reporting the window-structure
energy breakdown and the ED2P delta vs the baseline — the efficiency
argument of Section 5.6.
"""

import sys

from repro import (SimConfig, baseline_params, ltp_params, no_ltp,
                   proposed_ltp, run_sim)
from repro.energy.model import compute_energy, relative_ed2p
from repro.harness.charts import bar_chart
from repro.harness.report import render_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lattice_milc"
    configs = [
        ("baseline IQ:64 RF:128", baseline_params(), no_ltp()),
        ("small IQ:32 RF:96", ltp_params(), no_ltp()),
        ("small + LTP", ltp_params(), proposed_ltp()),
    ]
    results = []
    for label, core, ltp in configs:
        run = run_sim(SimConfig(workload=workload, core=core, ltp=ltp))
        energy = compute_energy(core, ltp, run)
        results.append((label, run, energy))

    base_energy = results[0][2]
    rows = []
    for label, run, energy in results:
        rows.append([
            label, run["cycles"], energy.iq, energy.rf,
            energy.ltp + energy.uit,
            relative_ed2p(energy, base_energy),
        ])
    print(render_table(
        ["configuration", "cycles", "E(IQ)", "E(RF)", "E(LTP+UIT)",
         "ED2P vs base (%)"],
        rows, precision=0,
        title=f"Window-structure energy — {workload}"))
    print()
    print(bar_chart(
        [(label, relative_ed2p(energy, base_energy))
         for label, _, energy in results],
        title="IQ/RF ED2P vs baseline (%; more negative is better)"))


if __name__ == "__main__":
    main()
