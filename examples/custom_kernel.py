#!/usr/bin/env python3
"""Write your own kernel and run it through the full stack.

Shows the lowest-level public API: assemble a program, execute it
functionally to get a dynamic trace, classify it with the oracle, and
run the trace through the cycle model with and without LTP.
"""

from repro import CoreParams, Pipeline, annotate_trace, limit_ltp
from repro.harness.report import render_table
from repro.isa import Executor, Memory, assemble
from repro.ltp.controller import LTPController

# A software prefetch-unfriendly kernel: strided walk with a stride
# learned from memory, plus a reduction.
KERNEL = """
    li   r1, 0x40000000       # table base
    li   r2, 0                # index
    li   r3, 0                # accumulator
    li   r9, 0                # loop counter
    li   r10, 300
loop:
    mul  r4, r2, r11          # scatter the index      (urgent)
    andi r4, r4, 0x1FFFFF     # bound it to 16 MB      (urgent)
    slli r4, r4, 3
    add  r4, r1, r4
    ld   r5, r4, 0            # gather (DRAM miss)
    add  r3, r3, r5           # reduce                 (NU + NR)
    addi r2, r2, 1
    addi r9, r9, 1
    blt  r9, r10, loop
    halt
"""


def run(trace, core, ltp=None):
    if ltp is None:
        pipeline = Pipeline(trace, params=core)
    else:
        oracle = annotate_trace(trace, core.mem)
        controller = LTPController(ltp, core.mem.dram_latency,
                                   oracle=oracle)
        pipeline = Pipeline(trace, params=core, ltp=ltp,
                            controller=controller)
    return pipeline.run()


def main() -> None:
    program = assemble(KERNEL, name="custom")
    executor = Executor(program, memory=Memory(),
                        int_regs={"r11": 2654435761})
    trace = list(executor.run(4000))
    print(f"traced {len(trace)} dynamic instructions "
          f"({sum(d.is_load for d in trace)} loads)")

    small = CoreParams(iq_size=16)
    small.mem.mshrs = None
    big = CoreParams(iq_size=256)
    big.mem.mshrs = None

    rows = []
    for label, core, ltp in [
            ("IQ:16", small, None),
            ("IQ:16 + ideal LTP", small, limit_ltp("nr+nu")),
            ("IQ:256", big, None)]:
        stats = run(trace, core, ltp)
        rows.append([label, stats.cpi, stats.extra["avg_outstanding"],
                     stats.ltp_parked])
    print(render_table(
        ["config", "CPI", "outstanding", "parked"],
        rows, title="Custom kernel through the cycle model"))


if __name__ == "__main__":
    main()
