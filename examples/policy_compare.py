#!/usr/bin/env python3
"""Compare allocation policies on one workload via the policy seam.

The pipeline's rename stage drives a pluggable
:class:`repro.policies.AllocationPolicy`: the paper's LTP is one
registered policy, and this example puts it side by side with the
stalling baseline, perfect oracle classification, and the
criticality-blind strawmen — one ``"policy"`` sweep axis, no special
cases.

Usage::

    python examples/policy_compare.py [workload]
"""

import sys

from repro.api import Session, SweepSpec, policy_descriptions
from repro.core.params import ltp_params
from repro.harness.report import render_table
from repro.ltp.config import proposed_ltp


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lattice_milc"
    policies = ["baseline-stall", "ltp", "oracle-park", "random-park",
                "depth-park"]
    spec = SweepSpec(workloads=[workload], core=ltp_params(),
                     ltp=proposed_ltp(), axes={"policy": policies})

    with Session() as session:
        results = session.sweep(spec)

    baseline_cycles = results[0]["cycles"]  # baseline-stall is first
    rows = []
    for result in results:
        rows.append([
            result.config.policy,
            result.cpi,
            (baseline_cycles / result["cycles"] - 1.0) * 100.0,
            int(result["ltp_parked"]),
            result["avg_ltp"],
        ])
    print(render_table(
        ["policy", "CPI", "perf vs baseline-stall (%)", "parked insts",
         "avg parked"],
        rows, title=f"Allocation policies — workload: {workload} "
                    f"(IQ:32 RF:96 core)"))
    print()
    print("Criticality-aware parking (ltp, oracle-park) should recover "
          "performance the small core loses;\nrandom-park parks plenty "
          "but blindly — the paper's argument, now one sweep axis.")
    print()
    for name, description in policy_descriptions().items():
        print(f"  {name:15s} {description}")


if __name__ == "__main__":
    main()
