#!/usr/bin/env python3
"""A miniature of the paper's Section 4 limit study.

Sweeps the IQ size with every other resource unlimited, comparing no
LTP against the ideal (unlimited, oracle-classified) LTP variants —
one column of the paper's Figure 6, printed as text.

Usage::

    python examples/limit_study_mini.py [workload] [resource]

where *resource* is one of iq / rf / lq / sq.
"""

import sys

from repro.harness.experiments import (SWEEP_BASELINE, SWEEP_SIZES,
                                       _limit_core)
from repro.harness.config import SimConfig
from repro.harness.report import render_table, size_label
from repro.harness.runner import run_sim
from repro.ltp.config import limit_ltp, no_ltp


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lattice_milc"
    resource = sys.argv[2] if len(sys.argv) > 2 else "iq"
    sizes = SWEEP_SIZES[resource]

    base_core = _limit_core(resource, SWEEP_BASELINE[resource])
    base = run_sim(SimConfig(workload=workload, core=base_core,
                             ltp=no_ltp()))
    base_cycles = base["cycles"]

    variants = [("no-ltp", no_ltp()), ("ltp-nr", limit_ltp("nr")),
                ("ltp-nu", limit_ltp("nu")),
                ("ltp-nr+nu", limit_ltp("nr+nu"))]
    rows = []
    for label, ltp in variants:
        row = [label]
        for size in sizes:
            core = _limit_core(resource, size)
            result = run_sim(SimConfig(workload=workload, core=core,
                                       ltp=ltp))
            row.append((base_cycles / result["cycles"] - 1.0) * 100.0)
        rows.append(row)

    headers = ["config"] + [size_label(s) for s in sizes]
    print(render_table(
        headers, rows, precision=1,
        title=(f"Limit study ({resource.upper()} sweep, {workload}): "
               f"perf vs {resource.upper()}:"
               f"{SWEEP_BASELINE[resource]} baseline (%)")))
    print()
    print("Expected shape (paper Fig. 6): no-ltp degrades as the "
          "resource shrinks; the LTP rows stay near 0 much longer.")


if __name__ == "__main__":
    main()
