#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on one workload.

Runs three configurations of the milc-like kernel:

1. the baseline core (IQ 64, RF 128),
2. the shrunken core (IQ 32, RF 96) without LTP — it loses performance,
3. the shrunken core *with* the proposed LTP (128-entry 4-port queue,
   256-entry UIT, NU-only) — it recovers the baseline's performance.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import (SimConfig, baseline_params, ltp_params, no_ltp,
                   proposed_ltp, run_sim)
from repro.harness.report import render_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lattice_milc"
    configs = [
        ("baseline IQ:64 RF:128", baseline_params(), no_ltp()),
        ("small IQ:32 RF:96", ltp_params(), no_ltp()),
        ("small + LTP (proposed)", ltp_params(), proposed_ltp()),
    ]
    rows = []
    base_cycles = None
    for label, core, ltp in configs:
        result = run_sim(SimConfig(workload=workload, core=core, ltp=ltp))
        if base_cycles is None:
            base_cycles = result["cycles"]
        rows.append([
            label,
            result["cpi"],
            (base_cycles / result["cycles"] - 1.0) * 100.0,
            result["avg_outstanding"],
            result["avg_ltp"],
            100.0 * result["ltp_enabled_fraction"],
        ])
    print(render_table(
        ["configuration", "CPI", "perf vs base (%)",
         "outstanding reqs", "insts in LTP", "LTP enabled %"],
        rows, title=f"LTP quickstart — workload: {workload}"))
    print()
    print("The third row should recover (or beat) the first row's CPI "
          "with half the IQ and 25% fewer registers.")


if __name__ == "__main__":
    main()
