#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on one workload.

Runs three configurations of the milc-like kernel through the
:mod:`repro.api` session layer:

1. the baseline core (IQ 64, RF 128),
2. the shrunken core (IQ 32, RF 96) without LTP — it loses performance,
3. the shrunken core *with* the proposed LTP (128-entry 4-port queue,
   256-entry UIT, NU-only) — it recovers the baseline's performance.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import (Session, SimConfig, baseline_params, ltp_params,
                   no_ltp, proposed_ltp)
from repro.harness.report import render_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "lattice_milc"
    labels_and_configs = [
        ("baseline IQ:64 RF:128",
         SimConfig(workload=workload, core=baseline_params(), ltp=no_ltp())),
        ("small IQ:32 RF:96",
         SimConfig(workload=workload, core=ltp_params(), ltp=no_ltp())),
        ("small + LTP (proposed)",
         SimConfig(workload=workload, core=ltp_params(),
                   ltp=proposed_ltp())),
    ]

    # A Session owns the trace/oracle/result caches and the execution
    # backend; run_many simulates each distinct config exactly once and
    # returns typed SimResults in order.
    #
    # The legacy one-liner still works and is equivalent to running on
    # the process-global default session:
    #
    #     from repro import run_sim
    #     stats = run_sim(config)          # plain stats dict
    with Session() as session:
        results = session.run_many([c for _, c in labels_and_configs])

    rows = []
    base_cycles = results[0]["cycles"]
    for (label, _), result in zip(labels_and_configs, results):
        rows.append([
            label,
            result.cpi,
            (base_cycles / result["cycles"] - 1.0) * 100.0,
            result["avg_outstanding"],
            result["avg_ltp"],
            100.0 * result["ltp_enabled_fraction"],
        ])
    print(render_table(
        ["configuration", "CPI", "perf vs base (%)",
         "outstanding reqs", "insts in LTP", "LTP enabled %"],
        rows, title=f"LTP quickstart — workload: {workload}"))
    print()
    print("The third row should recover (or beat) the first row's CPI "
          "with half the IQ and 25% fewer registers.")
    sources = ", ".join(f"{r.source}" for r in results)
    print(f"(result sources this run: {sources})")


if __name__ == "__main__":
    main()
