#!/usr/bin/env python3
"""Walk through the paper's Figure 2 example, end to end.

Assembles the ``C[i] = B[A[j--]] + 5`` loop, executes it functionally,
runs the oracle classification, and prints each static instruction with
its Urgent/Non-Urgent x Ready/Non-Ready class — the same table as the
paper's Figure 2.  Then shows what an online (UIT-based) classifier
learns after a few hundred iterations.
"""

from repro.core.inflight import InFlightInst
from repro.harness.report import render_table
from repro.ltp.classifier import OnlineClassifier
from repro.ltp.oracle import annotate_trace
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("indirect_fig2")
    print("Kernel (the paper's Figure 2 loop):")
    print(workload.program.listing())
    print()

    trace = workload.trace(4000)
    oracle = annotate_trace(trace, warm_regions=workload.warm_regions)

    # majority-vote the dynamic classification per static instruction
    per_pc = {}
    for i, dyn in enumerate(trace[400:], start=400):
        entry = per_pc.setdefault(dyn.pc, [0, 0, 0])
        entry[0] += 1
        entry[1] += oracle.urgent[i]
        entry[2] += oracle.non_ready[i]

    # train the online classifier the way the pipeline would
    online = OnlineClassifier(uit_size=256)
    for i, dyn in enumerate(trace):
        online.observe_rename(InFlightInst(dyn))
        if oracle.long_latency[i]:
            online.on_long_latency_commit(dyn.pc)

    rows = []
    for pc in sorted(per_pc):
        count, urgent_votes, nr_votes = per_pc[pc]
        urgent = urgent_votes / count > 0.5
        non_ready = nr_votes / count > 0.5
        oracle_class = (("U" if urgent else "NU") + "+"
                        + ("NR" if non_ready else "R"))
        learned = "U" if online.uit.contains(pc) else "NU"
        rows.append([pc, workload.program[pc].render(), oracle_class,
                     learned])
    print(render_table(
        ["pc", "instruction", "oracle class", "UIT learned"],
        rows, title="Figure 2 classification (oracle vs learned UIT)"))
    print()
    print("Urgent = ancestor of a long-latency load (the B[] miss);")
    print("Non-Ready = descendant of an in-flight long-latency load.")


if __name__ == "__main__":
    main()
