#!/usr/bin/env python
"""CI driver for sharded, resumable sweeps.

Each CI matrix job runs one key-stable shard of the headline LTP sweep
into its own result store; a final job merges the shard artifacts and
proves the union is exactly — bit for bit — what an unsharded serial
run produces, and that resuming from the merged store simulates
nothing.  From the repo root::

    python scripts/ci_sweep.py run    --shard 0/4 --store stores/shard0.jsonl
    python scripts/ci_sweep.py merge  --store merged.jsonl stores/*.jsonl
    python scripts/ci_sweep.py verify --store merged.jsonl
    python scripts/ci_sweep.py check-resume --store merged.jsonl
    python scripts/ci_sweep.py coordinate --shards 4 --jobs 4 \\
        --store coordinated.jsonl
    python scripts/ci_sweep.py compare merged.jsonl coordinated.jsonl
    python scripts/ci_sweep.py remote --workers 2 --kill-one \\
        --store remote.jsonl
    python scripts/ci_sweep.py daemon --workers 2 --store client.jsonl \\
        --daemon-store daemon.jsonl
    python scripts/ci_sweep.py inspect-check --report inspect.json

``coordinate`` drives every shard from one process (the
``repro sweep --coordinate`` engine); ``compare`` asserts two stores
are bit-for-bit interchangeable (same sweep, same keys, identical
statistics) — CI uses it to prove the coordinated store equals the
k-invocation shard union.  ``remote`` spawns a real ``repro worker``
fleet as subprocesses and runs the sweep through ``--executor
remote`` (``--kill-one`` murders a worker after the first landed
point, proving retry-on-survivors); ``daemon`` spawns a fleet plus a
``repro serve`` daemon and submits the sweep as a client.

``inspect-check`` is the anomaly-injection gate for the online sweep
QA (:mod:`repro.api.inspect`): it drives the sweep through a
tampering ``MockExecutor`` that injects a scripted retry, a
stat-conservation violation and a consistent IPC outlier, then
asserts the ``SweepInspector`` flags exactly the injected points, the
store carries their annotation rows, and a resumed sweep
re-simulates exactly the quarantined keys and lands bit-identical to
a clean run.

``--preset``/``--spec``, ``--warmup`` and ``--measure`` select the
sweep; every subcommand must be given the same values (the store binds
the spec's ``sweep_id`` and refuses a mismatch).  The driver is plain
:mod:`repro.api` — anything it does can be scripted directly.

``run``, ``coordinate`` and ``remote`` take ``--batch-size``: the cap
on how many trace-identical points execute as one trace-shared batch
(``1`` disables batching).  CI's batched-equivalence job runs the same
sweep batched and unbatched and ``compare``\\ s the stores, proving
batching is a pure optimisation.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.api import (CoordinatorBackend, MockExecutor,  # noqa: E402
                       ResultStore, Session, SweepInspector, SweepSpec,
                       backend_for_jobs, merge_stores, parse_shard)
from repro.harness.experiments import resolve_sweep_spec  # noqa: E402


def build_spec(args) -> SweepSpec:
    source = str(args.spec) if args.spec is not None else args.preset
    return resolve_sweep_spec(source, warmup=args.warmup,
                              measure=args.measure, engine=args.engine)


def add_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", default="ltp-queues",
                        help="registered sweep preset (default: "
                             "ltp-queues)")
    parser.add_argument("--spec", type=Path, default=None,
                        help="SweepSpec JSON file (overrides --preset)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warmup instruction budget per point")
    parser.add_argument("--measure", type=int, default=None,
                        help="measured instruction budget per point")
    parser.add_argument("--engine", choices=["object", "kernel"],
                        default=None,
                        help="simulation engine for every point "
                             "(every subcommand of one CI leg must "
                             "agree; the sweep_id changes with it)")


def cmd_run(args) -> int:
    spec = build_spec(args)
    shard = parse_shard(args.shard) if args.shard else None
    backend = backend_for_jobs(args.jobs, batch_size=args.batch_size)
    with Session() as session, ResultStore(args.store) as store:
        results = session.sweep(spec, backend=backend,
                                store=store, shard=shard)
    simulated = sum(1 for r in results if not r.cached)
    label = f"shard {args.shard}" if args.shard else "unsharded"
    print(f"sweep {spec.sweep_id()} {label}: {len(results)} points, "
          f"{simulated} simulated -> {args.store}")
    return 0


def cmd_coordinate(args) -> int:
    """Run every shard of the sweep from this one process."""
    spec = build_spec(args)
    coordinator = CoordinatorBackend(shards=args.shards, jobs=args.jobs,
                                     chunksize=args.chunksize,
                                     batch_size=args.batch_size)
    with Session() as session, ResultStore(args.store) as store:
        results = coordinator.run(session, spec, store=store)
    simulated = sum(1 for r in results if not r.cached)
    report = coordinator.last_report
    print(f"sweep {spec.sweep_id()} coordinated over "
          f"{report['shards']} shard(s) "
          f"({'/'.join(str(n) for n in report['per_shard'])} points): "
          f"{len(results)} points, {simulated} simulated -> "
          f"{args.store}")
    return 0


def cmd_compare(args) -> int:
    """Two stores must be bit-for-bit interchangeable."""
    left = ResultStore(args.left)
    right = ResultStore(args.right)
    failures = 0
    if left.sweep_id != right.sweep_id:
        print(f"SWEEP-ID mismatch: {left.sweep_id!r} vs "
              f"{right.sweep_id!r}")
        failures += 1
    left_rows, right_rows = left.load(), right.load()
    for key in sorted(set(left_rows) | set(right_rows)):
        a, b = left_rows.get(key), right_rows.get(key)
        if a is None or b is None:
            where = args.right if a is not None else args.left
            print(f"MISSING {key} in {where}")
            failures += 1
        elif a.stats != b.stats:
            print(f"MISMATCH {key} ({a.config.workload})")
            failures += 1
    if failures:
        print(f"compare FAILED: {failures} difference(s) between "
              f"{args.left} and {args.right}")
        return 1
    print(f"compare OK: {len(left_rows)} points bit-identical "
          f"across {args.left} and {args.right}")
    return 0


def cmd_merge(args) -> int:
    with merge_stores(args.store, args.sources) as merged:
        print(f"merged {len(args.sources)} store(s) into {args.store}: "
              f"{len(merged)} points, sweep {merged.sweep_id}")
    return 0


def cmd_verify(args) -> int:
    """Serial run vs. merged shards: bit-identical stats per point."""
    spec = build_spec(args)
    store = ResultStore(args.store)
    store.bind(spec.sweep_id())
    configs = spec.expand()
    failures = 0
    # an isolated cache directory so nothing can serve stale results
    with tempfile.TemporaryDirectory() as scratch, \
            Session(cache_dir=scratch) as session:
        for config in configs:
            key = config.key()
            stored = store.get(key)
            fresh = session.run(config, use_cache=False)
            if stored is None:
                print(f"MISSING {key} ({config.workload})")
                failures += 1
            elif stored.stats != fresh.stats:
                print(f"MISMATCH {key} ({config.workload})")
                failures += 1
    extra = set(store.keys()) - {c.key() for c in configs}
    for key in sorted(extra):
        print(f"EXTRA {key}")
        failures += 1
    if failures:
        print(f"verify FAILED: {failures} of {len(configs)} points "
              f"differ from a serial run")
        return 1
    print(f"verify OK: {len(configs)} points bit-identical to a "
          f"serial sweep")
    return 0


def _repro_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing \
        else os.pathsep.join([src, existing])
    return env


def _spawn_service(argv_tail, banner):
    """Start ``python -m repro <argv_tail>``; parse its address line."""
    proc = subprocess.Popen([sys.executable, "-m", "repro", *argv_tail],
                            stdout=subprocess.PIPE, text=True,
                            env=_repro_env())
    line = (proc.stdout.readline() or "").strip()
    if not line.startswith(banner):
        proc.kill()
        raise RuntimeError(
            f"service printed {line!r}, expected {banner!r}")
    return proc, line.rsplit(" ", 1)[-1]


def _sweep_argv(args, extra):
    argv = ["sweep",
            str(args.spec) if args.spec is not None else args.preset]
    if args.warmup is not None:
        argv += ["--warmup", str(args.warmup)]
    if args.measure is not None:
        argv += ["--measure", str(args.measure)]
    if args.engine is not None:
        argv += ["--engine", args.engine]
    return argv + extra


def _kill_one_mid_sweep(store_path: Path, victim,
                        timeout: float = 600.0) -> None:
    """Kill *victim* once the store holds its first landed point."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lines = 0
        try:
            with open(store_path) as handle:
                lines = sum(1 for line in handle if line.strip())
        except OSError:
            pass
        if lines >= 2:  # the header row plus at least one result
            victim.kill()
            print("killed one worker mid-sweep "
                  f"({lines - 1} point(s) landed)")
            return
        time.sleep(0.2)
    raise RuntimeError("no point landed before the kill timeout")


def cmd_remote(args) -> int:
    """Run the sweep through a spawned ``repro worker`` fleet."""
    spec = build_spec(args)
    workers = []
    with tempfile.TemporaryDirectory() as scratch:
        try:
            for i in range(args.workers):
                proc, addr = _spawn_service(
                    ["worker", "--listen", "127.0.0.1:0",
                     "--cache-dir", str(Path(scratch) / f"cache{i}")],
                    "worker listening on ")
                workers.append((proc, addr))
            fleet = ",".join(addr for _, addr in workers)
            extra = ["--executor", "remote", "--workers", fleet,
                     "--max-retries", str(args.max_retries),
                     "--store", str(args.store), "--no-cache"]
            if args.batch_size is not None:
                extra += ["--batch-size", str(args.batch_size)]
            sweep = subprocess.Popen(
                [sys.executable, "-m", "repro",
                 *_sweep_argv(args, extra)],
                env=_repro_env())
            if args.kill_one:
                _kill_one_mid_sweep(args.store, workers[0][0])
            rc = sweep.wait()
        finally:
            for proc, _ in workers:
                if proc.poll() is None:
                    proc.kill()
    if rc != 0:
        print(f"remote sweep FAILED with exit code {rc}")
        return 1
    store = ResultStore(args.store)
    note = " (one worker killed mid-sweep)" if args.kill_one else ""
    print(f"remote sweep {spec.sweep_id()} over {args.workers} "
          f"worker(s){note}: {len(store)} points -> {args.store}")
    return 0


def cmd_daemon(args) -> int:
    """Submit the sweep to a spawned ``repro serve`` daemon."""
    spec = build_spec(args)
    services = []
    with tempfile.TemporaryDirectory() as scratch:
        store_dir = Path(scratch) / "stores"
        try:
            fleet = []
            for i in range(args.workers):
                proc, addr = _spawn_service(
                    ["worker", "--listen", "127.0.0.1:0",
                     "--cache-dir", str(Path(scratch) / f"cache{i}")],
                    "worker listening on ")
                services.append(proc)
                fleet.append(addr)
            serve, address = _spawn_service(
                ["serve", "--listen", "127.0.0.1:0",
                 "--workers", ",".join(fleet),
                 "--store-dir", str(store_dir)],
                "serve listening on ")
            services.append(serve)
            rc = subprocess.call(
                [sys.executable, "-m", "repro", *_sweep_argv(args, [
                    "--daemon", address, "--store", str(args.store),
                    "--no-cache"])],
                env=_repro_env())
        finally:
            for proc in services:
                if proc.poll() is None:
                    proc.kill()
        if rc != 0:
            print(f"daemon sweep FAILED with exit code {rc}")
            return 1
        if args.daemon_store is not None:
            daemon_stores = sorted(store_dir.glob("sweep-*.jsonl"))
            if len(daemon_stores) != 1:
                print(f"expected exactly one daemon-side store, found "
                      f"{[p.name for p in daemon_stores]}")
                return 1
            args.daemon_store.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(daemon_stores[0], args.daemon_store)
    store = ResultStore(args.store)
    print(f"daemon sweep {spec.sweep_id()} via {address} over "
          f"{args.workers} worker(s): {len(store)} points -> "
          f"{args.store}")
    return 0


class _TamperingMock(MockExecutor):
    """A ``MockExecutor`` that corrupts chosen points' statistics.

    *tamper* maps a batch index to a function applied to the
    fabricated stats dict — the anomaly-injection vehicle for
    ``inspect-check``.
    """

    def __init__(self, tamper, **kwargs):
        super().__init__(**kwargs)
        self.tamper = dict(tamper)

    def _fabricate(self, future):
        stats = super()._fabricate(future)
        patch = self.tamper.get(future.index)
        return patch(stats) if patch else stats


def _break_conservation(stats):
    """Commit more instructions than the measure window allows."""
    stats["committed"] = stats["committed"] + 7
    return stats


def _implant_outlier(stats):
    """A *consistent* 2x-IPC point: no invariant trips, only the
    statistical baseline can catch it."""
    stats["cycles"] = max(1, stats["cycles"] // 2)
    stats["ipc"] = stats["committed"] / stats["cycles"]
    stats["cpi"] = stats["cycles"] / stats["committed"]
    return stats


def cmd_inspect_check(args) -> int:
    """Prove the inspector catches injected anomalies end to end.

    Three phases over the sweep through ``MockExecutor`` doubles:

    1. a clean run into a reference store;
    2. a tampered run (scripted retry, conservation violation,
       implanted IPC outlier) under a ``SweepInspector`` — exactly
       the two data anomalies must be flagged and quarantined, with
       annotation rows in the store;
    3. a resume with a clean executor — exactly the quarantined keys
       re-simulate, the quarantine lifts, and the store ends
       bit-identical to the clean reference.
    """
    spec = build_spec(args)
    configs = spec.expand()
    by_workload = {}
    for index, config in enumerate(configs):
        by_workload.setdefault(config.workload, []).append(index)
    workloads = list(by_workload)
    if len(workloads) < 2 or len(by_workload[workloads[1]]) < 6:
        print("inspect-check FAILED: the sweep needs >= 2 workloads "
              "with >= 6 points each to host the injections")
        return 1
    # the conservation break goes early in the first workload; the
    # outlier goes on the second workload's sixth point, so its
    # baseline holds baseline_min clean samples when the bad point
    # lands; the scripted fail->ok retry rides on a clean point
    invariant_index = by_workload[workloads[0]][1]
    outlier_index = by_workload[workloads[1]][5]
    retry_index = by_workload[workloads[0]][0]
    injected = {configs[invariant_index].key(): "invariant",
                configs[outlier_index].key(): "outlier"}

    failures = []

    def check(ok, message):
        print(("ok      " if ok else "FAILED  ") + message)
        if not ok:
            failures.append(message)

    with tempfile.TemporaryDirectory() as scratch:
        scratch = Path(scratch)
        # -- phase 1: clean reference ----------------------------------
        with Session(cache_dir=scratch / "cache") as session:
            with ResultStore(scratch / "reference.jsonl") as reference:
                session.sweep(spec, backend=MockExecutor(),
                              store=reference, use_cache=False)
            reference_rows = {k: r.stats
                              for k, r in reference.load().items()}

            # -- phase 2: tampered run under the inspector -------------
            store = ResultStore(args.store if args.store is not None
                                else scratch / "inspected.jsonl")
            tampered = _TamperingMock(
                {invariant_index: _break_conservation,
                 outlier_index: _implant_outlier},
                script={retry_index: ["fail", "ok"]})
            inspector = SweepInspector(store=store)
            with store:
                session.sweep(spec, backend=tampered, store=store,
                              inspect=inspector, use_cache=False)
            flagged = {a.key: a.check for a in inspector.anomalies}
            check(flagged == injected,
                  f"inspector flags exactly the injected anomalies "
                  f"({sorted(injected.values())})")
            check(sorted(inspector.quarantined) == sorted(injected),
                  "both injected keys are quarantined")
            check(inspector.summary()["retried"] == 1,
                  "the scripted fail->ok retry is counted once")
            reopened = ResultStore(store.path)
            annotated = {a.key: a.check
                         for a in reopened.annotations()}
            check(annotated == injected,
                  "the store carries both annotation rows after "
                  "reopen")
            check(sorted(reopened.quarantined_keys())
                  == sorted(injected),
                  "the reopened store quarantines exactly the "
                  "injected keys")

            # -- phase 3: resume re-runs exactly the quarantine --------
            clean = MockExecutor()
            resume_inspector = SweepInspector(store=store)
            with store:
                results = session.sweep(spec, backend=clean,
                                        store=store,
                                        inspect=resume_inspector,
                                        use_cache=False)
            resimulated = sorted(r.key for r in results if not r.cached)
            check(resimulated == sorted(injected),
                  f"resume re-simulates exactly the "
                  f"{len(injected)} quarantined point(s)")
            check(len(clean.dispatched) == len(injected),
                  "the resume dispatches nothing else")
            check(not resume_inspector.anomalies,
                  "the resumed run is anomaly-free")
            final = ResultStore(store.path)
            check(not list(final.quarantined_keys()),
                  "the fresh rows lift the quarantine")
            final_rows = {k: r.stats for k, r in final.load().items()}
            check(final_rows == reference_rows,
                  f"final store is bit-identical to the clean "
                  f"reference ({len(reference_rows)} points)")

    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        report = {
            "sweep_id": spec.sweep_id(),
            "points": len(configs),
            "injected": injected,
            "flagged": [a.to_dict() for a in inspector.anomalies],
            "resimulated": resimulated,
            "failures": failures,
            "inspector": inspector.summary(),
        }
        args.report.write_text(json.dumps(report, indent=2,
                                          sort_keys=True) + "\n")
        print(f"report -> {args.report}")

    if failures:
        print(f"inspect-check FAILED: {len(failures)} of the "
              f"injected-anomaly assertions did not hold")
        return 1
    print(f"inspect-check OK: {len(injected)} injected anomalies "
          f"caught, quarantined, re-run and healed over "
          f"{len(configs)} points")
    return 0


def cmd_check_resume(args) -> int:
    """Resuming from a complete store must simulate zero points."""
    spec = build_spec(args)
    with Session() as session, ResultStore(args.store) as store:
        results = session.sweep(spec, store=store)
    simulated = [r for r in results if not r.cached]
    if simulated:
        print(f"resume FAILED: {len(simulated)} of {len(results)} "
              f"points re-simulated")
        return 1
    print(f"resume OK: {len(results)} points served from the store, "
          f"0 simulated")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded/resumable sweep driver for CI")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one shard into a store")
    add_spec_options(run_p)
    run_p.add_argument("--shard", default=None, metavar="I/K")
    run_p.add_argument("--store", type=Path, required=True)
    run_p.add_argument("--jobs", "-j", type=int, default=1)
    run_p.add_argument("--batch-size", type=int, default=None,
                       metavar="N",
                       help="cap on trace-identical points executed "
                            "as one batch (1 disables batching)")
    run_p.set_defaults(func=cmd_run)

    coord_p = sub.add_parser(
        "coordinate",
        help="drive every shard from one process into a store")
    add_spec_options(coord_p)
    coord_p.add_argument("--shards", type=int, default=4)
    coord_p.add_argument("--store", type=Path, required=True)
    coord_p.add_argument("--jobs", "-j", type=int, default=None)
    coord_p.add_argument("--chunksize", type=int, default=None)
    coord_p.add_argument("--batch-size", type=int, default=None,
                         metavar="N",
                         help="cap on trace-identical points executed "
                              "as one batch (1 disables batching; "
                              "batches never span shards)")
    coord_p.set_defaults(func=cmd_coordinate)

    compare_p = sub.add_parser(
        "compare",
        help="assert two stores are bit-for-bit interchangeable")
    compare_p.add_argument("left", type=Path)
    compare_p.add_argument("right", type=Path)
    compare_p.set_defaults(func=cmd_compare)

    merge_p = sub.add_parser("merge", help="merge shard stores")
    merge_p.add_argument("sources", nargs="+", type=Path)
    merge_p.add_argument("--store", type=Path, required=True)
    merge_p.set_defaults(func=cmd_merge)

    verify_p = sub.add_parser(
        "verify", help="compare a store against an unsharded serial run")
    add_spec_options(verify_p)
    verify_p.add_argument("--store", type=Path, required=True)
    verify_p.set_defaults(func=cmd_verify)

    remote_p = sub.add_parser(
        "remote",
        help="run the sweep over a spawned TCP worker fleet")
    add_spec_options(remote_p)
    remote_p.add_argument("--workers", type=int, default=2,
                          help="worker processes to spawn (default 2)")
    remote_p.add_argument("--max-retries", type=int, default=2)
    remote_p.add_argument("--kill-one", action="store_true",
                          help="kill one worker after the first "
                               "landed point (retry-on-survivors)")
    remote_p.add_argument("--batch-size", type=int, default=None,
                          metavar="N",
                          help="cap on trace-identical points sent as "
                               "one run_batch frame (1 disables "
                               "batching)")
    remote_p.add_argument("--store", type=Path, required=True)
    remote_p.set_defaults(func=cmd_remote)

    daemon_p = sub.add_parser(
        "daemon",
        help="submit the sweep to a spawned serve daemon as a client")
    add_spec_options(daemon_p)
    daemon_p.add_argument("--workers", type=int, default=2,
                          help="worker processes to spawn (default 2)")
    daemon_p.add_argument("--store", type=Path, required=True,
                          help="client-side copy of the results")
    daemon_p.add_argument("--daemon-store", type=Path, default=None,
                          help="copy the daemon's own per-sweep store "
                               "here after the run")
    daemon_p.set_defaults(func=cmd_daemon)

    inspect_p = sub.add_parser(
        "inspect-check",
        help="anomaly-injection gate for the online sweep inspector")
    add_spec_options(inspect_p)
    inspect_p.add_argument("--store", type=Path, default=None,
                           help="keep the inspected store here "
                                "(default: a temp file)")
    inspect_p.add_argument("--report", type=Path, default=None,
                           help="write a JSON report of the gate here")
    inspect_p.set_defaults(func=cmd_inspect_check)

    resume_p = sub.add_parser(
        "check-resume",
        help="assert a resumed sweep simulates zero points")
    add_spec_options(resume_p)
    resume_p.add_argument("--store", type=Path, required=True)
    resume_p.set_defaults(func=cmd_check_resume)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
