#!/usr/bin/env python
"""Lint the repository's markdown docs: links and anchors must resolve.

Usage (from the repo root)::

    python scripts/check_docs.py            # checks README.md + docs/ + *.md
    python scripts/check_docs.py FILE...    # check specific files

Checks, for every markdown file:

* relative links ``[text](path)`` point at files that exist,
* in-document anchors ``[text](#anchor)`` match a heading's GitHub
  slug, and
* cross-document anchors ``[text](path#anchor)`` match a heading slug
  in the target markdown file.

External links (``http(s)://``, ``mailto:``) are not fetched — this is
an offline structural check, wired into the CI lint job next to ruff.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO_ROOT = Path(__file__).resolve().parents[1]

#: markdown sources checked by default
DEFAULT_TARGETS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs")

_LINK = re.compile(r"(?<!!)\[[^\]^]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def heading_slug(text: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", text)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # strip links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> Set[str]:
    slugs: Set[str] = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = heading_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def markdown_files(arguments: List[str]) -> List[Path]:
    if arguments:
        return [Path(arg).resolve() for arg in arguments]
    files: List[Path] = []
    for target in DEFAULT_TARGETS:
        path = REPO_ROOT / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.is_file():
            files.append(path)
    return files


def check_file(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text()
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, anchor = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                try:
                    resolved.relative_to(REPO_ROOT)
                except ValueError:
                    # escapes the repository (e.g. the GitHub-web
                    # "../../actions/..." badge path) — not a repo file
                    continue
                if not resolved.exists():
                    errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                  f"broken link target {target!r}")
                    continue
            else:
                resolved = path
            if anchor:
                if resolved.suffix.lower() != ".md":
                    continue
                if anchor.lower() not in heading_slugs(resolved):
                    errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                  f"anchor #{anchor} not found in "
                                  f"{resolved.name}")
    return errors


def main(argv: List[str]) -> int:
    files = markdown_files(argv)
    if not files:
        print("no markdown files to check")
        return 1
    errors: List[str] = []
    for path in files:
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in files)
    if errors:
        print(f"\n{len(errors)} broken link(s)/anchor(s) in: {checked}")
        return 1
    print(f"docs OK: {len(files)} file(s) checked ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
