#!/usr/bin/env python
"""Measure simulator throughput and write ``BENCH_pipeline.json``.

Usage (from the repo root)::

    python scripts/bench.py                  # full run, writes BENCH_pipeline.json
    python scripts/bench.py --smoke          # tiny traces (CI sanity run)
    python scripts/bench.py --save-baseline  # snapshot benchmarks/perf/baseline_seed.json

The output document records simulated-instructions-per-second for each
configuration in ``benchmarks.perf.harness.BENCH_CONFIGS``, alongside
the committed pre-optimisation seed baseline and the speedup against
it.  See README.md ("Performance tracking") for how to read the file.

``--check`` turns the run into a regression gate (CI uses ``--smoke
--check``): the freshly measured ``milc_baseline`` speedup over
``benchmarks/perf/baseline_seed.json`` is compared against the speedup
recorded in the committed ``BENCH_pipeline.json`` (read before it is
overwritten), and the exit code is nonzero if it regressed by more
than :data:`CHECK_TOLERANCE`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf import harness  # noqa: E402

#: --check fails when the headline speedup falls more than this far
#: below the committed BENCH_pipeline.json value.  Both speedups are
#: ratios against the committed seed baseline, which was recorded on a
#: different machine — the gate therefore also absorbs absolute
#: machine-speed differences between the recording host and the CI
#: runner, not just timing noise; widen via BENCH_CHECK_TOLERANCE if a
#: runner class proves systematically slower.
CHECK_TOLERANCE = float(os.environ.get("BENCH_CHECK_TOLERANCE", "0.15"))


def load_reference(path: Path) -> dict:
    """The committed document (read before overwriting), or empty."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def check_regression(document: dict, reference: dict) -> int:
    """Gate the headline speedup; returns the process exit code."""
    current = document.get("headline_speedup")
    ref_speedup = reference.get("headline_speedup")
    headline = document.get("headline", harness.HEADLINE)
    if ref_speedup is None or current is None:
        print(f"perf check skipped: no committed {headline} reference "
              f"speedup to compare against")
        return 0
    floor = ref_speedup * (1.0 - CHECK_TOLERANCE)
    verdict = "OK" if current >= floor else "REGRESSION"
    regime = ""
    if bool(reference.get("smoke")) != bool(document.get("smoke")):
        regime = (" [note: budget regimes differ — reference "
                  f"smoke={bool(reference.get('smoke'))}, current "
                  f"smoke={bool(document.get('smoke'))}; part of the "
                  "tolerance absorbs that shift]")
    print(f"perf check {verdict}: {headline} speedup {current:.3f}x vs "
          f"committed {ref_speedup:.3f}x (floor {floor:.3f}x, "
          f"tolerance {CHECK_TOLERANCE:.0%}){regime}")
    return 0 if current >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the timing pipeline (simulated insts/sec)")
    parser.add_argument("--warmup", type=int, default=2000,
                        help="functional warmup instructions per config")
    parser.add_argument("--measure", type=int, default=4000,
                        help="timed (measured) instructions per config")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per config; best time is kept")
    parser.add_argument("--configs", nargs="*", default=None,
                        choices=sorted(harness.BENCH_CONFIGS),
                        help="subset of configs to run (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces and one repeat (CI sanity run)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json")
    parser.add_argument("--save-baseline", action="store_true",
                        help="write the result as the seed baseline "
                             "snapshot instead of BENCH_pipeline.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the headline speedup "
                             "regressed more than 15%% vs the committed "
                             "BENCH_pipeline.json")
    args = parser.parse_args(argv)

    reference = load_reference(args.output) if args.check else {}

    warmup, measure, repeats = args.warmup, args.measure, args.repeats
    if args.smoke:
        warmup, measure, repeats = 300, 600, 1
    if args.check:
        # the gate compares best-of-N wall times; a single tiny-trace
        # repeat is too noisy to sit 15% from the floor
        repeats = max(repeats, 3)

    document = harness.run_bench(warmup=warmup, measure=measure,
                                 repeats=repeats, names=args.configs)
    document["schema"] = 1
    document["generated"] = datetime.now(timezone.utc).isoformat()
    document["python"] = platform.python_version()
    document["machine"] = platform.machine()
    document["smoke"] = bool(args.smoke)

    if args.save_baseline:
        output = harness.BASELINE_SNAPSHOT
    else:
        output = args.output
        document = harness.attach_baseline(document)

    with open(output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")

    rows = document["configs"]
    width = max(len(name) for name in rows)
    print(f"{'config':<{width}}  {'insts/sec':>12}  {'IPC':>7}  speedup")
    for name, row in rows.items():
        speedup = document.get("speedup_vs_baseline", {}).get(name)
        suffix = f"{speedup:7.2f}x" if speedup else "      --"
        print(f"{name:<{width}}  {row['insts_per_sec']:>12,.0f}  "
              f"{row['ipc']:>7.3f}  {suffix}")
    print(f"\nwrote {output}")
    if args.check:
        return check_regression(document, reference)
    return 0


if __name__ == "__main__":
    sys.exit(main())
