#!/usr/bin/env python
"""Measure simulator throughput and write ``BENCH_pipeline.json``.

Usage (from the repo root)::

    python scripts/bench.py                  # full run, writes BENCH_pipeline.json
    python scripts/bench.py --smoke          # tiny traces (CI sanity run)
    python scripts/bench.py --save-baseline  # snapshot benchmarks/perf/baseline_seed.json

The output document records simulated-instructions-per-second for each
configuration in ``benchmarks.perf.harness.BENCH_CONFIGS``, measured
A/B on both simulation engines (the reference object pipeline and the
columnar kernel), alongside the committed pre-optimisation seed
baseline, the speedups against it per engine, and the per-config
kernel-over-object ``engine_speedup``.  See README.md ("Performance
tracking") for how to read the file.

``--check`` turns the run into a regression gate (CI uses ``--smoke
--check``): the freshly measured headline speedup (the kernel engine
on ``milc_baseline``) over ``benchmarks/perf/baseline_seed.json`` is
compared against the speedup recorded in the committed
``BENCH_pipeline.json`` (read before it is overwritten) within
:data:`CHECK_TOLERANCE`, and every other config is held to its
committed per-engine speedup within :data:`PER_CONFIG_TOLERANCE`; the
exit code is nonzero if any gate fails.

``--tune-chunksize`` measures the pool executor's dispatch chunking
(:class:`repro.api.ProcessPoolBackend`'s ``chunksize``) on the
``policy-compare`` sweep preset and records the sweep wall times under
``notes.pool_chunksize`` in the committed ``BENCH_pipeline.json`` —
the throughput numbers and the ``--check`` gate reference are left
untouched.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf import harness  # noqa: E402

#: --check fails when the headline speedup falls more than this far
#: below the committed BENCH_pipeline.json value.  Both speedups are
#: ratios against the committed seed baseline, which was recorded on a
#: different machine — the gate therefore also absorbs absolute
#: machine-speed differences between the recording host and the CI
#: runner, not just timing noise; widen via BENCH_CHECK_TOLERANCE if a
#: runner class proves systematically slower.
CHECK_TOLERANCE = float(os.environ.get("BENCH_CHECK_TOLERANCE", "0.15"))

#: per-config gate tolerance: every non-headline config (both the
#: object path and the kernel path) is held to its committed speedup
#: within this margin, so a kernel-engine gain can never mask an
#: object-path regression on any config.  Wider than the headline's —
#: the satellite configs run fewer instructions per measured second
#: and sit closer to timer noise.
PER_CONFIG_TOLERANCE = float(
    os.environ.get("BENCH_CONFIG_TOLERANCE", "0.20"))


def load_reference(path: Path) -> dict:
    """The committed document (read before overwriting), or empty."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def check_regression(document: dict, reference: dict) -> int:
    """Gate the headline and every per-config speedup; returns the
    process exit code.

    The headline gate keeps its historical semantics and tolerance
    (:data:`CHECK_TOLERANCE`); additionally, every config measured in
    both the fresh run and the committed reference is gated per engine
    path (``speedup_vs_baseline`` for the object pipeline,
    ``kernel_speedup_vs_baseline`` for the kernel) within
    :data:`PER_CONFIG_TOLERANCE`.  Reference maps a past document does
    not carry are skipped, so the gate tightens as references refresh.
    """
    failures = 0
    current = document.get("headline_speedup")
    ref_speedup = reference.get("headline_speedup")
    headline = document.get("headline", harness.HEADLINE)
    if ref_speedup is None or current is None:
        print(f"perf check skipped: no committed {headline} reference "
              f"speedup to compare against")
        return 0
    floor = ref_speedup * (1.0 - CHECK_TOLERANCE)
    verdict = "OK" if current >= floor else "REGRESSION"
    if current < floor:
        failures += 1
    regime = ""
    if bool(reference.get("smoke")) != bool(document.get("smoke")):
        regime = (" [note: budget regimes differ — reference "
                  f"smoke={bool(reference.get('smoke'))}, current "
                  f"smoke={bool(document.get('smoke'))}; part of the "
                  "tolerance absorbs that shift]")
    print(f"perf check {verdict}: {headline} speedup {current:.3f}x vs "
          f"committed {ref_speedup:.3f}x (floor {floor:.3f}x, "
          f"tolerance {CHECK_TOLERANCE:.0%}){regime}")

    for map_name, label in (("speedup_vs_baseline", "object"),
                            ("kernel_speedup_vs_baseline", "kernel")):
        current_map = document.get(map_name) or {}
        reference_map = reference.get(map_name) or {}
        for name in sorted(reference_map):
            ref_value = reference_map[name]
            value = current_map.get(name)
            if value is None or not ref_value:
                continue  # config not measured this run
            config_floor = ref_value * (1.0 - PER_CONFIG_TOLERANCE)
            if value >= config_floor:
                continue
            failures += 1
            print(f"perf check REGRESSION: {name} [{label}] speedup "
                  f"{value:.3f}x vs committed {ref_value:.3f}x "
                  f"(floor {config_floor:.3f}x, tolerance "
                  f"{PER_CONFIG_TOLERANCE:.0%})")
    if not failures:
        print("perf check OK: all per-config gates within tolerance")
    return 1 if failures else 0


#: chunk sizes --tune-chunksize sweeps
TUNE_CHUNKSIZES = (1, 2, 4, 8)


def tune_chunksize(args) -> int:
    """Measure pool-dispatch chunking on the policy-compare preset.

    Each chunk size runs the whole preset (tiny budgets) through a
    :class:`repro.api.ProcessPoolBackend` against a scratch cache with
    caching disabled, so every run simulates every point.  The wall
    times land under ``notes.pool_chunksize`` of the output document
    (merged into the existing file; measured throughput numbers are
    preserved).
    """
    import tempfile
    import time as time_mod

    from repro.api import ProcessPoolBackend, Session
    from repro.harness.experiments import sweep_preset
    from repro.harness.runner import default_jobs

    jobs = args.jobs if args.jobs else default_jobs()
    spec = sweep_preset("policy-compare", warmup=300, measure=600)
    timings = {}
    for chunksize in TUNE_CHUNKSIZES:
        with tempfile.TemporaryDirectory() as scratch, \
                Session(cache_dir=scratch) as session:
            backend = ProcessPoolBackend(jobs=jobs, chunksize=chunksize)
            start = time_mod.perf_counter()
            results = session.sweep(spec, use_cache=False,
                                    backend=backend)
            elapsed = time_mod.perf_counter() - start
        timings[str(chunksize)] = round(elapsed, 3)
        print(f"chunksize {chunksize}: {elapsed:.2f}s "
              f"({len(results)} points, {jobs} workers)")
    best = min(timings, key=lambda k: timings[k])
    document = load_reference(args.output)
    notes = document.setdefault("notes", {})
    notes["pool_chunksize"] = {
        "preset": "policy-compare",
        "warmup": 300, "measure": 600,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "wall_seconds": timings,
        "best": int(best),
        "generated": datetime.now(timezone.utc).isoformat(),
    }
    with open(args.output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"best chunksize {best} "
          f"({timings[best]:.2f}s); recorded in {args.output} notes")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the timing pipeline (simulated insts/sec)")
    parser.add_argument("--warmup", type=int, default=2000,
                        help="functional warmup instructions per config")
    parser.add_argument("--measure", type=int, default=4000,
                        help="timed (measured) instructions per config")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per config; best time is kept")
    parser.add_argument("--configs", nargs="*", default=None,
                        choices=sorted(harness.BENCH_CONFIGS),
                        help="subset of configs to run (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces and one repeat (CI sanity run)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json")
    parser.add_argument("--save-baseline", action="store_true",
                        help="write the result as the seed baseline "
                             "snapshot instead of BENCH_pipeline.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the headline speedup "
                             "regressed more than 15%% vs the committed "
                             "BENCH_pipeline.json")
    parser.add_argument("--tune-chunksize", action="store_true",
                        help="benchmark pool dispatch chunk sizes on "
                             "the policy-compare preset and record "
                             "them under the output's notes")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --tune-chunksize "
                             "(default: REPRO_JOBS / CPU count)")
    args = parser.parse_args(argv)

    if args.tune_chunksize:
        return tune_chunksize(args)

    reference = load_reference(args.output) if args.check else {}

    warmup, measure, repeats = args.warmup, args.measure, args.repeats
    if args.smoke:
        warmup, measure, repeats = 300, 600, 1
    if args.check:
        # the gate compares best-of-N wall times; a single tiny-trace
        # repeat is too noisy to sit 15% from the floor
        repeats = max(repeats, 3)

    document = harness.run_bench(warmup=warmup, measure=measure,
                                 repeats=repeats, names=args.configs)
    document["schema"] = 1
    document["generated"] = datetime.now(timezone.utc).isoformat()
    document["python"] = platform.python_version()
    document["machine"] = platform.machine()
    document["smoke"] = bool(args.smoke)

    if args.save_baseline:
        output = harness.BASELINE_SNAPSHOT
    else:
        output = args.output
        document = harness.attach_baseline(document)
        # keep --tune-chunksize notes through re-measurements
        notes = load_reference(output).get("notes")
        if notes:
            document["notes"] = notes

    with open(output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")

    rows = document["configs"]
    width = max(len(name) for name in rows)
    print(f"{'config':<{width}}  {'object i/s':>12}  {'kernel i/s':>12}  "
          f"{'IPC':>7}  {'speedup':>8}  {'kernel x':>9}")
    for name, row in rows.items():
        speedup = document.get("speedup_vs_baseline", {}).get(name)
        suffix = f"{speedup:7.2f}x" if speedup else "      --"
        kernel_ips = row.get("kernel", {}).get("insts_per_sec")
        kernel_col = f"{kernel_ips:>12,.0f}" if kernel_ips else f"{'--':>12}"
        engine_x = row.get("engine_speedup")
        engine_col = f"{engine_x:8.2f}x" if engine_x else f"{'--':>9}"
        print(f"{name:<{width}}  {row['insts_per_sec']:>12,.0f}  "
              f"{kernel_col}  {row['ipc']:>7.3f}  {suffix}  {engine_col}")
    print(f"\nwrote {output}")
    if args.check:
        return check_regression(document, reference)
    return 0


if __name__ == "__main__":
    sys.exit(main())
