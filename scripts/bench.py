#!/usr/bin/env python
"""Measure simulator throughput and write ``BENCH_pipeline.json``.

Usage (from the repo root)::

    python scripts/bench.py                  # full run, writes BENCH_pipeline.json
    python scripts/bench.py --smoke          # tiny traces (CI sanity run)
    python scripts/bench.py --save-baseline  # snapshot benchmarks/perf/baseline_seed.json

The output document records simulated-instructions-per-second for each
configuration in ``benchmarks.perf.harness.BENCH_CONFIGS``, measured
A/B on both simulation engines (the reference object pipeline and the
columnar kernel), alongside the committed pre-optimisation seed
baseline, the speedups against it per engine, and the per-config
kernel-over-object ``engine_speedup``.  See README.md ("Performance
tracking") for how to read the file.

``--check`` turns the run into a regression gate (CI uses ``--smoke
--check``): the freshly measured headline speedup (the kernel engine
on ``milc_baseline``) over ``benchmarks/perf/baseline_seed.json`` is
compared against the speedup recorded in the committed
``BENCH_pipeline.json`` (read before it is overwritten) within
:data:`CHECK_TOLERANCE`, and every other config is held to its
committed per-engine speedup within :data:`PER_CONFIG_TOLERANCE`; the
exit code is nonzero if any gate fails.

``--tune-chunksize`` measures the pool executor's dispatch chunking
(:class:`repro.api.ProcessPoolBackend`'s ``chunksize``) on the
``policy-compare`` sweep preset and records the sweep wall times under
``notes.pool_chunksize`` in the committed ``BENCH_pipeline.json`` —
the throughput numbers and the ``--check`` gate reference are left
untouched.

``--sweep`` measures end-to-end sweep throughput (points/sec on the
``ltp-queues`` preset, kernel engine, pool executor) with trace-shared
batching on versus off, and records both rates plus their ratio under
``sweep_points_per_sec`` in the committed ``BENCH_pipeline.json``.
``--sweep --check`` gates instead of recording: the fresh
batched/unbatched ratio must stay within
:data:`PER_CONFIG_TOLERANCE` of the committed ratio *and* above the
absolute :data:`SWEEP_SPEEDUP_FLOOR`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT), str(REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf import harness  # noqa: E402

#: --check fails when the headline speedup falls more than this far
#: below the committed BENCH_pipeline.json value.  Both speedups are
#: ratios against the committed seed baseline, which was recorded on a
#: different machine — the gate therefore also absorbs absolute
#: machine-speed differences between the recording host and the CI
#: runner, not just timing noise; widen via BENCH_CHECK_TOLERANCE if a
#: runner class proves systematically slower.
CHECK_TOLERANCE = float(os.environ.get("BENCH_CHECK_TOLERANCE", "0.15"))

#: per-config gate tolerance: every non-headline config (both the
#: object path and the kernel path) is held to its committed speedup
#: within this margin, so a kernel-engine gain can never mask an
#: object-path regression on any config.  Wider than the headline's —
#: the satellite configs run fewer instructions per measured second
#: and sit closer to timer noise.
PER_CONFIG_TOLERANCE = float(
    os.environ.get("BENCH_CONFIG_TOLERANCE", "0.20"))


def load_reference(path: Path) -> dict:
    """The committed document (read before overwriting), or empty."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def check_regression(document: dict, reference: dict) -> int:
    """Gate the headline and every per-config speedup; returns the
    process exit code.

    The headline gate keeps its historical semantics and tolerance
    (:data:`CHECK_TOLERANCE`); additionally, every config measured in
    both the fresh run and the committed reference is gated per engine
    path (``speedup_vs_baseline`` for the object pipeline,
    ``kernel_speedup_vs_baseline`` for the kernel) within
    :data:`PER_CONFIG_TOLERANCE`.  Reference maps a past document does
    not carry are skipped, so the gate tightens as references refresh.
    """
    failures = 0
    current = document.get("headline_speedup")
    ref_speedup = reference.get("headline_speedup")
    headline = document.get("headline", harness.HEADLINE)
    if ref_speedup is None or current is None:
        print(f"perf check skipped: no committed {headline} reference "
              f"speedup to compare against")
        return 0
    floor = ref_speedup * (1.0 - CHECK_TOLERANCE)
    verdict = "OK" if current >= floor else "REGRESSION"
    if current < floor:
        failures += 1
    regime = ""
    if bool(reference.get("smoke")) != bool(document.get("smoke")):
        regime = (" [note: budget regimes differ — reference "
                  f"smoke={bool(reference.get('smoke'))}, current "
                  f"smoke={bool(document.get('smoke'))}; part of the "
                  "tolerance absorbs that shift]")
    print(f"perf check {verdict}: {headline} speedup {current:.3f}x vs "
          f"committed {ref_speedup:.3f}x (floor {floor:.3f}x, "
          f"tolerance {CHECK_TOLERANCE:.0%}){regime}")

    for map_name, label in (("speedup_vs_baseline", "object"),
                            ("kernel_speedup_vs_baseline", "kernel")):
        current_map = document.get(map_name) or {}
        reference_map = reference.get(map_name) or {}
        for name in sorted(reference_map):
            ref_value = reference_map[name]
            value = current_map.get(name)
            if value is None or not ref_value:
                continue  # config not measured this run
            config_floor = ref_value * (1.0 - PER_CONFIG_TOLERANCE)
            if value >= config_floor:
                continue
            failures += 1
            print(f"perf check REGRESSION: {name} [{label}] speedup "
                  f"{value:.3f}x vs committed {ref_value:.3f}x "
                  f"(floor {config_floor:.3f}x, tolerance "
                  f"{PER_CONFIG_TOLERANCE:.0%})")
    if not failures:
        print("perf check OK: all per-config gates within tolerance")
    return 1 if failures else 0


#: chunk sizes --tune-chunksize sweeps
TUNE_CHUNKSIZES = (1, 2, 4, 8)


def tune_chunksize(args) -> int:
    """Measure pool-dispatch chunking on the policy-compare preset.

    Each chunk size runs the whole preset (tiny budgets) through a
    :class:`repro.api.ProcessPoolBackend` against a scratch cache with
    caching disabled, so every run simulates every point.  The wall
    times land under ``notes.pool_chunksize`` of the output document
    (merged into the existing file; measured throughput numbers are
    preserved).
    """
    import tempfile
    import time as time_mod

    from repro.api import ProcessPoolBackend, Session
    from repro.harness.experiments import sweep_preset
    from repro.harness.runner import default_jobs

    jobs = args.jobs if args.jobs else default_jobs()
    spec = sweep_preset("policy-compare", warmup=300, measure=600)
    timings = {}
    for chunksize in TUNE_CHUNKSIZES:
        with tempfile.TemporaryDirectory() as scratch, \
                Session(cache_dir=scratch) as session:
            backend = ProcessPoolBackend(jobs=jobs, chunksize=chunksize)
            start = time_mod.perf_counter()
            results = session.sweep(spec, use_cache=False,
                                    backend=backend)
            elapsed = time_mod.perf_counter() - start
        timings[str(chunksize)] = round(elapsed, 3)
        print(f"chunksize {chunksize}: {elapsed:.2f}s "
              f"({len(results)} points, {jobs} workers)")
    best = min(timings, key=lambda k: timings[k])
    document = load_reference(args.output)
    notes = document.setdefault("notes", {})
    notes["pool_chunksize"] = {
        "preset": "policy-compare",
        "warmup": 300, "measure": 600,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "wall_seconds": timings,
        "best": int(best),
        "generated": datetime.now(timezone.utc).isoformat(),
    }
    with open(args.output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"best chunksize {best} "
          f"({timings[best]:.2f}s); recorded in {args.output} notes")
    return 0


# --sweep: end-to-end sweep throughput, batched vs unbatched ---------
#: the paper's headline sweep shape: queue sizes x LTP on/off across
#: every workload, 6 points per trace identity — exactly the work the
#: batched execution layer amortizes
SWEEP_PRESET = "ltp-queues"
SWEEP_WARMUP = 300
SWEEP_MEASURE = 300
#: best-of-N per leg: timing noise only ever slows a run, so more
#: repeats converge each leg to its true floor and stabilise the ratio
SWEEP_REPEATS = 4
#: --sweep --check also enforces this absolute batched/unbatched
#: ratio, independent of the committed reference
SWEEP_SPEEDUP_FLOOR = float(os.environ.get("BENCH_SWEEP_FLOOR", "1.5"))


def _time_sweep(spec, jobs: int, batch_size,
                repeats: int):
    """Best-of-N wall time for one executor leg (fresh caches, no
    result caching, so every repeat simulates every point)."""
    import tempfile
    import time as time_mod

    from repro.api import ProcessPoolBackend, Session

    best = None
    points = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as scratch, \
                Session(cache_dir=scratch) as session:
            backend = ProcessPoolBackend(jobs=jobs,
                                         batch_size=batch_size)
            start = time_mod.perf_counter()
            results = session.sweep(spec, use_cache=False,
                                    backend=backend)
            elapsed = time_mod.perf_counter() - start
        points = len(results)
        best = elapsed if best is None else min(best, elapsed)
    return points, best


def sweep_bench(args) -> int:
    """Measure (or gate) batched vs unbatched sweep throughput."""
    from repro.harness.experiments import sweep_preset
    from repro.harness.runner import default_jobs

    jobs = args.jobs if args.jobs else default_jobs()
    spec = sweep_preset(SWEEP_PRESET, warmup=SWEEP_WARMUP,
                        measure=SWEEP_MEASURE)
    spec.engine = "kernel"

    points, unbatched_s = _time_sweep(spec, jobs, 1, SWEEP_REPEATS)
    unbatched = points / unbatched_s
    print(f"unbatched (batch_size=1): {unbatched_s:.2f}s "
          f"({points} points, {unbatched:.1f} points/sec)")
    points, batched_s = _time_sweep(spec, jobs, None, SWEEP_REPEATS)
    batched = points / batched_s
    print(f"batched   (batch_size=auto): {batched_s:.2f}s "
          f"({points} points, {batched:.1f} points/sec)")
    speedup = batched / unbatched
    print(f"batched/unbatched sweep speedup: {speedup:.2f}x "
          f"({jobs} worker(s), preset {SWEEP_PRESET}, "
          f"warmup {SWEEP_WARMUP}, measure {SWEEP_MEASURE})")

    if args.check:
        reference = (load_reference(args.output)
                     .get("sweep_points_per_sec") or {})
        ref_speedup = reference.get("speedup")
        failures = 0
        if speedup < SWEEP_SPEEDUP_FLOOR:
            failures += 1
            print(f"sweep check REGRESSION: speedup {speedup:.2f}x "
                  f"below the absolute floor "
                  f"{SWEEP_SPEEDUP_FLOOR:.2f}x")
        if ref_speedup:
            floor = ref_speedup * (1.0 - PER_CONFIG_TOLERANCE)
            if speedup < floor:
                failures += 1
                print(f"sweep check REGRESSION: speedup {speedup:.2f}x "
                      f"vs committed {ref_speedup:.2f}x (floor "
                      f"{floor:.2f}x, tolerance "
                      f"{PER_CONFIG_TOLERANCE:.0%})")
        if not failures:
            print("sweep check OK")
        return 1 if failures else 0

    document = load_reference(args.output)
    document["sweep_points_per_sec"] = {
        "preset": SWEEP_PRESET,
        "warmup": SWEEP_WARMUP, "measure": SWEEP_MEASURE,
        "engine": "kernel",
        "points": points,
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "unbatched": round(unbatched, 2),
        "batched": round(batched, 2),
        "speedup": round(speedup, 3),
        "generated": datetime.now(timezone.utc).isoformat(),
    }
    with open(args.output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"recorded sweep_points_per_sec in {args.output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the timing pipeline (simulated insts/sec)")
    parser.add_argument("--warmup", type=int, default=2000,
                        help="functional warmup instructions per config")
    parser.add_argument("--measure", type=int, default=4000,
                        help="timed (measured) instructions per config")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per config; best time is kept")
    parser.add_argument("--configs", nargs="*", default=None,
                        choices=sorted(harness.BENCH_CONFIGS),
                        help="subset of configs to run (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny traces and one repeat (CI sanity run)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json")
    parser.add_argument("--save-baseline", action="store_true",
                        help="write the result as the seed baseline "
                             "snapshot instead of BENCH_pipeline.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the headline speedup "
                             "regressed more than 15%% vs the committed "
                             "BENCH_pipeline.json")
    parser.add_argument("--tune-chunksize", action="store_true",
                        help="benchmark pool dispatch chunk sizes on "
                             "the policy-compare preset and record "
                             "them under the output's notes")
    parser.add_argument("--sweep", action="store_true",
                        help="benchmark end-to-end sweep throughput "
                             "(ltp-queues preset) batched vs "
                             "unbatched; with --check, gate instead "
                             "of recording")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --tune-chunksize / "
                             "--sweep (default: REPRO_JOBS / CPU "
                             "count)")
    args = parser.parse_args(argv)

    if args.tune_chunksize:
        return tune_chunksize(args)
    if args.sweep:
        return sweep_bench(args)

    reference = load_reference(args.output) if args.check else {}

    warmup, measure, repeats = args.warmup, args.measure, args.repeats
    if args.smoke:
        warmup, measure, repeats = 300, 600, 1
    if args.check:
        # the gate compares best-of-N wall times; a single tiny-trace
        # repeat is too noisy to sit 15% from the floor
        repeats = max(repeats, 3)

    document = harness.run_bench(warmup=warmup, measure=measure,
                                 repeats=repeats, names=args.configs)
    document["schema"] = 1
    document["generated"] = datetime.now(timezone.utc).isoformat()
    document["python"] = platform.python_version()
    document["machine"] = platform.machine()
    document["smoke"] = bool(args.smoke)

    if args.save_baseline:
        output = harness.BASELINE_SNAPSHOT
    else:
        output = args.output
        document = harness.attach_baseline(document)
        # keep --tune-chunksize notes and the --sweep throughput
        # record through re-measurements
        committed = load_reference(output)
        notes = committed.get("notes")
        if notes:
            document["notes"] = notes
        sweep_record = committed.get("sweep_points_per_sec")
        if sweep_record:
            document["sweep_points_per_sec"] = sweep_record

    with open(output, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")

    rows = document["configs"]
    width = max(len(name) for name in rows)
    print(f"{'config':<{width}}  {'object i/s':>12}  {'kernel i/s':>12}  "
          f"{'IPC':>7}  {'speedup':>8}  {'kernel x':>9}")
    for name, row in rows.items():
        speedup = document.get("speedup_vs_baseline", {}).get(name)
        suffix = f"{speedup:7.2f}x" if speedup else "      --"
        kernel_ips = row.get("kernel", {}).get("insts_per_sec")
        kernel_col = f"{kernel_ips:>12,.0f}" if kernel_ips else f"{'--':>12}"
        engine_x = row.get("engine_speedup")
        engine_col = f"{engine_x:8.2f}x" if engine_x else f"{'--':>9}"
        print(f"{name:<{width}}  {row['insts_per_sec']:>12,.0f}  "
              f"{kernel_col}  {row['ipc']:>7.3f}  {suffix}  {engine_col}")
    print(f"\nwrote {output}")
    if args.check:
        return check_regression(document, reference)
    return 0


if __name__ == "__main__":
    sys.exit(main())
