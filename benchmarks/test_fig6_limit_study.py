"""Figure 6: the Section 4 limit study (IQ / RF / LQ / SQ sweeps).

Paper expectations encoded below:

* IQ row — shrinking the IQ hurts the sensitive suite without LTP;
  with LTP (NR+NU) a 32-entry IQ is close to the 64-entry baseline.
* RF row — LTP at 96 registers is close to the 128-register baseline;
  without LTP, 96 registers lose performance on the sensitive suite.
* LQ/SQ rows — LTP parks too few loads/stores to matter much (milc is
  the exception); shrinking the LQ below 32 hurts everyone.
* The insensitive suite barely reacts to any of it.
"""

import pytest

from benchmarks.conftest import archive
from repro.harness.experiments import (MILC, fig6_limit_study, render_fig6)
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


@pytest.fixture(scope="module")
def fig6(results_dir):
    result = fig6_limit_study()
    archive(results_dir, "fig6_limit_study", render_fig6(result))
    return result


def test_fig6_runs(benchmark, fig6):
    benchmark.pedantic(lambda: fig6, rounds=1, iterations=1)
    assert set(fig6) == {"iq", "rf", "lq", "sq"}


def test_fig6_iq_row_sensitive(benchmark, fig6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig6["iq"]["groups"][MLP_SENSITIVE]
    sizes = fig6["iq"]["sizes"]       # [None, 128, 64, 32, 16]
    at32 = sizes.index(32)
    at16 = sizes.index(16)
    # no LTP: IQ 32 loses performance vs the IQ 64 baseline
    assert data["no-ltp"][at32] < -5.0
    assert data["no-ltp"][at16] < data["no-ltp"][at32]
    # LTP (NR+NU) at IQ 32 stays within a few points of baseline
    assert data["ltp-nr+nu"][at32] > -5.0
    # and clearly beats no-LTP at the same size
    assert data["ltp-nr+nu"][at32] > data["no-ltp"][at32] + 5.0
    # NU-only captures most of the NR+NU benefit (Section 4.3)
    assert data["ltp-nu"][at32] > data["no-ltp"][at32] + 5.0


def test_fig6_rf_row_sensitive(benchmark, fig6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig6["rf"]["groups"][MLP_SENSITIVE]
    sizes = fig6["rf"]["sizes"]       # [None, 128, 96, 64, 32]
    at96 = sizes.index(96)
    at64 = sizes.index(64)
    assert data["no-ltp"][at96] < -2.0
    assert data["ltp-nr+nu"][at96] > -5.0
    assert data["ltp-nr+nu"][at96] > data["no-ltp"][at96]
    # LTP roughly halves the loss at 64 registers (paper text)
    assert data["ltp-nr+nu"][at64] > data["no-ltp"][at64]


def test_fig6_insensitive_flat(benchmark, fig6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for resource in ("iq", "rf"):
        data = fig6[resource]["groups"][MLP_INSENSITIVE]
        # at the second-largest finite setting the insensitive suite
        # moves by only a few percent
        mid = 2
        assert abs(data["no-ltp"][mid]) < 8.0, (resource, data["no-ltp"])


def test_fig6_lq_sq_small_sizes_hurt(benchmark, fig6):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for resource, tiny_index in (("lq", 4), ("sq", 4)):
        data = fig6[resource]["groups"][MLP_SENSITIVE]
        assert data["no-ltp"][tiny_index] < -5.0, resource


def test_fig6_milc_parks_memory_ops(benchmark, fig6):
    """milc is the paper's exception: LTP helps it at small LQ/SQ."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig6["lq"]["groups"][MILC]
    sizes = fig6["lq"]["sizes"]
    at16 = sizes.index(16)
    assert data["ltp-nr+nu"][at16] >= data["no-ltp"][at16]
