"""Smoke tests for the perf-benchmark harness (tiny traces)."""

from benchmarks.perf import harness


def test_run_bench_smoke():
    document = harness.run_bench(warmup=200, measure=300, repeats=1,
                                 names=["milc_baseline"])
    row = document["configs"]["milc_baseline"]
    assert row["committed"] == 300
    assert row["insts_per_sec"] > 0
    assert row["cycles"] > 0


def test_attach_baseline_computes_speedup():
    document = {"configs": {"milc_baseline": {"insts_per_sec": 100.0}}}
    document = harness.attach_baseline(document)
    assert document["headline"] == harness.HEADLINE
    baseline = harness.load_baseline()
    if baseline is not None:  # snapshot is committed with the repo
        expected = round(
            100.0 / baseline["configs"]["milc_baseline"]["insts_per_sec"], 3)
        assert document["speedup_vs_baseline"]["milc_baseline"] == expected
