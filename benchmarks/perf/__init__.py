"""Performance benchmarks for the simulation hot path (see harness.py)."""
