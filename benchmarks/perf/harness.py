"""Throughput benchmark harness for the timing pipeline.

Measures *simulated instructions per second* — committed instructions
divided by the wall time of :meth:`Pipeline.run` — on a small set of
representative workload/LTP configurations.  Trace generation, oracle
annotation and cache warming happen outside the timed region, so the
numbers isolate the cycle-model hot path that PRs optimise.

``scripts/bench.py`` is the command-line entry point; it writes
``BENCH_pipeline.json`` at the repo root with the current numbers next
to the pre-optimisation seed baseline (``baseline_seed.json`` in this
directory) so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams, baseline_params, ltp_params
from repro.core.pipeline import Pipeline
from repro.harness.runner import (_warm_branch_predictor, _warm_hierarchy,
                                  get_oracle, get_trace)
from repro.ltp.config import LTPConfig, no_ltp, proposed_ltp
from repro.ltp.controller import LTPController
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_workload

#: directory holding the committed seed-baseline snapshot
PERF_DIR = Path(__file__).resolve().parent
BASELINE_SNAPSHOT = PERF_DIR / "baseline_seed.json"

#: the headline config the acceptance criteria track
HEADLINE = "milc_baseline"


def _warm_cpu(seconds: float = 2.0) -> None:
    """Spin until the frequency governor reaches steady state.

    A cold CPU clocks the first timed repeats 10-20% low, which reads
    as a phantom regression; every :func:`run_one` spins briefly before
    its timed loop so best-of-N compares like with like.
    """
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1


def _core(kind: str) -> CoreParams:
    return baseline_params() if kind == "baseline" else ltp_params()


def _ltp(kind: str) -> LTPConfig:
    return no_ltp() if kind == "none" else proposed_ltp()


#: name -> (workload, core kind, ltp kind); chosen to cover the hot paths:
#: fp lattice (headline), LTP parking/release, pointer chasing (memory
#: latency bound) and streaming (prefetcher + bandwidth bound).
BENCH_CONFIGS: Dict[str, tuple] = {
    "milc_baseline": ("lattice_milc", "baseline", "none"),
    "milc_ltp": ("lattice_milc", "small", "proposed"),
    "astar_baseline": ("ptrchase_astar", "baseline", "none"),
    "triad_baseline": ("stream_triad", "baseline", "none"),
}


def run_one(name: str, warmup: int, measure: int, repeats: int,
            engine: str = "object") -> dict:
    """Benchmark one named configuration; returns a result row.

    *engine* selects the timing implementation: the reference object
    pipeline or the columnar kernel (:mod:`repro.core.kernel`).  For
    the kernel, predecode happens once outside the timed region — the
    shape one predecode-per-workload sweeps execute.
    """
    workload_name, core_kind, ltp_kind = BENCH_CONFIGS[name]
    core = _core(core_kind)
    ltp = _ltp(ltp_kind)
    total = warmup + measure
    trace = get_trace(workload_name, total)
    workload = get_workload(workload_name)
    oracle = (get_oracle(workload_name, total, core, trace)
              if ltp.enabled else None)
    warmup_slice = trace[:warmup]
    measured = trace[warmup:]
    arrays = None
    if engine == "kernel":
        from repro.core.kernel import predecode
        arrays = predecode(trace).window(warmup)

    _warm_cpu()
    times: List[float] = []
    stats = None
    for _ in range(repeats):
        # untimed: rebuild and warm the mutable structures for this rep
        hierarchy = MemoryHierarchy(core.mem)
        _warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                        warm_regions=workload.warm_regions)
        bpred = GsharePredictor()
        _warm_branch_predictor(bpred, warmup_slice)
        controller = LTPController(ltp, core.mem.dram_latency, oracle=oracle)
        if ltp.enabled and oracle is not None and warmup:
            controller.warm_from_trace(warmup_slice,
                                       oracle.long_latency[:warmup])
        if engine == "kernel":
            from repro.core.kernel import KernelPipeline
            pipeline = KernelPipeline(
                measured, params=core, ltp=ltp, controller=controller,
                hierarchy=hierarchy, branch_predictor=bpred,
                arrays=arrays)
        else:
            pipeline = Pipeline(measured, params=core, ltp=ltp,
                                controller=controller, hierarchy=hierarchy,
                                branch_predictor=bpred)
        start = time.perf_counter()
        stats = pipeline.run()
        times.append(time.perf_counter() - start)

    best = min(times)
    return {
        "workload": workload_name,
        "core": core_kind,
        "ltp": ltp_kind,
        "engine": engine,
        "committed": stats.committed,
        "cycles": stats.cycles,
        "ipc": round(stats.ipc, 4),
        "best_seconds": round(best, 6),
        "median_seconds": round(statistics.median(times), 6),
        "insts_per_sec": round(stats.committed / best, 1),
    }


def run_bench(warmup: int = 2000, measure: int = 4000, repeats: int = 3,
              names: Optional[List[str]] = None) -> dict:
    """Run the full benchmark matrix; returns the result document body.

    Every configuration is measured A/B on both engines.  The
    object-engine numbers stay in the row's historical top-level fields
    (the long-running perf trajectory of the reference pipeline); the
    kernel run lands under ``row["kernel"]`` with the per-config
    kernel-over-object ratio in ``row["engine_speedup"]`` (also
    aggregated in the document's ``engine_speedup`` map).  Both engines
    must report identical ``committed``/``cycles``/``ipc`` — a
    divergence here is a correctness bug, not a perf result.
    """
    names = names or list(BENCH_CONFIGS)
    configs = {}
    engine_speedup = {}
    for name in names:
        row = run_one(name, warmup, measure, repeats, engine="object")
        kernel_row = run_one(name, warmup, measure, repeats,
                             engine="kernel")
        for field in ("committed", "cycles", "ipc"):
            if row[field] != kernel_row[field]:
                raise AssertionError(
                    f"engine divergence on {name}: {field} "
                    f"{row[field]} (object) vs {kernel_row[field]} "
                    f"(kernel)")
        row["kernel"] = {
            "best_seconds": kernel_row["best_seconds"],
            "median_seconds": kernel_row["median_seconds"],
            "insts_per_sec": kernel_row["insts_per_sec"],
        }
        row["engine_speedup"] = round(
            kernel_row["insts_per_sec"] / row["insts_per_sec"], 3)
        engine_speedup[name] = row["engine_speedup"]
        configs[name] = row
    return {
        "warmup": warmup,
        "measure": measure,
        "repeats": repeats,
        "configs": configs,
        "engine_speedup": engine_speedup,
    }


def load_baseline() -> Optional[dict]:
    """The committed pre-optimisation (seed) baseline, if present."""
    if not BASELINE_SNAPSHOT.is_file():
        return None
    try:
        with open(BASELINE_SNAPSHOT) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def attach_baseline(document: dict) -> dict:
    """Add the seed baseline and per-config speedups to *document*.

    Two speedup maps against the committed seed: the object engine's
    (``speedup_vs_baseline``, the reference pipeline's own trajectory)
    and the kernel engine's (``kernel_speedup_vs_baseline``).  The
    ``headline_speedup`` tracks the *kernel* engine — the shipping fast
    path — on the headline config; the per-config object numbers remain
    gated separately by ``scripts/bench.py --check``, so kernel gains
    can never mask an object-path regression.
    """
    baseline = load_baseline()
    document["headline"] = HEADLINE
    if baseline is None:
        return document
    document["baseline"] = baseline
    speedup = {}
    kernel_speedup = {}
    for name, row in document["configs"].items():
        base_row = baseline.get("configs", {}).get(name)
        if base_row and base_row.get("insts_per_sec"):
            base_ips = base_row["insts_per_sec"]
            speedup[name] = round(row["insts_per_sec"] / base_ips, 3)
            kernel_row = row.get("kernel")
            if kernel_row:
                kernel_speedup[name] = round(
                    kernel_row["insts_per_sec"] / base_ips, 3)
    document["speedup_vs_baseline"] = speedup
    document["kernel_speedup_vs_baseline"] = kernel_speedup
    document["headline_engine"] = "kernel"
    if HEADLINE in kernel_speedup:
        document["headline_speedup"] = kernel_speedup[HEADLINE]
    elif HEADLINE in speedup:
        document["headline_speedup"] = speedup[HEADLINE]
    return document
