"""Throughput benchmark harness for the timing pipeline.

Measures *simulated instructions per second* — committed instructions
divided by the wall time of :meth:`Pipeline.run` — on a small set of
representative workload/LTP configurations.  Trace generation, oracle
annotation and cache warming happen outside the timed region, so the
numbers isolate the cycle-model hot path that PRs optimise.

``scripts/bench.py`` is the command-line entry point; it writes
``BENCH_pipeline.json`` at the repo root with the current numbers next
to the pre-optimisation seed baseline (``baseline_seed.json`` in this
directory) so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams, baseline_params, ltp_params
from repro.core.pipeline import Pipeline
from repro.harness.runner import (_warm_branch_predictor, _warm_hierarchy,
                                  get_oracle, get_trace)
from repro.ltp.config import LTPConfig, no_ltp, proposed_ltp
from repro.ltp.controller import LTPController
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_workload

#: directory holding the committed seed-baseline snapshot
PERF_DIR = Path(__file__).resolve().parent
BASELINE_SNAPSHOT = PERF_DIR / "baseline_seed.json"

#: the headline config the acceptance criteria track
HEADLINE = "milc_baseline"


def _core(kind: str) -> CoreParams:
    return baseline_params() if kind == "baseline" else ltp_params()


def _ltp(kind: str) -> LTPConfig:
    return no_ltp() if kind == "none" else proposed_ltp()


#: name -> (workload, core kind, ltp kind); chosen to cover the hot paths:
#: fp lattice (headline), LTP parking/release, pointer chasing (memory
#: latency bound) and streaming (prefetcher + bandwidth bound).
BENCH_CONFIGS: Dict[str, tuple] = {
    "milc_baseline": ("lattice_milc", "baseline", "none"),
    "milc_ltp": ("lattice_milc", "small", "proposed"),
    "astar_baseline": ("ptrchase_astar", "baseline", "none"),
    "triad_baseline": ("stream_triad", "baseline", "none"),
}


def run_one(name: str, warmup: int, measure: int, repeats: int) -> dict:
    """Benchmark one named configuration; returns a result row."""
    workload_name, core_kind, ltp_kind = BENCH_CONFIGS[name]
    core = _core(core_kind)
    ltp = _ltp(ltp_kind)
    total = warmup + measure
    trace = get_trace(workload_name, total)
    workload = get_workload(workload_name)
    oracle = (get_oracle(workload_name, total, core, trace)
              if ltp.enabled else None)
    warmup_slice = trace[:warmup]
    measured = trace[warmup:]

    times: List[float] = []
    stats = None
    for _ in range(repeats):
        # untimed: rebuild and warm the mutable structures for this rep
        hierarchy = MemoryHierarchy(core.mem)
        _warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                        warm_regions=workload.warm_regions)
        bpred = GsharePredictor()
        _warm_branch_predictor(bpred, warmup_slice)
        controller = LTPController(ltp, core.mem.dram_latency, oracle=oracle)
        if ltp.enabled and oracle is not None and warmup:
            controller.warm_from_trace(warmup_slice,
                                       oracle.long_latency[:warmup])
        pipeline = Pipeline(measured, params=core, ltp=ltp,
                            controller=controller, hierarchy=hierarchy,
                            branch_predictor=bpred)
        start = time.perf_counter()
        stats = pipeline.run()
        times.append(time.perf_counter() - start)

    best = min(times)
    return {
        "workload": workload_name,
        "core": core_kind,
        "ltp": ltp_kind,
        "committed": stats.committed,
        "cycles": stats.cycles,
        "ipc": round(stats.ipc, 4),
        "best_seconds": round(best, 6),
        "median_seconds": round(statistics.median(times), 6),
        "insts_per_sec": round(stats.committed / best, 1),
    }


def run_bench(warmup: int = 2000, measure: int = 4000, repeats: int = 3,
              names: Optional[List[str]] = None) -> dict:
    """Run the full benchmark matrix; returns the result document body."""
    names = names or list(BENCH_CONFIGS)
    configs = {name: run_one(name, warmup, measure, repeats)
               for name in names}
    return {
        "warmup": warmup,
        "measure": measure,
        "repeats": repeats,
        "configs": configs,
    }


def load_baseline() -> Optional[dict]:
    """The committed pre-optimisation (seed) baseline, if present."""
    if not BASELINE_SNAPSHOT.is_file():
        return None
    try:
        with open(BASELINE_SNAPSHOT) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def attach_baseline(document: dict) -> dict:
    """Add the seed baseline and per-config speedups to *document*."""
    baseline = load_baseline()
    document["headline"] = HEADLINE
    if baseline is None:
        return document
    document["baseline"] = baseline
    speedup = {}
    for name, row in document["configs"].items():
        base_row = baseline.get("configs", {}).get(name)
        if base_row and base_row.get("insts_per_sec"):
            speedup[name] = round(
                row["insts_per_sec"] / base_row["insts_per_sec"], 3)
    document["speedup_vs_baseline"] = speedup
    if HEADLINE in speedup:
        document["headline_speedup"] = speedup[HEADLINE]
    return document
