"""Figure 1: CPI, outstanding requests and resource usage vs IQ size.

Paper expectations:

* MLP-sensitive suite speeds up markedly from IQ 32 to IQ 256 and its
  outstanding memory requests grow; the insensitive suite barely moves.
* IQ 32 + (ideal) LTP lands between IQ 32 and IQ 256 on the sensitive
  suite ("half of the MLP-benefit of a 256-entry IQ").
* At IQ 256 the insensitive suite cannot use the extra resources.
"""

from benchmarks.conftest import archive
from repro.harness.experiments import fig1_motivation, render_fig1
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


def test_fig1_motivation(benchmark, results_dir):
    result = benchmark.pedantic(fig1_motivation, rounds=1, iterations=1)
    archive(results_dir, "fig1_motivation", render_fig1(result))

    sensitive = result[MLP_SENSITIVE]
    insensitive = result[MLP_INSENSITIVE]

    # sensitive: big IQ helps CPI and MLP
    assert sensitive["IQ:256"]["cpi"] < sensitive["IQ:32"]["cpi"]
    assert (sensitive["IQ:256"]["outstanding"]
            > sensitive["IQ:32"]["outstanding"] * 1.10)

    # LTP recovers a substantial part of the gap at IQ 32
    assert sensitive["IQ:32+LTP"]["cpi"] < sensitive["IQ:32"]["cpi"]
    assert (sensitive["IQ:32+LTP"]["outstanding"]
            > sensitive["IQ:32"]["outstanding"])

    # insensitive: IQ size is nearly irrelevant
    ratio = insensitive["IQ:32"]["cpi"] / insensitive["IQ:256"]["cpi"]
    assert ratio < 1.15

    # Figure 1c: the insensitive suite leaves registers and LQ entries
    # idle at IQ 256.  (The paper also reports lower IQ usage; our
    # insensitive suite includes an L1-resident dependent-load ring
    # whose chain legitimately fills the IQ, so IQ usage is not
    # asserted — see EXPERIMENTS.md.)
    assert (insensitive["IQ:256"]["avg_rf"]
            < sensitive["IQ:256"]["avg_rf"])
    assert (insensitive["IQ:256"]["avg_lq"]
            < sensitive["IQ:256"]["avg_lq"])
