"""Figure 11: performance vs number of Non-Ready tickets.

Paper expectations: the NR+NU design degrades gracefully as tickets
shrink from 128 to 4 (fewer trackable long-latency slices), staying at
or above the no-LTP red line, with the NU-only green line as the
ticket-free reference.
"""

import pytest

from benchmarks.conftest import archive
from repro.harness.experiments import fig11_tickets, render_fig11
from repro.workloads import MLP_SENSITIVE


@pytest.fixture(scope="module")
def fig11(results_dir):
    result = fig11_tickets()
    archive(results_dir, "fig11_tickets", render_fig11(result))
    return result


def test_fig11_runs(benchmark, fig11):
    benchmark.pedantic(lambda: fig11, rounds=1, iterations=1)
    assert fig11["tickets"] == [128, 64, 32, 16, 8, 4]


def test_fig11_many_tickets_beat_few(benchmark, fig11):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    series = fig11["by_category"][MLP_SENSITIVE]["nr+nu"]
    # 128 tickets at least as good as 4 tickets (within noise)
    assert series[0] >= series[-1] - 2.0


def test_fig11_nr_nu_beats_no_ltp(benchmark, fig11):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig11["by_category"][MLP_SENSITIVE]
    assert data["nr+nu"][0] > data["no_ltp"]


def test_fig11_nu_line_close_to_full_design(benchmark, fig11):
    """Section 4.3: NU-only covers the majority of the benefit."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    data = fig11["by_category"][MLP_SENSITIVE]
    assert data["nu"] > data["no_ltp"]
    assert data["nu"] >= data["nr+nu"][0] - 12.0
