"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, prints the
rows/series the figure plots, and archives the text under
``benchmarks/results/``.  Runs are cached on disk (``.simcache``), so
re-running the harness is cheap.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def archive(results_dir: Path, name: str, text: str) -> None:
    """Print and persist one experiment's rendered output."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
