"""Figure 10: performance and IQ/RF ED2P vs LTP entries and ports.

Paper expectations:

* The 128-entry, 4-port LTP is within a few points of the IQ64/RF128
  baseline while cutting IQ/RF ED2P by tens of percent.
* One port is noticeably worse than four on the sensitive suite.
* Removing LTP entirely (the red line) costs sensitive performance,
  with a worse ED2P trade than the LTP design.
* On the insensitive suite, no-LTP has slightly better ED2P than LTP
  (the LTP structures are pure overhead there).
"""

import pytest

from benchmarks.conftest import archive
from repro.harness.experiments import fig10_impl_tradeoffs, render_fig10
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


@pytest.fixture(scope="module")
def fig10(results_dir):
    result = fig10_impl_tradeoffs()
    archive(results_dir, "fig10_impl_tradeoffs", render_fig10(result))
    return result


def _point(fig10, category, ports, entries):
    entries_list = fig10["entries"]
    row = fig10["by_category"][category]["series"][f"{ports}p"]
    return row[entries_list.index(entries)]


def test_fig10_runs(benchmark, fig10):
    benchmark.pedantic(lambda: fig10, rounds=1, iterations=1)


def test_fig10_proposed_design_near_baseline(benchmark, fig10):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    point = _point(fig10, MLP_SENSITIVE, ports=4, entries=128)
    assert point["perf"] > -8.0
    assert point["ed2p"] < -20.0


def test_fig10_one_port_worse_than_four(benchmark, fig10):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # sensitive suite: 4 ports at least match 1 port (within noise)
    one = _point(fig10, MLP_SENSITIVE, ports=1, entries=128)
    four = _point(fig10, MLP_SENSITIVE, ports=4, entries=128)
    assert four["perf"] >= one["perf"] - 1.0
    # the port bottleneck bites hardest where everything parks: the
    # insensitive suite loses clearly at a single port
    one_ins = _point(fig10, MLP_INSENSITIVE, ports=1, entries=128)
    four_ins = _point(fig10, MLP_INSENSITIVE, ports=4, entries=128)
    assert four_ins["perf"] > one_ins["perf"] + 2.0


def test_fig10_no_ltp_red_line(benchmark, fig10):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    no_ltp = fig10["by_category"][MLP_SENSITIVE]["no_ltp"]
    proposed = _point(fig10, MLP_SENSITIVE, ports=4, entries=128)
    # removing LTP costs sensitive performance...
    assert no_ltp["perf"] < proposed["perf"]
    # ...and the LTP design wins the ED2P trade on sensitive code
    assert proposed["ed2p"] < no_ltp["ed2p"] + 5.0


def test_fig10_insensitive_overhead(benchmark, fig10):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    no_ltp = fig10["by_category"][MLP_INSENSITIVE]["no_ltp"]
    proposed = _point(fig10, MLP_INSENSITIVE, ports=4, entries=128)
    # for insensitive code no-LTP's ED2P is at least as good (the LTP
    # support structures are overhead there)
    assert no_ltp["ed2p"] <= proposed["ed2p"] + 2.0
    # either way both shrunken configurations save big vs the baseline
    assert proposed["ed2p"] < -15.0
