"""Ablations called out in the paper's text.

* Section 5.6: UIT size — 256 performs well; smaller tables
  misclassify Urgent instructions and lose performance.
* Appendix A: oracle vs two-level hit/miss prediction — "less than 2
  percentage points" difference (we allow a little more slack on our
  short slices).
* Section 4.1: the MLP-sensitivity rule must classify our suites the
  way they were designed.
"""


from benchmarks.conftest import archive
from repro.harness.experiments import (predictor_ablation,
                                       render_predictor_ablation,
                                       render_sensitivity,
                                       render_uit_ablation,
                                       sensitivity_report, uit_ablation)
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


def test_uit_ablation(benchmark, results_dir):
    result = benchmark.pedantic(uit_ablation, rounds=1, iterations=1)
    archive(results_dir, "uit_ablation", render_uit_ablation(result))
    series = result["by_category"][MLP_SENSITIVE]
    sizes = result["sizes"]           # [None, 512, 256, 128, 64]
    at_unlimited = series[sizes.index(None)]
    at_256 = series[sizes.index(256)]
    at_64 = series[sizes.index(64)]
    # 256 entries perform close to unlimited; 64 entries lose ground
    assert at_256 > at_unlimited - 6.0
    assert at_64 <= at_256 + 1.0


def test_predictor_ablation(benchmark, results_dir):
    result = benchmark.pedantic(predictor_ablation, rounds=1, iterations=1)
    archive(results_dir, "predictor_ablation",
            render_predictor_ablation(result))
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        delta = abs(result[category]["oracle"]
                    - result[category]["twolevel"])
        assert delta < 6.0, (category, result[category])


def test_sensitivity_classification(benchmark, results_dir):
    result = benchmark.pedantic(sensitivity_report, rounds=1, iterations=1)
    archive(results_dir, "sensitivity_report", render_sensitivity(result))
    for row in result["rows"]:
        if row["designed_as"] == MLP_INSENSITIVE:
            assert not row["classified_sensitive"], row
    sensitive_rows = [r for r in result["rows"]
                      if r["designed_as"] == MLP_SENSITIVE]
    classified = sum(r["classified_sensitive"] for r in sensitive_rows)
    # the gather-style kernels must classify sensitive; the pointer
    # chaser may not (its MLP is latency-bound, like the paper's
    # pointer-chasing discussion)
    assert classified >= 3
