"""Figure 2: classification of the example loop's instructions.

The reproduced kernel is the paper's own example: the oracle classes
must match Figure 2's table (A/E urgent+ready, D urgent, F/H non-urgent
non-ready, G/I/J/K non-urgent ready).
"""

from benchmarks.conftest import archive
from repro.harness.experiments import fig2_classification, render_fig2


def test_fig2_classification(benchmark, results_dir):
    result = benchmark.pedantic(fig2_classification, rounds=1, iterations=1)
    archive(results_dir, "fig2_classification", render_fig2(result))

    by_pc = {row["pc"]: row["class"] for row in result["rows"]}

    # pc layout of the kernel (see workloads/kernels.py):
    # 0 ldx A (U+R), 1/2 j-- (U+R), 3 fldx B (U, the miss),
    # 4 fadd (NU+NR), 5/6 address of C (NU+R), 7 fst (NU+NR),
    # 8/9 i++ (NU+R), 10 counter (NU+R), 11 branch (NU+R)
    assert by_pc[0] == "U+R"
    assert by_pc[1] == "U+R"
    assert by_pc[3].startswith("U")
    assert by_pc[4] == "NU+NR"
    assert by_pc[5] == "NU+R"
    assert by_pc[6] == "NU+R"
    assert by_pc[7] == "NU+NR"
    assert by_pc[8] == "NU+R"
    assert by_pc[10] == "NU+R"
    assert by_pc[11] == "NU+R"
