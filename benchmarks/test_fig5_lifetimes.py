"""Figure 5: resource-lifetime shortening under LTP.

The paper's timelines show LTP shortening both the IQ residency
(instructions arrive ready) and the register lifetime (allocation moves
from rename to LTP-exit).  We measure average IQ-entry cycles and
register-held cycles per committed instruction.
"""

from benchmarks.conftest import archive
from repro.harness.experiments import fig5_lifetimes, render_fig5


def test_fig5_lifetimes(benchmark, results_dir):
    result = benchmark.pedantic(fig5_lifetimes, rounds=1, iterations=1)
    archive(results_dir, "fig5_lifetimes", render_fig5(result))

    baseline, with_ltp = result["rows"]
    assert baseline["config"].startswith("baseline")
    # LTP must shorten both lifetimes on the milc-like workload
    assert (with_ltp["iq_cycles_per_inst"]
            < baseline["iq_cycles_per_inst"])
    assert (with_ltp["rf_cycles_per_inst"]
            < baseline["rf_cycles_per_inst"])
