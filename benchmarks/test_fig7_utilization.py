"""Figure 7: LTP utilization by resource type and enabled time.

Paper expectations:

* The sensitive suite parks tens of instructions holding tens of
  would-be registers; parked loads/stores are few (most are Urgent) —
  milc is the exception with several loads and stores parked.
* Non-Urgent parking dominates Non-Ready parking.
* The DRAM-timer monitor keeps LTP enabled most of the time on the
  sensitive suite and a small fraction on the insensitive suite.
"""

import pytest

from benchmarks.conftest import archive
from repro.harness.experiments import MILC, fig7_utilization, render_fig7
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


@pytest.fixture(scope="module")
def fig7(results_dir):
    result = fig7_utilization()
    archive(results_dir, "fig7_utilization", render_fig7(result))
    return result


def test_fig7_runs(benchmark, fig7):
    benchmark.pedantic(lambda: fig7, rounds=1, iterations=1)
    assert set(fig7) == {"nr", "nu", "nr+nu"}


def test_fig7_sensitive_parks_many(benchmark, fig7):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sensitive = fig7["nr+nu"][MLP_SENSITIVE]
    assert sensitive["insts"] > 10
    assert sensitive["regs"] > 5


def test_fig7_nu_dominates_nr(benchmark, fig7):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sensitive_nu = fig7["nu"][MLP_SENSITIVE]
    sensitive_nr = fig7["nr"][MLP_SENSITIVE]
    assert sensitive_nu["insts"] > sensitive_nr["insts"]


def test_fig7_milc_parks_loads_and_stores(benchmark, fig7):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    milc = fig7["nr+nu"][MILC]
    assert milc["loads"] > 1.0
    assert milc["stores"] > 1.0


def test_fig7_monitor_tracks_suites(benchmark, fig7):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sensitive = fig7["nr+nu"][MLP_SENSITIVE]
    insensitive = fig7["nr+nu"][MLP_INSENSITIVE]
    assert sensitive["enabled_pct"] > 60
    assert insensitive["enabled_pct"] < sensitive["enabled_pct"]
