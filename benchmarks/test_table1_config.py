"""Table 1: the baseline processor configuration."""

from benchmarks.conftest import archive
from repro.harness.experiments import render_table1, table1_config


def test_table1_config(benchmark, results_dir):
    result = benchmark.pedantic(table1_config, rounds=1, iterations=1)
    text = render_table1(result)
    archive(results_dir, "table1_config", text)
    assert "3.4 GHz" in text
    assert "256 / 64 / 64 / 32" in text
    assert "128 / 128" in text
