"""The paper's headline claim (Section 5.7 / conclusions).

IQ 64->32 and RF 128->96 with the proposed LTP: performance within a
few points of the baseline on MLP-sensitive code, with IQ/RF ED2P cut
by tens of percent; the same shrink *without* LTP loses double-digit
performance.
"""


from benchmarks.conftest import archive
from repro.harness.experiments import headline_summary, render_headline
from repro.workloads import MLP_INSENSITIVE, MLP_SENSITIVE


def test_headline(benchmark, results_dir):
    result = benchmark.pedantic(headline_summary, rounds=1, iterations=1)
    archive(results_dir, "headline", render_headline(result))

    sensitive = result[MLP_SENSITIVE]
    insensitive = result[MLP_INSENSITIVE]

    # without LTP the shrunken core loses double digits on sensitive code
    assert sensitive["no_ltp"]["perf_pct"] < -8.0
    # with LTP it is within a few points of the baseline (or better)
    assert sensitive["proposed"]["perf_pct"] > -5.0
    # and the window-structure ED2P drops by tens of percent
    assert sensitive["proposed"]["ed2p_pct"] < -25.0
    # insensitive code is barely affected either way
    assert insensitive["proposed"]["perf_pct"] > -6.0
    # the monitor keeps LTP mostly on for sensitive code, less for
    # insensitive
    assert (sensitive["proposed"]["enabled_pct"]
            > insensitive["proposed"]["enabled_pct"])
