"""Section 6 / Section 3.2 extensions: WIB comparison and wakeup policy.

* WIB-style slice buffer (Lebeck et al. [1]) drains miss-dependent
  instructions from the IQ but cannot relieve register pressure — the
  contrast the paper draws in related work.  Expect WIB ~ LTP on the
  IQ axis and WIB ~ no-LTP (or worse) on the RF axis.
* The Non-Urgent ROB-position wakeup (Section 3.2) must beat eager
  wakeup when registers are scarce (eager re-allocates registers long
  before commit).
"""


from benchmarks.conftest import archive
from repro.harness.experiments import (alternatives_comparison,
                                       render_alternatives,
                                       render_wakeup_policy,
                                       wakeup_policy_ablation)


def test_wib_vs_ltp(benchmark, results_dir):
    result = benchmark.pedantic(alternatives_comparison, rounds=1,
                                iterations=1)
    archive(results_dir, "alternatives_wib", render_alternatives(result))

    iq16 = result["iq:16"]
    rf48 = result["rf:48"]
    # on the IQ axis the WIB recovers most of LTP's benefit
    assert iq16["wib"] > iq16["no-ltp"] + 5.0
    # on the RF axis the WIB does not help; LTP does
    assert rf48["ltp-nr+nu"] > rf48["wib"] + 3.0
    assert rf48["wib"] <= rf48["no-ltp"] + 3.0


def test_wakeup_policy(benchmark, results_dir):
    result = benchmark.pedantic(wakeup_policy_ablation, rounds=1,
                                iterations=1)
    archive(results_dir, "wakeup_policy", render_wakeup_policy(result))
    # at scarce registers, late (ROB-position) wakeup must win
    tight = result["rf:48"]
    assert tight["rob-position"] >= tight["eager"] - 1.0
    some_gain = any(v["rob-position"] > v["eager"] + 1.0
                    for v in result.values())
    assert some_gain, result