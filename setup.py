"""Legacy setup shim.

The execution environment is offline with an old setuptools and no
``wheel`` package, so ``pip install -e .`` must take the legacy
``setup.py develop`` path; all real metadata lives in pyproject.toml
(which deliberately omits a [build-system] table so pip keeps using
this shim — keep the two files' fields in sync).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=("Long Term Parking (LTP): criticality-aware resource "
                 "allocation in OOO processors — MICRO 2015 reproduction"),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
