"""The two reference policies: the paper's LTP and the stalling baseline.

:class:`LTPPolicy` re-expresses the historical pipeline/controller
coupling as an :class:`~repro.policies.base.AllocationPolicy`: every
hook forwards to the wrapped :class:`~repro.ltp.controller.LTPController`
as a pre-bound method, so the refactored pipeline performs exactly the
same operations in exactly the same order as the pre-seam monolith —
the differential tests assert bit-identical statistics.

:class:`BaselineStallPolicy` is the no-LTP machine made explicit: it
wraps a *disabled* controller, so rename still classifies instructions
(the UIT activity and urgency tallies the disabled-LTP baseline always
recorded) but every instruction allocates at rename and stalls when a
resource is full.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ltp.config import LTPConfig
from repro.ltp.controller import LTPController
from repro.ltp.oracle import OracleInfo
from repro.policies.base import AllocationPolicy
from repro.policies.registry import register_policy


@register_policy(
    "ltp",
    needs_oracle=lambda ltp: ltp.enabled,
    parks=lambda ltp: ltp.enabled,
    uses_uit=lambda ltp: ltp.enabled,
    description="the paper's Long Term Parking controller "
                "(criticality-aware deferred allocation); degrades to "
                "the stalling baseline when ltp.enabled is False")
class LTPPolicy(AllocationPolicy):
    """Long Term Parking, driven through the policy seam.

    When *controller* is supplied (legacy ``Pipeline(controller=...)``
    wiring and tests) it is adopted as-is; otherwise one is built from
    *ltp*.  Structural attributes (ports, reserve, park flags) mirror
    *ltp* exactly as the pre-seam pipeline read them off its own
    config.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None,
                 controller: Optional[LTPController] = None) -> None:
        super().__init__(ltp, dram_latency)
        if controller is None:
            controller = LTPController(ltp, dram_latency, oracle=oracle)
        self.controller = controller
        self.queue = controller.queue
        self.monitor = controller.monitor
        # pre-bound forwarding: the pipeline's per-record calls resolve
        # to the controller's bound methods with no wrapper frame, so
        # the hot path costs exactly what the monolith did
        self.observe_rename = controller.observe_rename
        self.may_allocate = controller.decide
        self.park = controller.park
        self.on_release_scan = controller.release_candidates
        self.release = controller.release
        self.on_tag_known = controller.on_tag_known
        self.on_load_complete = controller.on_load_complete
        self.on_commit = controller.on_commit
        self.on_violation = controller.on_violation
        self.on_dram_demand_access = controller.on_dram_demand_access

    @property
    def release_reserve(self) -> int:
        config = self.ltp_config
        return config.release_reserve if config.enabled else 0

    @property
    def ports(self) -> int:
        return self.ltp_config.ports

    @property
    def park_loads(self) -> bool:
        return self.ltp_config.park_loads

    @property
    def park_stores(self) -> bool:
        return self.ltp_config.park_stores

    @property
    def defer_registers(self) -> bool:
        return self.ltp_config.defer_registers

    def warm_from_trace(self, warmup_slice: Sequence,
                        long_latency_flags: Optional[Sequence]) -> None:
        if long_latency_flags is not None and self.ltp_config.enabled:
            self.controller.warm_from_trace(warmup_slice,
                                            long_latency_flags)

    def stats_extra(self, stats) -> None:
        classifier = self.controller.classifier
        uit = getattr(classifier, "uit", None)
        if uit is not None:
            stats.uit_lookups = uit.lookups
            stats.uit_inserts = uit.inserts
        stats.ltp_park_stalls = self.controller.park_stalls


@register_policy(
    "baseline-stall",
    description="allocate everything at rename and stall on any full "
                "resource (LTP off), regardless of the LTP config")
class BaselineStallPolicy(LTPPolicy):
    """The conventional machine: rename-time allocation, no parking.

    Built on a disabled controller so classification side effects (UIT
    lookups, urgency tallies) match the historical no-LTP runs
    bit-for-bit, while the LTP mechanism itself is forced off even if
    the run's LTP config says ``enabled=True``.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        disabled = ltp if not ltp.enabled else ltp.but(enabled=False)
        super().__init__(disabled, dram_latency, oracle=oracle)
