"""Name-based registry of allocation policies.

Policies self-register with the :func:`register_policy` decorator::

    @register_policy("random-park", description="...")
    class RandomParkPolicy(ParkingPolicy):
        ...

``SimConfig(policy="random-park")`` then selects the policy end to end
— session execution, sweep axes (``{"policy": [...]}``), the
``repro run --policy`` flag — without any layer hard-coding the list.
The built-in policies live in :mod:`repro.policies.ltp`,
:mod:`repro.policies.scenarios` and :mod:`repro.policies.learned`,
imported lazily the first time the registry is queried so module
import order never matters.

``needs_oracle`` metadata tells the session layer whether to compute
the (expensive) trace oracle annotation before building the policy; it
may be a plain bool or a predicate over the run's
:class:`~repro.ltp.config.LTPConfig` (LTP itself only needs the oracle
while enabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.ltp.config import LTPConfig
from repro.util import first_doc_line

#: the policy every config uses unless told otherwise — the LTP
#: controller path, which with ``ltp.enabled=False`` behaves exactly
#: like the stalling baseline.  Configs carrying this default serialize
#: without a ``policy`` field, so historical payloads and cache keys
#: are untouched.
DEFAULT_POLICY = "ltp"

OracleNeed = Union[bool, Callable[[LTPConfig], bool]]


@dataclass
class PolicyInfo:
    """One registered policy: its factory plus registry metadata."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    needs_oracle: OracleNeed = False
    #: does the policy occupy the parking queue (drives the energy
    #: model's LTP-structure charge)?  bool, or predicate over the
    #: run's LTPConfig
    parks: OracleNeed = False
    #: does the policy consult the UIT classifier CAM?
    uses_uit: OracleNeed = False
    #: does the policy consume a frozen model artifact (the config's
    #: ``model`` payload is handed to its factory)?
    needs_model: OracleNeed = False


_REGISTRY: Dict[str, PolicyInfo] = {}


def register_policy(name: str, description: Optional[str] = None,
                    needs_oracle: OracleNeed = False,
                    parks: OracleNeed = False,
                    uses_uit: OracleNeed = False,
                    needs_model: OracleNeed = False) -> Callable:
    """Class decorator registering an :class:`AllocationPolicy`.

    The decorated class must be constructible as
    ``factory(ltp_config, dram_latency, oracle=...)``.  ``parks`` and
    ``uses_uit`` describe which window structures the policy clocks
    (the energy model charges only those); like ``needs_oracle`` they
    may be plain bools or predicates over the run's
    :class:`~repro.ltp.config.LTPConfig`.
    """

    def decorate(cls):
        if name in _REGISTRY:
            raise ValueError(f"policy {name!r} is already registered")
        doc = description
        if doc is None:
            doc = first_doc_line(cls.__doc__)
        cls.name = name
        _REGISTRY[name] = PolicyInfo(name=name, factory=cls,
                                     description=doc,
                                     needs_oracle=needs_oracle,
                                     parks=parks, uses_uit=uses_uit,
                                     needs_model=needs_model)
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the built-in policy definitions (registers them)."""
    import repro.policies.ltp  # noqa: F401  (import side effect)
    import repro.policies.scenarios  # noqa: F401
    import repro.policies.learned  # noqa: F401


def policy_info(name: str) -> PolicyInfo:
    """Look up a registered policy's metadata by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(
            f"unknown allocation policy {name!r} "
            f"(registered: {known})") from None


def check_policy_name(name: str) -> str:
    """Validate *name* against the registry (returns it unchanged)."""
    if not isinstance(name, str):
        raise ValueError(f"policy must be a string, got {type(name)}")
    policy_info(name)
    return name


def policy_names() -> List[str]:
    """Sorted names of every registered allocation policy."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def policy_descriptions() -> Dict[str, str]:
    """Name -> one-line description for every registered policy."""
    _ensure_builtins()
    return {name: _REGISTRY[name].description
            for name in sorted(_REGISTRY)}


def _resolve_need(need: OracleNeed, ltp: LTPConfig) -> bool:
    if callable(need):
        return bool(need(ltp))
    return bool(need)


def policy_needs_oracle(name: str, ltp: LTPConfig) -> bool:
    """Does *name* want the trace oracle annotation for this config?"""
    return _resolve_need(policy_info(name).needs_oracle, ltp)


def policy_parks(name: str, ltp: LTPConfig) -> bool:
    """Does *name* occupy the parking queue under this config?"""
    return _resolve_need(policy_info(name).parks, ltp)


def policy_uses_uit(name: str, ltp: LTPConfig) -> bool:
    """Does *name* consult the UIT classifier under this config?"""
    return _resolve_need(policy_info(name).uses_uit, ltp)


def policy_needs_model(name: str, ltp: LTPConfig) -> bool:
    """Does *name* consume a frozen model artifact under this config?"""
    return _resolve_need(policy_info(name).needs_model, ltp)


def build_policy(name: str, ltp: LTPConfig, dram_latency: int,
                 oracle=None, model=None):
    """Instantiate the policy registered as *name*.

    *model* (a frozen artifact payload, or ``None`` for the committed
    default) is only forwarded to policies registered with
    ``needs_model`` — everyone else keeps the historical factory
    signature.
    """
    info = policy_info(name)
    if _resolve_need(info.needs_model, ltp):
        return info.factory(ltp, dram_latency, oracle=oracle, model=model)
    return info.factory(ltp, dram_latency, oracle=oracle)
