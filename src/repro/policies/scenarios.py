"""Scenario policies beyond the paper: oracle, random and depth parking.

These populate the policy-scenario space the LTP paper's comparisons
imply but never simulate directly:

* :class:`OracleParkPolicy` — perfect classification: park exactly the
  instructions the trace oracle labels Non-Urgent.  The upper bound any
  learned classifier (the UIT) chases.
* :class:`RandomParkPolicy` — a criticality-blind strawman: park a
  deterministic pseudo-random fraction of instructions and wake them
  after a fixed countdown.  If criticality classification mattered,
  this must lose to LTP at equal parking rates.
* :class:`DepthParkPolicy` — a dependence-depth heuristic: park
  instructions far down an in-flight dependence chain (they cannot
  issue soon anyway) and wake them when their operands are ready — a
  WIB-flavoured "park until ready" design point.

All three ride on :class:`~repro.policies.base.ParkingPolicy`'s
soundness machinery (parked-bit propagation, forced ROB-head release)
and are parameterised by the run's LTP config (``entries``, ``ports``,
``release_reserve``), so the ``policy-compare`` sweep preset can put
them on the same axes as LTP itself.
"""

from __future__ import annotations

from typing import Optional

from repro.core.inflight import InFlightInst
from repro.ltp.config import LTPConfig
from repro.ltp.oracle import OracleInfo
from repro.policies.base import ParkingPolicy
from repro.policies.ltp import LTPPolicy
from repro.policies.registry import register_policy


@register_policy(
    "oracle-park",
    needs_oracle=True,
    parks=True,
    description="park exactly the oracle's Non-Urgent set (perfect "
                "classification; the bound learned classifiers chase)")
class OracleParkPolicy(LTPPolicy):
    """LTP wakeup discipline driven by perfect oracle classification.

    Reuses the full LTP release machinery (ROB-position wakeup, forced
    head release, reserves) but classifies with the trace oracle
    regardless of what the run's LTP config says, and keeps parking
    enabled unconditionally (no DRAM-timer gating) — the idealisation
    the limit study reaches for with learned structures removed.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        if oracle is None:
            raise ValueError(
                "oracle-park requires the trace oracle annotation "
                "(run it through the session layer)")
        config = ltp.but(enabled=True, classifier="oracle",
                         ll_predictor="oracle", monitor="on",
                         uit_size=None)
        super().__init__(config, dram_latency, oracle=oracle)


def _mix(seq: int, pc: int) -> int:
    """A tiny deterministic integer hash (no Python hash salting)."""
    h = (seq * 0x9E3779B1 ^ pc * 0x85EBCA77) & 0xFFFFFFFF
    h = (h ^ (h >> 15)) * 0xC2B2AE3D & 0xFFFFFFFF
    return (h ^ (h >> 13)) & 0xFFFF


@register_policy(
    "random-park",
    parks=True,
    description="park a deterministic pseudo-random fraction of "
                "instructions, waking each after a fixed countdown "
                "(criticality-blind strawman)")
class RandomParkPolicy(ParkingPolicy):
    """Criticality-blind parking: a fixed fraction, a fixed countdown.

    Parking decisions hash the instruction's (sequence number, PC) so
    runs are bit-reproducible across processes and machines.  Parked
    records wake ``delay`` cycles after rename (oldest first, ports
    permitting); :meth:`next_event_cycle` exposes the next countdown
    expiry so the pipeline's idle jump never skips a wakeup.
    """

    #: fraction of instructions parked (out of 65536)
    fraction = 0.25
    #: cycles a parked record waits before becoming releasable
    delay = 32

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        super().__init__(ltp, dram_latency)
        self._threshold = int(self.fraction * 65536)

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        return _mix(record.seq, record.dyn.pc) < self._threshold

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        parked_at = record.rename_cycle
        return parked_at is not None and now - parked_at >= self.delay

    def next_event_cycle(self, now: int) -> Optional[int]:
        head = self.queue.head()
        if head is None or head.rename_cycle is None:
            return None
        expiry = head.rename_cycle + self.delay
        return expiry if expiry > now else None


@register_policy(
    "depth-park",
    parks=True,
    description="park instructions deep in an in-flight dependence "
                "chain, waking each when its operands are ready "
                "(WIB-flavoured park-until-ready)")
class DepthParkPolicy(ParkingPolicy):
    """Dependence-depth parking with readiness-based wakeup.

    An instruction whose chain of *in-flight* producers is at least
    ``threshold`` deep cannot issue for several cycles no matter what,
    so deferring its allocations costs little.  Parked records wake as
    soon as every producer has completed (``waiting_on == 0``) — data
    readiness, not criticality, drives the wakeup, which is exactly the
    slice-buffer contrast the paper draws in related work.
    """

    #: minimum in-flight producer-chain depth that parks
    threshold = 3

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        super().__init__(ltp, dram_latency)
        #: seq -> dependence depth, for in-flight records only (pruned
        #: at commit, so bounded by the ROB)
        self._depths = {}

    def observe_rename(self, record: InFlightInst) -> None:
        depth = 0
        depths = self._depths
        for producer in record.producer_records:
            if producer is not None and not producer.done:
                candidate = depths.get(producer.seq, 0) + 1
                if candidate > depth:
                    depth = candidate
        depths[record.seq] = depth

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        return self._depths.get(record.seq, 0) >= self.threshold

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        return record.waiting_on == 0

    def on_commit(self, record: InFlightInst) -> None:
        self._depths.pop(record.seq, None)
