"""The allocation-policy seam between rename and the back-end resources.

The paper's core observation is that *when* an instruction claims its
back-end resources (IQ slot, physical register, LQ/SQ entry) is a
policy choice, not a fixed pipeline property: the baseline allocates
everything at rename and stalls when anything is full, LTP defers
allocation for non-critical instructions, and a whole family of other
strategies (oracle classification, random deferral, readiness-based
deferral) occupy the same design space.

:class:`AllocationPolicy` is that seam.  The pipeline drives a policy
through a narrow hook surface and never looks inside it:

* :meth:`~AllocationPolicy.observe_rename` — classify a freshly renamed
  record (urgency, readiness, long-latency prediction).
* :meth:`~AllocationPolicy.may_allocate` — ``"dispatch"`` (allocate
  everything now), ``"park"`` (defer into the policy's queue) or
  ``"stall"`` (rename can make no progress this cycle).
* :meth:`~AllocationPolicy.park` / :meth:`~AllocationPolicy.release` —
  entry/exit of the parking structure (always an
  :class:`~repro.ltp.queue.LTPQueue`, so occupancy statistics stay
  O(1) per cycle for every policy).
* :meth:`~AllocationPolicy.on_release_scan` — the wakeup policy: which
  parked records may leave this cycle, oldest first.
* completion/commit hooks (:meth:`~AllocationPolicy.on_tag_known`,
  :meth:`~AllocationPolicy.on_load_complete`,
  :meth:`~AllocationPolicy.on_commit`,
  :meth:`~AllocationPolicy.on_violation`,
  :meth:`~AllocationPolicy.on_dram_demand_access`) that feed whatever
  the policy learns from.
* :meth:`~AllocationPolicy.stats_extra` — policy-owned statistics
  exported into :class:`~repro.core.stats.SimStats` at the end of a
  run.

Structural attributes (``queue``, ``monitor``, ``ports``,
``release_reserve``, ``park_loads``/``park_stores``/
``defer_registers``) size the shared pipeline machinery; the LTP
policy mirrors them from its :class:`~repro.ltp.config.LTPConfig`, and
other parking policies reuse the same config fields (``entries``,
``ports``, ``release_reserve``) so one sweep axis parameterises every
policy.

Policies register by name in :mod:`repro.policies.registry`;
``SimConfig(policy="...")`` selects one end to end through the
session, sweep and CLI layers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.inflight import InFlightInst
from repro.ltp.config import LTPConfig
from repro.ltp.monitor import DramTimerMonitor
from repro.ltp.queue import LTPQueue

#: the three allocation verdicts :meth:`AllocationPolicy.may_allocate`
#: may return
DISPATCH = "dispatch"
PARK = "park"
STALL = "stall"


class AllocationPolicy:
    """Base policy: allocate everything at rename, never park.

    Subclasses override the hooks they care about.  The base class is
    deliberately inert — an empty queue, an always-off monitor, no
    classification — so a policy only pays for what it uses.
    """

    #: registry name (set by the ``@register_policy`` decorator)
    name: str = "?"

    def __init__(self, ltp: LTPConfig, dram_latency: int) -> None:
        self.ltp_config = ltp
        #: the parking structure; stays empty for non-parking policies.
        #: Always an LTPQueue so the pipeline's occupancy integration
        #: and ``_ltp_entries`` fast-path gate work unchanged.
        self.queue = LTPQueue(1, fifo_only=True)
        #: power-management monitor consulted by the pipeline's idle
        #: jump; "off" means the policy never gates on it
        self.monitor = DramTimerMonitor(dram_latency, mode="off")
        #: rename stalls caused by a full parking structure
        self.park_stalls = 0

    # -- structural attributes the pipeline sizes itself from ----------
    @property
    def release_reserve(self) -> int:
        """Registers / LSQ entries reserved for parked-release progress."""
        return 0

    @property
    def ports(self) -> int:
        """Releases per cycle out of the parking structure."""
        return 1

    #: parked memory operations also defer their LQ/SQ allocation
    park_loads = False
    park_stores = False
    #: parked instructions defer their register allocation (False =
    #: WIB-style: registers taken at rename even when parked)
    defer_registers = True

    # -- rename-time hooks ---------------------------------------------
    def observe_rename(self, record: InFlightInst) -> None:
        """Classify *record* (urgency/readiness); base: leave defaults."""

    def may_allocate(self, record: InFlightInst, now: int,
                     memdep_forced: bool = False) -> str:
        """Decide *record*'s fate at rename; base: always dispatch."""
        return DISPATCH

    def park(self, record: InFlightInst) -> None:
        """Accept *record* into the parking structure."""
        self.queue.push(record)

    # -- wakeup ---------------------------------------------------------
    def on_release_scan(self, now: int, boundary_seq: int, force_seq: int,
                        limit: int) -> List[InFlightInst]:
        """Parked records eligible to leave this cycle, oldest first.

        *boundary_seq* is the second-oldest in-flight long-latency
        instruction's sequence number, *force_seq* the ROB head's when
        the head is parked (the deadlock-avoidance rule every parking
        policy must honour).
        """
        return []

    def release(self, record: InFlightInst) -> None:
        """*record* leaves the parking structure (resources granted)."""
        self.queue.remove(record)

    def next_event_cycle(self, now: int) -> Optional[int]:
        """The next cycle at which a parked record may become eligible
        for reasons invisible to the pipeline's event heap (e.g. a
        time-based release rule), or ``None``.  The idle jump consults
        this so skipping cycles never changes results."""
        return None

    # -- execution / retirement hooks ------------------------------------
    def on_tag_known(self, record: InFlightInst) -> None:
        """A long-latency operation signalled early data return."""

    def on_load_complete(self, record: InFlightInst,
                         was_long_latency: bool) -> None:
        """A load finished; *was_long_latency* is the ground truth."""

    def on_commit(self, record: InFlightInst) -> None:
        """*record* retired."""

    def on_violation(self, load_pc: int, store_pc: int) -> None:
        """A memory-order violation was detected."""

    def on_dram_demand_access(self, now: int) -> None:
        """A demand access missed in the L3."""

    def attach_memory(self, hierarchy) -> None:
        """The pipeline offers its memory hierarchy before cycle 0.

        Policies that read live cache/MSHR state (``loadpred-park``)
        keep the reference; the base class ignores it, so most policies
        stay hierarchy-free.  The reference must be used read-only —
        the hierarchy's mutation schedule is owned by the pipeline.
        """

    # -- warmup / wrap-up ------------------------------------------------
    def warm_from_trace(self, warmup_slice: Sequence,
                        long_latency_flags: Optional[Sequence]) -> None:
        """Pre-train online structures from the warmup slice."""

    def stats_extra(self, stats) -> None:
        """Export policy-owned statistics into *stats* at run end."""
        stats.ltp_park_stalls = self.park_stalls

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


class ParkingPolicy(AllocationPolicy):
    """Shared machinery for policies that actually park.

    Implements the two invariants every sound parking policy needs:

    * **parked-bit propagation** — a consumer of a parked instruction
      is force-parked too, so nothing in the issue queue can wait on a
      parked producer (the deadlock LTP's Section 5.3 closes), and
    * **forced head release** — the ROB head is always eligible to
      leave, guaranteeing forward progress.

    Subclasses supply :meth:`wants_park` (who parks) and
    :meth:`may_release` (who wakes).  The parking structure is sized by
    the run's :class:`~repro.ltp.config.LTPConfig` (``entries``,
    ``ports``, ``release_reserve``), so the same sweep axes tune every
    parking policy.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int) -> None:
        super().__init__(ltp, dram_latency)
        self.queue = LTPQueue(ltp.entries, fifo_only=False)

    @property
    def release_reserve(self) -> int:
        return self.ltp_config.release_reserve

    @property
    def ports(self) -> int:
        return self.ltp_config.ports

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        """Does the policy choose to park *record*? (no forcing here)"""
        raise NotImplementedError

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        """Is the parked *record* eligible to wake this cycle?"""
        raise NotImplementedError

    def may_allocate(self, record: InFlightInst, now: int,
                     memdep_forced: bool = False) -> str:
        forced = memdep_forced
        reason = "memdep" if memdep_forced else None
        if not forced:
            for producer in record.producer_records:
                if producer is not None and producer.parked:
                    forced = True
                    reason = "parked-bit"
                    break
        if not forced and not self.wants_park(record, now):
            return DISPATCH
        if self.queue.full:
            self.park_stalls += 1
            return STALL
        record.park_reason = reason or self.name
        return PARK

    def on_release_scan(self, now: int, boundary_seq: int, force_seq: int,
                        limit: int) -> List[InFlightInst]:
        if not len(self.queue):
            return []
        may_release = self.may_release

        def eligible(record: InFlightInst) -> bool:
            if record.seq == force_seq:
                record.forced_release = True
                return True
            return may_release(record, now, boundary_seq)

        return self.queue.candidates(eligible, limit)
