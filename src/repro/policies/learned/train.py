"""Dependency-free offline trainer for the learned parking policy.

Fits a tiny **averaged perceptron** over the integer feature vectors of
:mod:`repro.policies.learned.features` — no numpy, no floating point in
the update rule, a fixed seed driving the only randomness (sample
shuffling) — so the same traces and seed produce a byte-identical
frozen artifact on every platform.  The averaged weights are kept in
scaled-integer form (``c * w - u``), which preserves the decision
boundary exactly without ever dividing.

The label is the oracle's urgency verdict: the model learns to
recognise *Urgent* instructions, and ``model-park`` parks the rest —
the same split the paper's UIT chases with hardware tables.

:func:`train_model` is the whole flow behind ``repro train``:
extract → fit → freeze → evaluate against the oracle on held-out
workloads the fit never saw.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.policies.learned.artifact import ModelArtifact
from repro.policies.learned.features import (FEATURE_NAMES,
                                             dataset_for_workload)

Sample = Tuple[Tuple[int, ...], int]

#: defaults behind ``repro train`` (and the committed example artifact)
DEFAULT_TRAIN_WORKLOADS = ("ptrchase_astar", "lattice_milc",
                           "stream_triad")
DEFAULT_HOLDOUT_WORKLOADS = ("sparse_gather", "compute_fp")
DEFAULT_INSTS = 3000
DEFAULT_SEED = 2015
DEFAULT_EPOCHS = 3


def fit_perceptron(samples: Sequence[Sample], seed: int = DEFAULT_SEED,
                   epochs: int = DEFAULT_EPOCHS,
                   ) -> Tuple[Tuple[int, ...], int]:
    """Averaged-perceptron fit; returns scaled integer (weights, bias).

    The iteration order is the only randomness: one
    ``random.Random(seed)`` shuffle per epoch (Mersenne Twister, stable
    across platforms and Python versions), so identical samples and
    seed give identical weights.
    """
    if not samples:
        raise ValueError("cannot fit a model on an empty dataset")
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    n = len(FEATURE_NAMES)
    weights = [0] * n
    bias = 0
    # averaging accumulators (c-weighted update sums)
    acc = [0] * n
    acc_bias = 0
    count = 1
    rng = random.Random(seed)
    order = list(range(len(samples)))
    for _ in range(epochs):
        rng.shuffle(order)
        for index in order:
            features, label = samples[index]
            y = 1 if label else -1
            score = bias
            for i in range(n):
                score += weights[i] * features[i]
            if y * score <= 0:
                for i in range(n):
                    delta = y * features[i]
                    weights[i] += delta
                    acc[i] += count * delta
                bias += y
                acc_bias += count * y
            count += 1
    averaged = tuple(count * weights[i] - acc[i] for i in range(n))
    return averaged, count * bias - acc_bias


def evaluate(artifact: ModelArtifact, samples: Sequence[Sample],
             ) -> Dict[str, Any]:
    """Accuracy of the frozen model against oracle labels."""
    if not samples:
        return {"samples": 0, "accuracy": 0.0, "urgent_frac": 0.0,
                "predicted_urgent_frac": 0.0}
    correct = urgent = predicted = 0
    for features, label in samples:
        verdict = artifact.is_urgent(features)
        urgent += label
        predicted += verdict
        if verdict == bool(label):
            correct += 1
    total = len(samples)
    return {
        "samples": total,
        "accuracy": correct / total,
        "urgent_frac": urgent / total,
        "predicted_urgent_frac": predicted / total,
    }


def train_model(train_workloads: Optional[Sequence[str]] = None,
                holdout_workloads: Optional[Sequence[str]] = None,
                insts: int = DEFAULT_INSTS, seed: int = DEFAULT_SEED,
                epochs: int = DEFAULT_EPOCHS, threshold: int = 0,
                mem_params=None,
                ) -> Tuple[ModelArtifact, Dict[str, Any]]:
    """The full offline flow: extract, fit, freeze, evaluate.

    Training and held-out workloads must not overlap — the reported
    accuracy is only meaningful on traces the fit never saw.  Returns
    the frozen artifact plus an evaluation report (per-workload and
    overall held-out accuracy, training provenance).
    """
    from repro.workloads import get_workload
    train_names = list(train_workloads or DEFAULT_TRAIN_WORKLOADS)
    holdout_names = list(holdout_workloads or DEFAULT_HOLDOUT_WORKLOADS)
    overlap = sorted(set(train_names) & set(holdout_names))
    if overlap:
        raise ValueError(
            f"workloads cannot be both trained on and held out: "
            f"{', '.join(overlap)}")
    if insts <= 0:
        raise ValueError("insts must be positive")

    train_samples: List[Sample] = []
    for name in train_names:
        train_samples.extend(
            dataset_for_workload(get_workload(name), insts, mem_params))
    weights, bias = fit_perceptron(train_samples, seed=seed,
                                   epochs=epochs)
    artifact = ModelArtifact(
        weights=weights, bias=bias, threshold=threshold,
        provenance={
            "trainer": "averaged-perceptron",
            "train_workloads": train_names,
            "holdout_workloads": holdout_names,
            "insts": insts,
            "seed": seed,
            "epochs": epochs,
            "samples": len(train_samples),
        })

    per_workload: Dict[str, Dict[str, Any]] = {}
    held_samples: List[Sample] = []
    for name in holdout_names:
        samples = dataset_for_workload(get_workload(name), insts,
                                       mem_params)
        per_workload[name] = evaluate(artifact, samples)
        held_samples.extend(samples)
    report = {
        "train": evaluate(artifact, train_samples),
        "holdout": evaluate(artifact, held_samples),
        "holdout_workloads": per_workload,
        "content_hash": artifact.content_hash,
    }
    return artifact, report
