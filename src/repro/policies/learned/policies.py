"""The learned and adaptive parking policies.

Three registered policies close ROADMAP item 3, each approaching the
oracle from a different direction:

* :class:`ModelParkPolicy` (``model-park``) — pure inference over a
  frozen offline-trained artifact (:mod:`.artifact`): the feature
  vector is assembled from hook-visible state and the integer linear
  model decides urgency; nothing learns at run time.
* :class:`ConfidenceParkPolicy` (``confidence-park``) — the UIT-based
  online classifier plus a per-PC saturating confidence table: a
  Non-Urgent verdict parks only once parking at that PC has proven
  harmless (no forced ROB-head releases), LTP-table-style.
* :class:`LoadPredParkPolicy` (``loadpred-park``) — predicts
  long-latency loads from live memory-hierarchy state (cache presence
  probes, MSHR fills and occupancy from :mod:`repro.memory`) plus the
  Appendix-A two-level hit/miss predictor, and parks the dependents of
  predicted-long loads until their operands are ready.

All three ride on :class:`~repro.policies.base.ParkingPolicy`'s
soundness machinery (parked-bit propagation, forced head release) and
wake on data readiness (``waiting_on == 0``), so idle-skip equivalence
holds by construction: rename attempts only happen on cycles the idle
jump never skips, and every piece of learned state advances either
per rename attempt (exactly like the LTP classifier) or keyed by
sequence number, identically on both simulation engines.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.inflight import InFlightInst
from repro.ltp.classifier import OnlineClassifier
from repro.ltp.config import LTPConfig
from repro.ltp.oracle import OracleInfo
from repro.ltp.predictor import HitMissPredictor
from repro.memory.cache import block_of
from repro.policies.base import ParkingPolicy
from repro.policies.learned.artifact import (ModelArtifact,
                                             load_default_payload)
from repro.policies.learned.features import FeatureState
from repro.policies.registry import register_policy


@register_policy(
    "model-park",
    parks=True,
    needs_model=True,
    description="park instructions a frozen offline-trained linear "
                "model (repro train) classifies Non-Urgent; pure "
                "integer inference in the hot path")
class ModelParkPolicy(ParkingPolicy):
    """Frozen-model parking: offline training, inference-only runs.

    The config's embedded artifact payload (``SimConfig.model``) — or
    the committed example artifact when none is embedded — supplies
    integer weights over the versioned feature schema.  At rename the
    policy assembles the online analogue of the training features
    (op class, dependence depth, per-PC long-latency rate, decaying
    memory pressure), scores it, and parks the Non-Urgent.  The
    decision is memoised per sequence number so rename retries replay
    it instead of re-deriving it from later state.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None,
                 model=None) -> None:
        super().__init__(ltp, dram_latency)
        if model is None:
            model = load_default_payload()
        self.artifact = ModelArtifact.from_payload(model)
        self._state = FeatureState()
        #: seq -> park verdict, frozen at the first rename attempt
        self._verdicts: Dict[int, bool] = {}
        #: seq -> dependence depth, in-flight records only
        self._depths: Dict[int, int] = {}

    def observe_rename(self, record: InFlightInst) -> None:
        seq = record.seq
        if seq in self._verdicts:
            return  # a rename retry replays the frozen verdict
        depth = 0
        depths = self._depths
        for producer in record.producer_records:
            if producer is not None and not producer.done:
                candidate = depths.get(producer.seq, 0) + 1
                if candidate > depth:
                    depth = candidate
        depths[seq] = depth
        dyn = record.dyn
        state = self._state
        urgent = self.artifact.is_urgent(state.vector(dyn, depth))
        self._verdicts[seq] = not urgent
        state.step(dyn.pc)

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        return self._verdicts.get(record.seq, False)

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        return record.waiting_on == 0

    def on_load_complete(self, record: InFlightInst,
                         was_long_latency: bool) -> None:
        self._state.note_load_outcome(record.dyn.pc, was_long_latency)

    def on_commit(self, record: InFlightInst) -> None:
        self._verdicts.pop(record.seq, None)
        self._depths.pop(record.seq, None)

    def warm_from_trace(self, warmup_slice, long_latency_flags) -> None:
        self._state.warm(warmup_slice, long_latency_flags)


@register_policy(
    "confidence-park",
    parks=True,
    uses_uit=True,
    description="UIT urgency classification gated by a per-PC "
                "saturating confidence table: Non-Urgent instructions "
                "park only where parking has proven harmless")
class ConfidenceParkPolicy(ParkingPolicy):
    """Confidence-weighted parking over the online UIT classifier.

    The Section 5.2 classifier supplies the urgency verdict; a per-PC
    saturating counter supplies trust in it.  Every committed
    instruction this policy *chose* to park votes: a forced ROB-head
    release (the park got in the way of retirement) costs confidence,
    a clean drain earns it back, and only PCs at or above the
    threshold may park again — so a mispredicting PC quickly loses its
    parking rights instead of stalling the head over and over.
    """

    CONF_MAX = 7
    CONF_START = 4
    CONF_THRESHOLD = 4
    CONF_PENALTY = 2

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        super().__init__(ltp, dram_latency)
        self.classifier = OnlineClassifier(uit_size=ltp.uit_size,
                                           uit_ways=ltp.uit_ways)
        #: pc -> saturating parking confidence (0..CONF_MAX)
        self._confidence: Dict[int, int] = {}

    def observe_rename(self, record: InFlightInst) -> None:
        # one classification (and backward-propagation step) per rename
        # attempt, exactly like the LTP controller drives the UIT
        record.urgent = self.classifier.observe_rename(record)

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        if record.urgent:
            return False
        confidence = self._confidence.get(record.dyn.pc, self.CONF_START)
        return confidence >= self.CONF_THRESHOLD

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        return record.waiting_on == 0

    def on_commit(self, record: InFlightInst) -> None:
        if record.is_load and record.actual_ll:
            self.classifier.on_long_latency_commit(record.dyn.pc)
        if record.park_reason != self.name:
            return  # forced parks (memdep/parked-bit) cast no vote
        pc = record.dyn.pc
        confidence = self._confidence.get(pc, self.CONF_START)
        if record.forced_release:
            confidence -= self.CONF_PENALTY
            self._confidence[pc] = confidence if confidence > 0 else 0
        elif confidence < self.CONF_MAX:
            self._confidence[pc] = confidence + 1

    def on_violation(self, load_pc: int, store_pc: int) -> None:
        self.classifier.on_violation(store_pc)

    def warm_from_trace(self, warmup_slice, long_latency_flags) -> None:
        if long_latency_flags is None:
            return
        events = ((dyn.pc, dyn.inst.srcs, dyn.inst.dst, bool(flag))
                  for dyn, flag in zip(warmup_slice, long_latency_flags))
        self.classifier.warm(events, None)

    def stats_extra(self, stats) -> None:
        uit = self.classifier.uit
        stats.uit_lookups = uit.lookups
        stats.uit_inserts = uit.inserts
        stats.ltp_park_stalls = self.park_stalls


@register_policy(
    "loadpred-park",
    parks=True,
    description="predict long-latency loads from live cache/MSHR state "
                "plus the two-level hit/miss predictor, and park their "
                "dependents until data-ready")
class LoadPredParkPolicy(ParkingPolicy):
    """Load-latency-predicted parking from memory-hierarchy state.

    At a load's first rename attempt the policy consults the pipeline's
    own hierarchy read-only: a block with an outstanding past-L2 MSHR
    fill is long; a block present in the L1D/L2 tags is short;
    otherwise the Appendix-A two-level hit/miss predictor decides, and
    a full MSHR file forces the long verdict (the access cannot even
    start).  Consumers of an in-flight predicted-long load park and
    wake when their operands are ready; the predictor trains on every
    actual load outcome.  The load itself never parks — issuing it
    early is what exposes the miss.
    """

    def __init__(self, ltp: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        super().__init__(ltp, dram_latency)
        self.predictor = HitMissPredictor()
        self._hierarchy = None
        #: load seqs already predicted (one verdict per dynamic load)
        self._seen: Set[int] = set()
        #: load seqs predicted long latency and still in flight
        self._predicted_long: Set[int] = set()

    def attach_memory(self, hierarchy) -> None:
        self._hierarchy = hierarchy

    def _predict_long(self, record: InFlightInst) -> bool:
        hierarchy = self._hierarchy
        addr = record.dyn.addr
        if hierarchy is not None and addr is not None:
            block = block_of(addr)
            fill = hierarchy.mshrs.outstanding(block)
            if fill is not None:
                return fill.level in ("l3", "dram")
            if hierarchy.l1d.probe(block) or hierarchy.l2.probe(block):
                return False
            if not hierarchy.mshrs.can_allocate():
                return True  # the access cannot even start yet
        return self.predictor.predict_long_latency(record.dyn.pc)

    def observe_rename(self, record: InFlightInst) -> None:
        if not record.is_load:
            return
        seq = record.seq
        if seq in self._seen:
            return  # rename retries keep the first attempt's verdict
        self._seen.add(seq)
        if self._predict_long(record):
            self._predicted_long.add(seq)

    def wants_park(self, record: InFlightInst, now: int) -> bool:
        predicted = self._predicted_long
        if not predicted:
            return False
        for producer in record.producer_records:
            if producer is not None and not producer.done \
                    and producer.seq in predicted:
                return True
        return False

    def may_release(self, record: InFlightInst, now: int,
                    boundary_seq: int) -> bool:
        return record.waiting_on == 0

    def on_load_complete(self, record: InFlightInst,
                         was_long_latency: bool) -> None:
        seq = record.seq
        if seq in self._seen:
            self.predictor.update(record.dyn.pc, was_long_latency)
            self._predicted_long.discard(seq)

    def on_commit(self, record: InFlightInst) -> None:
        if record.is_load:
            self._seen.discard(record.seq)
            self._predicted_long.discard(record.seq)

    def warm_from_trace(self, warmup_slice, long_latency_flags) -> None:
        if long_latency_flags is None:
            return
        update = self.predictor.update
        for dyn, flag in zip(warmup_slice, long_latency_flags):
            if dyn.is_load:
                update(dyn.pc, bool(flag))
