"""Feature extraction for the learned parking policies.

One feature schema serves two consumers that must agree:

* **offline** — :func:`extract_dataset` walks a predecoded trace in
  program order, pairs every dynamic instruction's feature vector with
  the oracle's urgency label (:func:`repro.ltp.oracle.annotate_trace`),
  and yields the deterministic dataset the trainer fits;
* **online** — :class:`FeatureState` is the incremental state machine
  behind both: the offline walk drives it from trace metadata, and
  :class:`~repro.policies.learned.policies.ModelParkPolicy` drives it
  from the pipeline's rename/completion hooks, so the frozen weights
  see the same feature semantics at inference time.

Every feature is a small non-negative integer, so the dot products the
frozen model computes are exact on any platform — no floating point in
the hot path or the trainer.  The schema is versioned
(:data:`FEATURE_SCHEMA_VERSION` + :data:`FEATURE_NAMES`); frozen
artifacts embed both and refuse to load against a different schema.

The online hooks see strictly less than the offline walk (load
outcomes arrive at completion, not in program order), so the per-PC
long-latency rate and the memory-pressure counter are *online
analogues* of the offline features rather than bit-equal mirrors —
close enough for the weights to transfer, and documented here rather
than promised away.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.trace import DynInst
from repro.ltp.oracle import OracleInfo

#: bump when the meaning/order of :data:`FEATURE_NAMES` changes; frozen
#: artifacts carry it and refuse to load against a mismatch
FEATURE_SCHEMA_VERSION = 1

#: feature order inside every vector (and the weights of an artifact)
FEATURE_NAMES: Tuple[str, ...] = (
    "is_load",        # memory read
    "is_store",       # memory write
    "is_branch",      # conditional control flow
    "is_long_op",     # fixed long-latency op class (int/fp divide)
    "n_srcs",         # register source count (0..3)
    "src_depth",      # in-flight dependence-chain depth, capped
    "pc_ll_rate",     # per-PC long-latency load counter (0..PC_LL_MAX)
    "pc_new",         # first dynamic execution of this PC
    "mem_pressure",   # decaying recent long-latency traffic (0..PRESSURE_MAX)
)

#: caps keeping every feature a small saturating integer
DEPTH_CAP = 8
PC_LL_MAX = 7
PRESSURE_MAX = 15

#: op-class values (``OpClass.value``) that are always long latency
LONG_FIXED_CLASSES = ("int_div", "fp_div")

#: producers further back than this many instructions are treated as
#: architectural (no longer in flight) by the offline dependence walk
OFFLINE_WINDOW = 192


class FeatureState:
    """Incremental per-PC / global state behind the feature vector.

    Owns everything except the dependence depth, which each consumer
    tracks itself (offline: a seq-indexed sliding window; online: the
    policy's in-flight producer records).
    """

    __slots__ = ("pc_ll", "pc_seen", "pressure")

    def __init__(self) -> None:
        #: pc -> saturating long-latency load counter (0..PC_LL_MAX)
        self.pc_ll: Dict[int, int] = {}
        #: PCs executed at least once
        self.pc_seen: Set[int] = set()
        #: decaying recent long-latency traffic (0..PRESSURE_MAX)
        self.pressure = 0

    def vector(self, dyn: DynInst, depth: int) -> Tuple[int, ...]:
        """The feature vector for *dyn* given its dependence *depth*.

        Pure read — call before :meth:`step`/:meth:`note_load_outcome`
        so the vector never sees the instruction's own outcome.
        """
        return (
            1 if dyn.is_load else 0,
            1 if dyn.is_store else 0,
            1 if dyn.is_branch else 0,
            1 if dyn.op_class.value in LONG_FIXED_CLASSES else 0,
            dyn.n_srcs,
            depth if depth < DEPTH_CAP else DEPTH_CAP,
            self.pc_ll.get(dyn.pc, 0),
            0 if dyn.pc in self.pc_seen else 1,
            self.pressure,
        )

    def step(self, pc: int) -> None:
        """Advance past one instruction: mark the PC seen, decay."""
        self.pc_seen.add(pc)
        if self.pressure:
            self.pressure -= 1

    def note_load_outcome(self, pc: int, long_latency: bool) -> None:
        """Train the per-PC rate (and pressure) with a load outcome."""
        counter = self.pc_ll.get(pc, 0)
        if long_latency:
            if counter < PC_LL_MAX:
                self.pc_ll[pc] = min(PC_LL_MAX, counter + 2)
            pressure = self.pressure + 4
            self.pressure = (pressure if pressure < PRESSURE_MAX
                             else PRESSURE_MAX)
        elif counter:
            self.pc_ll[pc] = counter - 1

    def warm(self, warmup_slice: Sequence[DynInst],
             long_latency_flags: Optional[Sequence] = None) -> None:
        """Pre-train from a warmup slice (mirrors the offline walk)."""
        if long_latency_flags is None:
            for dyn in warmup_slice:
                self.step(dyn.pc)
            return
        for dyn, flag in zip(warmup_slice, long_latency_flags):
            self.step(dyn.pc)
            if dyn.is_load:
                self.note_load_outcome(dyn.pc, bool(flag))


def offline_depth(depths: Dict[int, int], dyn: DynInst,
                  window: int = OFFLINE_WINDOW) -> int:
    """Dependence-chain depth of *dyn* over a seq-indexed window."""
    depth = 0
    seq = dyn.seq
    for producer in dyn.src_producers:
        if producer < 0 or seq - producer > window:
            continue
        candidate = depths.get(producer, 0) + 1
        if candidate > depth:
            depth = candidate
    depths[seq] = depth
    return depth


def extract_dataset(trace: Sequence[DynInst], oracle: OracleInfo,
                    window: int = OFFLINE_WINDOW,
                    ) -> List[Tuple[Tuple[int, ...], int]]:
    """Deterministic (features, urgent-label) pairs for one trace.

    Walks the trace once in program order; sample *i* pairs the feature
    vector visible just before instruction *i* executes with the
    oracle's urgency verdict for it (1 = Urgent, 0 = Non-Urgent — the
    parking candidates).
    """
    state = FeatureState()
    depths: Dict[int, int] = {}
    urgent = oracle.urgent
    long_latency = oracle.long_latency
    samples: List[Tuple[Tuple[int, ...], int]] = []
    for i, dyn in enumerate(trace):
        depth = offline_depth(depths, dyn, window)
        samples.append((state.vector(dyn, depth), 1 if urgent[i] else 0))
        state.step(dyn.pc)
        if dyn.is_load:
            state.note_load_outcome(dyn.pc, bool(long_latency[i]))
        if len(depths) > 4 * window:
            horizon = dyn.seq - window
            for seq in [s for s in depths if s < horizon]:
                del depths[seq]
    return samples


def dataset_for_workload(workload, insts: int, mem_params=None,
                         ) -> List[Tuple[Tuple[int, ...], int]]:
    """Trace a workload and extract its labelled dataset."""
    from repro.ltp.oracle import annotate_trace
    trace = workload.trace(insts)
    oracle = annotate_trace(trace, mem_params,
                            warm_regions=workload.warm_regions)
    return extract_dataset(trace, oracle)
