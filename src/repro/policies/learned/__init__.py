"""Learned-policy subsystem: offline training, frozen inference.

The package splits the learned-parking story into four layers:

* :mod:`.features` — the versioned feature schema plus deterministic
  dataset extraction (oracle urgency labels over predecoded traces);
* :mod:`.train` — the dependency-free averaged-perceptron trainer
  behind ``repro train``;
* :mod:`.artifact` — versioned, content-hashed frozen model artifacts
  that embed into :class:`~repro.harness.config.SimConfig`;
* :mod:`.policies` — the three registered policies (``model-park``,
  ``confidence-park``, ``loadpred-park``).

Importing the package registers the policies, which is how
``repro.policies.registry`` pulls them in.
"""

from repro.policies.learned.artifact import (ModelArtifact,
                                             ModelArtifactError,
                                             default_artifact_path,
                                             validate_model_payload)
from repro.policies.learned.features import (FEATURE_NAMES,
                                             FEATURE_SCHEMA_VERSION,
                                             extract_dataset)
from repro.policies.learned.policies import (ConfidenceParkPolicy,
                                             LoadPredParkPolicy,
                                             ModelParkPolicy)
from repro.policies.learned.train import evaluate, fit_perceptron, train_model

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "ConfidenceParkPolicy",
    "LoadPredParkPolicy",
    "ModelArtifact",
    "ModelArtifactError",
    "ModelParkPolicy",
    "default_artifact_path",
    "evaluate",
    "extract_dataset",
    "fit_perceptron",
    "train_model",
    "validate_model_payload",
]
