"""Frozen model artifacts: versioned, content-hashed, JSON on disk.

A frozen artifact is the contract between the offline trainer and the
inference-only ``model-park`` policy: integer weights over the
versioned feature schema, a decision threshold, training provenance,
and a content hash over the canonical payload.  The payload embeds
into :class:`~repro.harness.config.SimConfig` (the ``model`` field) so
a swept model is part of the result identity — two sweeps with
different weights never share cache keys — while configs without a
model keep their historical keys.

Loading validates everything loudly: wrong format, wrong artifact or
feature-schema version, malformed weights and hash mismatches all
raise :class:`ModelArtifactError` with a message naming the problem,
so a corrupted or stale artifact fails the run instead of silently
parking the wrong instructions.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.policies.learned.features import (FEATURE_NAMES,
                                             FEATURE_SCHEMA_VERSION)

#: payload discriminator, so arbitrary JSON cannot pose as a model
ARTIFACT_FORMAT = "repro-learned-policy"
#: artifact payload version (bump on incompatible payload changes)
ARTIFACT_VERSION = 1

#: repo-relative home of the committed example artifact that makes
#: ``model-park`` work out of the box
DEFAULT_ARTIFACT_RELPATH = Path("examples") / "models" / "model-park-v1.json"


class ModelArtifactError(ValueError):
    """A model artifact payload failed validation."""


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical serialization the content hash covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_hash(payload: Mapping[str, Any]) -> str:
    """Content hash of *payload* minus its own ``content_hash`` field."""
    body = {k: v for k, v in payload.items() if k != "content_hash"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()[:16]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ModelArtifactError(f"bad model artifact: {message}")


class ModelArtifact:
    """One frozen linear urgency model (weights, threshold, provenance).

    The decision rule is pure integer arithmetic::

        urgent  iff  bias + sum(w[i] * x[i]) >= threshold

    and ``model-park`` parks exactly the instructions the model calls
    *not* urgent.
    """

    def __init__(self, weights: Sequence[int], bias: int,
                 threshold: int = 0,
                 provenance: Optional[Mapping[str, Any]] = None) -> None:
        if len(weights) != len(FEATURE_NAMES):
            raise ModelArtifactError(
                f"bad model artifact: {len(weights)} weights for "
                f"{len(FEATURE_NAMES)} features")
        self.weights: Tuple[int, ...] = tuple(int(w) for w in weights)
        self.bias = int(bias)
        self.threshold = int(threshold)
        self.provenance: Dict[str, Any] = dict(provenance or {})

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def score(self, features: Sequence[int]) -> int:
        """Integer decision score of one feature vector."""
        total = self.bias
        for weight, value in zip(self.weights, features):
            total += weight * value
        return total

    def is_urgent(self, features: Sequence[int]) -> bool:
        """The frozen classification: urgent iff score >= threshold."""
        return self.score(features) >= self.threshold

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The JSON payload, content hash included."""
        payload: Dict[str, Any] = {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "feature_schema": {
                "version": FEATURE_SCHEMA_VERSION,
                "names": list(FEATURE_NAMES),
            },
            "weights": list(self.weights),
            "bias": self.bias,
            "threshold": self.threshold,
            "provenance": dict(self.provenance),
        }
        payload["content_hash"] = payload_hash(payload)
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "ModelArtifact":
        """Validate and rebuild an artifact from its payload."""
        _require(isinstance(payload, Mapping),
                 f"expected a mapping, got {type(payload).__name__}")
        _require(payload.get("format") == ARTIFACT_FORMAT,
                 f"format is {payload.get('format')!r}, expected "
                 f"{ARTIFACT_FORMAT!r}")
        _require(payload.get("version") == ARTIFACT_VERSION,
                 f"artifact version {payload.get('version')!r} does not "
                 f"match this build ({ARTIFACT_VERSION}); re-train with "
                 f"'repro train'")
        schema = payload.get("feature_schema")
        _require(isinstance(schema, Mapping),
                 "missing feature_schema section")
        _require(schema.get("version") == FEATURE_SCHEMA_VERSION,
                 f"feature schema v{schema.get('version')!r} does not "
                 f"match this build (v{FEATURE_SCHEMA_VERSION}); "
                 f"re-train with 'repro train'")
        _require(list(schema.get("names") or []) == list(FEATURE_NAMES),
                 "feature names do not match this build's schema")
        weights = payload.get("weights")
        _require(isinstance(weights, (list, tuple))
                 and len(weights) == len(FEATURE_NAMES)
                 and all(isinstance(w, int) and not isinstance(w, bool)
                         for w in weights),
                 f"weights must be {len(FEATURE_NAMES)} integers")
        bias = payload.get("bias")
        threshold = payload.get("threshold", 0)
        _require(isinstance(bias, int) and not isinstance(bias, bool),
                 "bias must be an integer")
        _require(isinstance(threshold, int)
                 and not isinstance(threshold, bool),
                 "threshold must be an integer")
        recorded = payload.get("content_hash")
        expected = payload_hash(payload)
        _require(recorded == expected,
                 f"content hash mismatch (recorded {recorded!r}, "
                 f"payload hashes to {expected!r}) — the artifact was "
                 f"edited or corrupted")
        return cls(weights=weights, bias=bias, threshold=threshold,
                   provenance=payload.get("provenance") or {})

    @property
    def content_hash(self) -> str:
        return payload_hash(self.to_payload())

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the artifact byte-stably (sorted keys, one newline)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_payload(), indent=2, sort_keys=True)
        path.write_text(text + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ModelArtifact":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ModelArtifactError(
                f"cannot read model artifact {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ModelArtifactError(
                f"model artifact {path} is not valid JSON: {exc}") \
                from None
        return cls.from_payload(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"<ModelArtifact {self.content_hash} "
                f"threshold={self.threshold}>")


def validate_model_payload(payload: Any) -> None:
    """Raise :class:`ModelArtifactError` unless *payload* is a valid
    frozen artifact (the :class:`~repro.harness.config.SimConfig`
    boundary check)."""
    ModelArtifact.from_payload(payload)


def default_artifact_path() -> Path:
    """The committed example artifact (repo-root relative)."""
    repo_root = Path(__file__).resolve().parents[4]
    return repo_root / DEFAULT_ARTIFACT_RELPATH


def load_default_payload() -> Dict[str, Any]:
    """Payload of the committed example artifact.

    ``model-park`` falls back to this when the config carries no
    embedded model, so the policy works out of the box; a missing file
    gets the same loud failure as a corrupted one.
    """
    path = default_artifact_path()
    if not path.is_file():
        raise ModelArtifactError(
            f"no embedded model and the default artifact is missing "
            f"({path}); train one with 'repro train --out {path}' or "
            f"pass --model")
    return ModelArtifact.load(path).to_payload()
