"""repro.policies — pluggable allocation/parking strategies.

The layer between rename and the back-end resources: an
:class:`AllocationPolicy` decides, per renamed instruction, whether to
allocate its IQ slot / physical register / LQ-SQ entries now
("dispatch"), defer them into a parking structure ("park"), or stall
rename; and decides when parked instructions wake.  The paper's Long
Term Parking is one registered policy among several — see
:mod:`repro.policies.base` for the hook surface and
:mod:`repro.policies.registry` for how names resolve.

Built-in policies:

========================  ============================================
``ltp``                   the paper's controller (default; equals the
                          baseline when ``ltp.enabled`` is False)
``baseline-stall``        rename-time allocation, never parks
``oracle-park``           perfect (oracle) Non-Urgent classification
``random-park``           criticality-blind random parking strawman
``depth-park``            dependence-depth parking, wake-when-ready
``model-park``            frozen offline-trained model inference
                          (:mod:`repro.policies.learned`)
``confidence-park``       UIT verdicts gated by per-PC confidence
``loadpred-park``         memory-hierarchy load-latency prediction
========================  ============================================
"""

from repro.policies.base import (DISPATCH, PARK, STALL, AllocationPolicy,
                                 ParkingPolicy)
from repro.policies.learned import (ConfidenceParkPolicy,
                                    LoadPredParkPolicy, ModelParkPolicy)
from repro.policies.ltp import BaselineStallPolicy, LTPPolicy
from repro.policies.registry import (DEFAULT_POLICY, PolicyInfo,
                                     build_policy, check_policy_name,
                                     policy_descriptions, policy_info,
                                     policy_names, policy_needs_model,
                                     policy_needs_oracle, register_policy)
from repro.policies.scenarios import (DepthParkPolicy, OracleParkPolicy,
                                      RandomParkPolicy)

__all__ = [
    "AllocationPolicy",
    "BaselineStallPolicy",
    "ConfidenceParkPolicy",
    "DEFAULT_POLICY",
    "DISPATCH",
    "DepthParkPolicy",
    "LTPPolicy",
    "LoadPredParkPolicy",
    "ModelParkPolicy",
    "OracleParkPolicy",
    "PARK",
    "ParkingPolicy",
    "PolicyInfo",
    "RandomParkPolicy",
    "STALL",
    "build_policy",
    "check_policy_name",
    "policy_descriptions",
    "policy_info",
    "policy_names",
    "policy_needs_model",
    "policy_needs_oracle",
    "register_policy",
]
