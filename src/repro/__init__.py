"""repro — a reproduction of "Long Term Parking (LTP): Criticality-aware
Resource Allocation in OOO Processors" (Sembrant et al., MICRO 2015).

The package layers:

* :mod:`repro.isa` — a small RISC-like ISA, assembler and functional
  executor that turns kernels into dynamic traces with true dependences.
* :mod:`repro.memory` — the three-level cache hierarchy, MSHRs, stride
  prefetcher and DRAM model of the paper's Table 1.
* :mod:`repro.core` — a trace-driven cycle model of the out-of-order
  core (ROB/IQ/RF/LQ/SQ, issue, commit, branch and memory-dependence
  prediction).
* :mod:`repro.ltp` — the paper's contribution: classification, the
  Urgent Instruction Table, the parking queue, tickets, wakeup policies
  and the DRAM-timer monitor.
* :mod:`repro.workloads` — synthetic SPEC-like kernels forming the
  MLP-sensitive and MLP-insensitive suites.
* :mod:`repro.energy` — first-order IQ/RF/LTP energy and ED2P model.
* :mod:`repro.harness` — cached simulation runner and one experiment
  function per paper table/figure.

Quick start::

    from repro import SimConfig, run_sim, ltp_params, proposed_ltp

    config = SimConfig(workload="lattice_milc", core=ltp_params(),
                       ltp=proposed_ltp())
    stats = run_sim(config)
    print(stats["cpi"], stats["avg_ltp"])
"""

from repro.core.params import CoreParams, baseline_params, ltp_params
from repro.core.pipeline import Pipeline, SimulationDeadlock, simulate
from repro.core.stats import SimStats
from repro.harness.config import SimConfig
from repro.harness.runner import run_sim
from repro.ltp.config import (LTPConfig, limit_ltp, no_ltp,
                              proposed_ltp, wib_ltp)
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.memory.hierarchy import MemParams, MemoryHierarchy
from repro.workloads import (Workload, full_suite, get_workload,
                             mlp_insensitive_suite, mlp_sensitive_suite,
                             workload_names)

__version__ = "1.0.0"

__all__ = [
    "CoreParams",
    "LTPConfig",
    "MemParams",
    "MemoryHierarchy",
    "OracleInfo",
    "Pipeline",
    "SimConfig",
    "SimStats",
    "SimulationDeadlock",
    "Workload",
    "annotate_trace",
    "baseline_params",
    "full_suite",
    "get_workload",
    "limit_ltp",
    "ltp_params",
    "mlp_insensitive_suite",
    "mlp_sensitive_suite",
    "no_ltp",
    "proposed_ltp",
    "wib_ltp",
    "run_sim",
    "simulate",
    "workload_names",
]
