"""repro — a reproduction of "Long Term Parking (LTP): Criticality-aware
Resource Allocation in OOO Processors" (Sembrant et al., MICRO 2015).

The package layers:

* :mod:`repro.isa` — a small RISC-like ISA, assembler and functional
  executor that turns kernels into dynamic traces with true dependences.
* :mod:`repro.memory` — the three-level cache hierarchy, MSHRs, stride
  prefetcher and DRAM model of the paper's Table 1.
* :mod:`repro.core` — a trace-driven cycle model of the out-of-order
  core (ROB/IQ/RF/LQ/SQ, issue, commit, branch and memory-dependence
  prediction).
* :mod:`repro.ltp` — the paper's contribution: classification, the
  Urgent Instruction Table, the parking queue, tickets, wakeup policies
  and the DRAM-timer monitor.
* :mod:`repro.workloads` — synthetic SPEC-like kernels forming the
  MLP-sensitive and MLP-insensitive suites.
* :mod:`repro.energy` — first-order IQ/RF/LTP energy and ED2P model.
* :mod:`repro.harness` — cached simulation runner and one experiment
  function per paper table/figure.

* :mod:`repro.api` — the supported programmatic surface: sessions that
  own caches and backends, declarative sweep specs, typed results and
  the experiment registry.

Quick start::

    from repro import Session, SimConfig, ltp_params, proposed_ltp

    config = SimConfig(workload="lattice_milc", core=ltp_params(),
                       ltp=proposed_ltp())
    with Session() as session:
        result = session.run(config)
    print(result.cpi, result["avg_ltp"])

(the legacy ``run_sim(config) -> dict`` entry point remains available
and runs on the process-global default session).
"""

from repro.api import (ExecutionBackend, ProcessPoolBackend, SerialBackend,
                       Session, SimResult, SweepSpec, default_session,
                       experiment_names, get_experiment, ltp_preset,
                       ltp_preset_names, set_default_session)
from repro.core.params import CoreParams, baseline_params, ltp_params
from repro.core.pipeline import Pipeline, SimulationDeadlock, simulate
from repro.core.stats import SimStats
from repro.harness.config import SimConfig
from repro.harness.runner import run_sim, run_sims
from repro.ltp.config import (LTPConfig, limit_ltp, no_ltp,
                              proposed_ltp, wib_ltp)
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.memory.hierarchy import MemParams, MemoryHierarchy
from repro.workloads import (Workload, full_suite, get_workload,
                             mlp_insensitive_suite, mlp_sensitive_suite,
                             workload_names)

__version__ = "1.1.0"

__all__ = [
    "CoreParams",
    "ExecutionBackend",
    "LTPConfig",
    "MemParams",
    "MemoryHierarchy",
    "OracleInfo",
    "Pipeline",
    "ProcessPoolBackend",
    "SerialBackend",
    "Session",
    "SimConfig",
    "SimResult",
    "SimStats",
    "SimulationDeadlock",
    "SweepSpec",
    "Workload",
    "annotate_trace",
    "baseline_params",
    "default_session",
    "experiment_names",
    "full_suite",
    "get_experiment",
    "get_workload",
    "limit_ltp",
    "ltp_params",
    "ltp_preset",
    "ltp_preset_names",
    "mlp_insensitive_suite",
    "mlp_sensitive_suite",
    "no_ltp",
    "proposed_ltp",
    "run_sim",
    "run_sims",
    "set_default_session",
    "simulate",
    "wib_ltp",
    "workload_names",
]
