"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — available workloads and their categories.
* ``run WORKLOAD`` — simulate one workload under a chosen core/LTP
  configuration and print the key metrics (``--json`` for the full
  :class:`repro.api.SimResult` payload).
* ``classify WORKLOAD`` — print the oracle classification of each
  static instruction (the Figure 2 view, for any kernel).
* ``train`` — fit a learned parking model offline (extract oracle-
  labelled datasets → averaged-perceptron fit → frozen JSON artifact →
  held-out evaluation; see :mod:`repro.policies.learned`).  ``--out``
  writes the artifact ``model-park`` loads; ``--check-floor`` turns
  the held-out accuracy into an exit code for CI.
* ``experiment NAME`` — regenerate one of the paper's tables/figures
  (``--json`` for the raw result document; ``--list`` enumerates the
  registered experiments).
* ``sweep SPEC`` — run a declarative sweep (a ``SweepSpec`` JSON file
  or a named preset; ``--list-presets`` enumerates the presets) with
  optional key-stable sharding (``--shard i/k``), a durable result
  store (``--store``), resume (``--resume``), store merging
  (``--merge``), live progress (``--progress``; with ``--json`` the
  document carries the full lifecycle-event log), and ``--coordinate``
  — drive *all* ``--shards K`` partitions from this one process over
  a worker pool instead of launching K CLI invocations.  Execution is
  selected by registered executor name (``--executor`` +
  ``--workers`` for the TCP fleet) or submitted to a sweep daemon
  (``--daemon HOST:PORT``).
* ``worker`` — serve simulations over TCP: accepts serialized
  configurations from ``--executor remote`` dispatchers (or a sweep
  daemon's fleet) and answers with results, heartbeating during long
  runs.  Prints ``worker listening on HOST:PORT`` once bound.
* ``serve`` — the sweep daemon: accepts whole ``SweepSpec``
  submissions from concurrent clients, multiplexes them over one
  ``--workers`` fleet with fair round-robin scheduling, and persists
  landed points to per-sweep stores under ``--store-dir`` (resumable
  across restarts).  ``--inspect`` attaches a per-sweep
  :class:`~repro.api.inspect.SweepInspector` to every submission.
* ``watch STORE`` — inspect a sweep result store: progress,
  per-workload summary, anomaly annotations and quarantined points;
  ``--follow`` polls the file and prints a line as points land.

``sweep --inspect`` turns on online QA over a local run: every landed
result is validated (stat invariants, per-workload outlier baselines,
operational alarms), confirmed anomalies are persisted as store
annotation rows, and quarantined points re-run on ``--resume``.

``run``/sweep specs select an allocation policy (``--policy`` /
``SimConfig.policy`` / a ``"policy"`` sweep axis) from the
:mod:`repro.policies` registry.

Everything routes through :mod:`repro.api`: the LTP presets come from
the shared registry in :mod:`repro.ltp.config`, experiments resolve via
the decorator registry, and simulations run on the process-global
default :class:`~repro.api.session.Session` (via the shim-aware
:func:`repro.harness.runner.run_sim_result`, so harness-level test
overrides apply to the CLI too).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.api import (CoordinatorBackend, ResultStore, Session,
                       SweepDaemon, SweepInspector, SweepSpec,
                       WorkerServer, backend_for_jobs, default_session,
                       executor_names, experiment_names, get_experiment,
                       ltp_preset, ltp_preset_names, merge_stores,
                       parse_shard, submit_sweep, summarize)
from repro.api.executors import executor_from_options
from repro.api.remote.protocol import format_address, parse_address
from repro.core.params import baseline_params, ltp_params
from repro.harness.config import DEFAULT_ENGINE, ENGINES, SimConfig
from repro.harness.experiments import (resolve_sweep_spec,
                                       sweep_preset_descriptions,
                                       sweep_preset_names)
from repro.harness.report import (render_json, render_sweep_summary,
                                  render_table)
from repro.harness.runner import run_sim_result
from repro.ltp.config import LTP_PRESETS
from repro.ltp.oracle import annotate_trace
from repro.policies import DEFAULT_POLICY, policy_names
from repro.policies.learned import ModelArtifact, ModelArtifactError
from repro.policies.learned.train import (DEFAULT_EPOCHS,
                                          DEFAULT_HOLDOUT_WORKLOADS,
                                          DEFAULT_INSTS, DEFAULT_SEED,
                                          DEFAULT_TRAIN_WORKLOADS,
                                          train_model)
from repro.workloads import full_suite, get_workload

#: legacy alias — the presets live in :data:`repro.ltp.config.LTP_PRESETS`
LTP_CHOICES = LTP_PRESETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Long Term Parking (MICRO 2015) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload")
    run_p.add_argument("--core", choices=["baseline", "small"],
                       default="baseline",
                       help="baseline = IQ64/RF128; small = IQ32/RF96")
    run_p.add_argument("--ltp", choices=ltp_preset_names(),
                       default="none")
    run_p.add_argument("--policy", choices=policy_names(),
                       default=DEFAULT_POLICY,
                       help="allocation policy (default: the LTP "
                            "controller path; see repro.policies)")
    run_p.add_argument("--engine", choices=list(ENGINES),
                       default=DEFAULT_ENGINE,
                       help="simulation engine: the reference object "
                            "pipeline or the bit-identical columnar "
                            "kernel")
    run_p.add_argument("--model", type=Path, default=None,
                       metavar="ARTIFACT",
                       help="frozen model artifact for learned "
                            "policies (default: the committed example "
                            "under examples/models/)")
    run_p.add_argument("--iq", type=int, default=None,
                       help="override IQ size")
    run_p.add_argument("--rf", type=int, default=None,
                       help="override available registers (both classes)")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--measure", type=int, default=None)
    run_p.add_argument("--no-cache", action="store_true")
    run_p.add_argument("--json", action="store_true",
                       help="emit the SimResult payload as JSON")

    cls_p = sub.add_parser("classify",
                           help="oracle-classify a workload's kernel")
    cls_p.add_argument("workload")
    cls_p.add_argument("--insts", type=int, default=4000)

    train_p = sub.add_parser(
        "train", help="fit a learned parking model offline and freeze "
                      "it as a versioned artifact")
    train_p.add_argument("--workloads", nargs="+", default=None,
                         metavar="NAME",
                         help="training workloads (default: "
                              f"{', '.join(DEFAULT_TRAIN_WORKLOADS)})")
    train_p.add_argument("--holdout", nargs="+", default=None,
                         metavar="NAME",
                         help="held-out evaluation workloads (default: "
                              f"{', '.join(DEFAULT_HOLDOUT_WORKLOADS)})")
    train_p.add_argument("--insts", type=int, default=DEFAULT_INSTS,
                         help="instructions traced per workload "
                              f"(default {DEFAULT_INSTS})")
    train_p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                         help="shuffle seed — same traces + seed give "
                              "a byte-identical artifact "
                              f"(default {DEFAULT_SEED})")
    train_p.add_argument("--epochs", type=int, default=DEFAULT_EPOCHS,
                         help=f"perceptron epochs "
                              f"(default {DEFAULT_EPOCHS})")
    train_p.add_argument("--threshold", type=int, default=0,
                         help="decision threshold frozen into the "
                              "artifact (default 0)")
    train_p.add_argument("--out", type=Path, default=None,
                         metavar="PATH",
                         help="write the frozen artifact here "
                              "(omit for a dry run: train + report "
                              "only)")
    train_p.add_argument("--check-floor", type=float, default=None,
                         metavar="ACC",
                         help="exit non-zero unless held-out accuracy "
                              ">= ACC (the CI regression gate)")
    train_p.add_argument("--json", action="store_true",
                         help="emit the training report as JSON")

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", nargs="?", choices=experiment_names(),
                       help="experiment to run (see --list)")
    exp_p.add_argument("--list", action="store_true",
                       help="list the registered experiments and exit")
    exp_p.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the experiment's "
                            "sweeps (default 1 = the serial executor; "
                            "0 = one per CPU; >1 selects the "
                            "process-pool executor)")
    exp_p.add_argument("--json", action="store_true",
                       help="emit the raw result document as JSON")

    sweep_p = sub.add_parser(
        "sweep", help="run a declarative sweep (shardable, resumable)")
    sweep_p.add_argument(
        "spec", nargs="?", default=None,
        help="SweepSpec JSON file, or a preset name "
             f"({', '.join(sweep_preset_names())})")
    sweep_p.add_argument("--list-presets", action="store_true",
                         help="list the registered sweep presets and "
                              "exit")
    sweep_p.add_argument("--shard", type=parse_shard, default=None,
                         metavar="I/K",
                         help="run only the I-th of K key-stable "
                              "partitions of the sweep")
    sweep_p.add_argument("--store", type=Path, default=None,
                         help="append results to this JSONL store "
                              "(created if missing)")
    sweep_p.add_argument("--resume", action="store_true",
                         help="continue an existing store, skipping "
                              "points it already holds")
    sweep_p.add_argument("--merge", nargs="+", type=Path, default=None,
                         metavar="SRC",
                         help="merge these stores into --store instead "
                              "of running a sweep")
    sweep_p.add_argument("--coordinate", action="store_true",
                         help="drive every shard of the sweep from "
                              "this process over a worker pool "
                              "(replaces K separate --shard i/K "
                              "invocations)")
    sweep_p.add_argument("--shards", type=int, default=None, metavar="K",
                         help="partition count for --coordinate "
                              "(default: the worker count)")
    sweep_p.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes for the sweep "
                              "(default 1 = the serial executor; "
                              "0 = one per CPU; >1 selects the "
                              "process-pool executor)")
    sweep_p.add_argument("--chunksize", type=int, default=None,
                         help="work items per pool round trip "
                              "(default: auto; acts as the batch cap "
                              "when --batch-size is not given)")
    sweep_p.add_argument("--batch-size", type=int, default=None,
                         metavar="N",
                         help="cap on trace-identical points executed "
                              "as one batch (one trace generation + "
                              "predecode per batch; 1 disables "
                              "batching; default: auto)")
    sweep_p.add_argument("--executor", choices=executor_names(),
                         default=None,
                         help="run through a registered executor "
                              "(default: serial, or process-pool when "
                              "--jobs > 1)")
    sweep_p.add_argument("--workers", default=None,
                         metavar="HOST:PORT,...",
                         help="comma-separated worker fleet for "
                              "--executor remote (start workers with "
                              "'repro worker')")
    sweep_p.add_argument("--max-retries", type=int, default=None,
                         metavar="N",
                         help="re-dispatch attempts per failed point "
                              "(default 1)")
    sweep_p.add_argument("--daemon", default=None, metavar="HOST:PORT",
                         help="submit the sweep to a 'repro serve' "
                              "daemon instead of executing locally")
    sweep_p.add_argument("--warmup", type=int, default=None,
                         help="warmup instruction budget per point")
    sweep_p.add_argument("--measure", type=int, default=None,
                         help="measured instruction budget per point")
    sweep_p.add_argument("--engine", choices=list(ENGINES), default=None,
                         help="simulation engine for every point "
                              "(default: the spec's; an 'engine' axis "
                              "still wins per point)")
    sweep_p.add_argument("--progress", action="store_true",
                         help="live execution-progress line on stderr "
                              "(plain line-per-update when stderr is "
                              "not a terminal)")
    sweep_p.add_argument("--inspect", action="store_true",
                         help="online QA: validate every landed result "
                              "(stat invariants, outlier baselines, "
                              "operational alarms); anomalies become "
                              "store annotations that quarantine their "
                              "point for --resume")
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument("--json", action="store_true",
                         help="emit the sweep document as JSON "
                              "(includes the lifecycle-event log)")

    worker_p = sub.add_parser(
        "worker", help="serve simulations over TCP for --executor "
                       "remote / a sweep daemon")
    worker_p.add_argument("--listen", default="127.0.0.1:0",
                          metavar="HOST:PORT",
                          help="bind address (port 0 = ephemeral; the "
                               "resolved address is printed)")
    worker_p.add_argument("--cache-dir", default=None,
                          help="disk result-cache directory for this "
                               "worker's session")
    worker_p.add_argument("--heartbeat", type=float, default=2.0,
                          metavar="SECONDS",
                          help="heartbeat interval while simulating "
                               "(default 2.0)")

    serve_p = sub.add_parser(
        "serve", help="sweep daemon: accept SweepSpec submissions and "
                      "run them over a worker fleet")
    serve_p.add_argument("--listen", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="bind address (port 0 = ephemeral; the "
                              "resolved address is printed)")
    serve_p.add_argument("--workers", required=True,
                         metavar="HOST:PORT,...",
                         help="comma-separated addresses of the "
                              "'repro worker' fleet to dispatch to")
    serve_p.add_argument("--store-dir", type=Path, default=None,
                         help="directory of per-sweep result stores "
                              "(sweep-<id>.jsonl; makes sweeps "
                              "resumable across daemon restarts)")
    serve_p.add_argument("--batch-size", type=int, default=8,
                         metavar="N",
                         help="points in flight per scheduling round "
                              "(default 8)")
    serve_p.add_argument("--max-retries", type=int, default=1,
                         metavar="N",
                         help="re-dispatch attempts per failed point "
                              "(default 1)")
    serve_p.add_argument("--inspect", action="store_true",
                         help="attach a per-sweep SweepInspector to "
                              "every submission: annotations land in "
                              "the per-sweep store and anomaly events "
                              "stream to the submitting client")

    watch_p = sub.add_parser(
        "watch", help="inspect a sweep result store: progress, "
                      "per-workload summary, anomalies, quarantine")
    watch_p.add_argument("store", type=Path,
                         help="a --store / daemon sweep-<id>.jsonl file")
    watch_p.add_argument("--follow", action="store_true",
                         help="keep polling the store and print a "
                              "progress line as points land")
    watch_p.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="poll interval for --follow (default 2.0)")
    watch_p.add_argument("--points", type=int, default=None, metavar="N",
                         help="with --follow: exit once the store "
                              "holds N points (otherwise Ctrl-C)")
    watch_p.add_argument("--json", action="store_true",
                         help="emit the store report as JSON")
    return parser


def cmd_list(out) -> int:
    rows = [[w.name, w.category, w.alias or "-", w.description]
            for w in full_suite()]
    print(render_table(["workload", "category", "paper checkpoint",
                        "description"], rows,
                       title="Available workloads"), file=out)
    return 0


def cmd_run(args, out) -> int:
    core = baseline_params() if args.core == "baseline" else ltp_params()
    if args.iq is not None:
        core = core.but(iq_size=args.iq)
    if args.rf is not None:
        core = core.but(int_regs=args.rf, fp_regs=args.rf)
    model = None
    if args.model is not None:
        try:
            model = ModelArtifact.load(args.model).to_payload()
        except ModelArtifactError as exc:
            print(str(exc), file=out)
            return 2
    config = SimConfig(workload=args.workload, core=core,
                       ltp=ltp_preset(args.ltp), policy=args.policy,
                       model=model, engine=args.engine)
    if args.warmup is not None:
        config.warmup = args.warmup
    if args.measure is not None:
        config.measure = args.measure
    result = run_sim_result(config, use_cache=not args.no_cache)
    if args.json:
        print(render_json(result.to_dict()), file=out)
        return 0
    stats = result.stats
    rows = [
        ["CPI", stats["cpi"]],
        ["IPC", stats["ipc"]],
        ["cycles", stats["cycles"]],
        ["committed", stats["committed"]],
        ["avg outstanding requests", stats["avg_outstanding"]],
        ["avg load latency", stats["avg_load_latency"]],
        ["branch accuracy", stats["branch_accuracy"]],
        ["instructions parked", stats["ltp_parked"]],
        ["avg insts in LTP", stats["avg_ltp"]],
        ["LTP enabled fraction", stats["ltp_enabled_fraction"]],
    ]
    print(render_table(["metric", "value"], rows, precision=3,
                       title=f"{args.workload} — core={args.core} "
                             f"ltp={args.ltp} policy={args.policy}"),
          file=out)
    return 0


def cmd_classify(args, out) -> int:
    workload = get_workload(args.workload)
    trace = workload.trace(args.insts)
    oracle = annotate_trace(trace, warm_regions=workload.warm_regions)
    per_pc = {}
    for i, dyn in enumerate(trace):
        entry = per_pc.setdefault(dyn.pc, [0, 0, 0])
        entry[0] += 1
        entry[1] += oracle.urgent[i]
        entry[2] += oracle.non_ready[i]
    rows = []
    for pc in sorted(per_pc):
        count, urgent, non_ready = per_pc[pc]
        label = (("U" if urgent / count > 0.5 else "NU") + "+"
                 + ("NR" if non_ready / count > 0.5 else "R"))
        rows.append([pc, workload.program[pc].render(), label, count])
    print(render_table(["pc", "instruction", "class", "executions"],
                       rows, title=f"Classification of {workload.name}"),
          file=out)
    return 0


def cmd_train(args, out) -> int:
    try:
        artifact, report = train_model(
            train_workloads=args.workloads,
            holdout_workloads=args.holdout, insts=args.insts,
            seed=args.seed, epochs=args.epochs,
            threshold=args.threshold)
    except (ValueError, KeyError) as exc:
        print(str(exc), file=out)
        return 2
    saved = None
    if args.out is not None:
        saved = artifact.save(args.out)
    holdout_accuracy = report["holdout"]["accuracy"]
    floor_ok = (args.check_floor is None
                or holdout_accuracy >= args.check_floor)
    if args.json:
        print(render_json({
            "artifact": str(saved) if saved else None,
            "content_hash": artifact.content_hash,
            "weights": list(artifact.weights),
            "bias": artifact.bias,
            "threshold": artifact.threshold,
            "provenance": artifact.provenance,
            "report": report,
            "floor": args.check_floor,
            "floor_ok": floor_ok,
        }), file=out)
    else:
        rows = [
            ["training samples", report["train"]["samples"]],
            ["training accuracy", report["train"]["accuracy"]],
            ["held-out samples", report["holdout"]["samples"]],
            ["held-out accuracy", holdout_accuracy],
            ["held-out urgent fraction",
             report["holdout"]["urgent_frac"]],
        ]
        for name, entry in report["holdout_workloads"].items():
            rows.append([f"  accuracy on {name}", entry["accuracy"]])
        rows.append(["content hash", artifact.content_hash])
        if saved is not None:
            rows.append(["artifact", str(saved)])
        print(render_table(["metric", "value"], rows, precision=3,
                           title="Learned-policy training"), file=out)
    if not floor_ok:
        print(f"held-out accuracy {holdout_accuracy:.3f} is below the "
              f"floor {args.check_floor:.3f}", file=out)
        return 1
    return 0


class _ProgressReporter:
    """Collects lifecycle events; optionally renders live progress.

    Registered as the sweep's progress callback: every
    :class:`~repro.api.exec.ExecEvent` is recorded (for the ``--json``
    event log) and, with ``stream`` set, progress renders there.  On a
    terminal that is a single ``\\r``-refreshed counter line with
    retry counts, flagged anomalies and an ETA; on a non-TTY stream
    (CI logs, pipes) it degrades to one plain line per *terminal*
    event (finished/failed/cancelled/anomaly) so logs stay readable
    instead of a wall of carriage returns.  Cache/store hits never
    reach the executor, so the denominator is the *submitted* count.
    Shard-tagged events (``--coordinate``) accumulate per-shard
    throughput, reported by :meth:`close`.
    """

    def __init__(self, stream=None, clock=time.monotonic) -> None:
        self.stream = stream
        self.live = (stream is not None
                     and getattr(stream, "isatty", lambda: False)())
        self.clock = clock
        self.events: List[dict] = []
        self.counts = {"submitted": 0, "finished": 0, "failed": 0,
                       "retried": 0, "cancelled": 0, "anomaly": 0}
        #: "check: detail" per anomaly event, in arrival order
        self.anomalies: List[str] = []
        #: shard -> [finished, first event clock, last event clock]
        self.shards: dict = {}
        self._t0: Optional[float] = None

    def _eta(self, done: int) -> Optional[float]:
        todo = self.counts["submitted"] - done
        if self._t0 is None or not done or todo <= 0:
            return None
        elapsed = self.clock() - self._t0
        return elapsed / done * todo

    def __call__(self, event) -> None:
        now = self.clock()
        if self._t0 is None:
            self._t0 = now
        self.events.append(event.to_dict())
        if event.kind in self.counts:
            self.counts[event.kind] += 1
        if event.kind == "anomaly":
            self.anomalies.append(event.error or event.key)
        if event.shard is not None:
            shard = self.shards.setdefault(event.shard, [0, now, now])
            shard[2] = now
            if event.kind == "finished":
                shard[0] += 1
        if self.stream is None:
            return
        counts = self.counts
        done = counts["finished"] + counts["failed"] + counts["cancelled"]
        if not self.live and event.kind not in (
                "finished", "failed", "cancelled", "anomaly"):
            return  # non-TTY: only terminal events make a line
        line = (f"[{done}/{counts['submitted']}] "
                f"{event.kind} {event.workload}")
        for kind in ("failed", "retried", "cancelled"):
            if counts[kind]:
                line += f" ({kind}: {counts[kind]})"
        if counts["anomaly"]:
            line += f" (anomalies: {counts['anomaly']})"
        if event.kind == "anomaly" and event.error:
            line += f" [{event.error}]"
        eta = self._eta(done)
        if eta is not None:
            line += f" ETA {eta:.0f}s"
        if self.live:
            print(f"\r{line:<78}", end="", file=self.stream, flush=True)
        else:
            print(line, file=self.stream, flush=True)

    def close(self) -> None:
        if self.stream is None or not self.events:
            return
        if self.live:
            print(file=self.stream)
        if self.shards:
            parts = []
            for shard in sorted(self.shards):
                finished, first, last = self.shards[shard]
                rate = (f"{finished / (last - first):.1f}/s"
                        if finished and last > first else f"{finished}")
                parts.append(f"s{shard}:{rate}")
            print(f"shard throughput: {' '.join(parts)}",
                  file=self.stream)
        if self.anomalies and self.live:
            # plain mode already printed each anomaly as it fired
            for note in self.anomalies:
                print(f"anomaly: {note}", file=self.stream)


def _sweep_document(spec: SweepSpec, results, args,
                    reporter: Optional[_ProgressReporter] = None,
                    coordinator: Optional[CoordinatorBackend] = None,
                    inspector: Optional[SweepInspector] = None,
                    ) -> dict:
    counts = {
        "simulated": sum(1 for r in results if not r.cached),
        "from_store": sum(1 for r in results if r.source == "store"),
        "from_cache": sum(1 for r in results
                          if r.source in ("memory", "disk")),
    }
    document = {
        "sweep_id": spec.sweep_id(),
        "points": len(results),
        "shard": (f"{args.shard[0]}/{args.shard[1]}"
                  if args.shard else None),
        "store": str(args.store) if args.store else None,
        **counts,
        "summary": summarize(results),
        "results": [r.to_dict() for r in results],
    }
    if coordinator is not None:
        document["coordinate"] = coordinator.last_report
    if inspector is not None:
        document["inspector"] = inspector.summary()
    if reporter is not None:
        document["events"] = reporter.events
    return document


def cmd_list_experiments(args, out) -> int:
    entries = [(name, get_experiment(name).description)
               for name in experiment_names()]
    if args.json:
        print(render_json({"experiments": [
            {"name": name, "description": description}
            for name, description in entries]}), file=out)
        return 0
    print(render_table(["experiment", "description"], entries,
                       title="Registered experiments"), file=out)
    return 0


def cmd_list_presets(args, out) -> int:
    descriptions = sweep_preset_descriptions()
    if args.json:
        print(render_json({"presets": [
            {"name": name, "description": description}
            for name, description in descriptions.items()]}), file=out)
        return 0
    rows = list(descriptions.items())
    print(render_table(["preset", "description"], rows,
                       title="Registered sweep presets"), file=out)
    return 0


def cmd_sweep(args, out) -> int:
    if args.list_presets:
        return cmd_list_presets(args, out)
    if args.merge is not None:
        if args.store is None:
            print("--merge requires --store DEST", file=out)
            return 2
        with merge_stores(args.store, args.merge) as merged:
            if args.spec is not None:
                # a named SPEC validates the merge: shards of a
                # different sweep must not recombine under its flag
                merged.bind(resolve_sweep_spec(args.spec).sweep_id())
            results = merged.results()
            if args.json:
                print(render_json({
                    "store": str(args.store),
                    "sweep_id": merged.sweep_id,
                    "points": len(results),
                    "sources": [str(p) for p in args.merge],
                    "summary": summarize(results),
                }), file=out)
            else:
                print(render_sweep_summary(
                    summarize(results),
                    title=f"Merged {len(args.merge)} store(s) -> "
                          f"{args.store}"), file=out)
        return 0

    if args.spec is None:
        print("sweep needs a SPEC (JSON file or preset name) unless "
              "--merge is given", file=out)
        return 2
    if args.resume and args.store is None:
        print("--resume requires --store PATH", file=out)
        return 2
    if args.coordinate and args.shard is not None:
        print("--coordinate drives every shard itself; it is "
              "incompatible with --shard (use --shards K to set the "
              "partition count)", file=out)
        return 2
    if args.shards is not None and not args.coordinate:
        print("--shards only applies to --coordinate (to run a single "
              "partition of the sweep, use --shard i/k)", file=out)
        return 2
    if args.daemon is not None:
        contradictory = [
            ("--executor", args.executor is not None),
            ("--jobs", args.jobs != 1),
            ("--chunksize", args.chunksize is not None),
            ("--batch-size", args.batch_size is not None),
            ("--workers", args.workers is not None),
            ("--max-retries", args.max_retries is not None),
            ("--shard", args.shard is not None),
            ("--coordinate", args.coordinate),
            ("--shards", args.shards is not None),
        ]
        clashing = [flag for flag, given in contradictory if given]
        if clashing:
            print(f"--daemon submits the sweep to a remote server, "
                  f"which decides execution itself; drop "
                  f"{', '.join(clashing)}", file=out)
            return 2
        if args.inspect:
            print("--inspect runs online QA where results land; with "
                  "--daemon that is the server — start it with "
                  "'repro serve --inspect' (anomaly events stream "
                  "back to this client)", file=out)
            return 2
    if args.coordinate and args.executor not in (None, "coordinator"):
        print(f"--coordinate uses the coordinator executor; it is "
              f"incompatible with --executor {args.executor}", file=out)
        return 2
    if args.executor == "coordinator" and not args.coordinate:
        print("--executor coordinator is driven by --coordinate "
              "(optionally with --shards K)", file=out)
        return 2
    if args.workers is not None and args.executor != "remote":
        print("--workers only applies to --executor remote", file=out)
        return 2
    if args.executor is None and args.max_retries is not None \
            and not args.coordinate:
        print("--max-retries needs --executor NAME (or --coordinate)",
              file=out)
        return 2
    spec = resolve_sweep_spec(args.spec, warmup=args.warmup,
                              measure=args.measure, engine=args.engine)

    store = None
    if args.store is not None:
        if args.store.exists() and not args.resume:
            print(f"store {args.store} already exists; pass --resume "
                  f"to continue it", file=out)
            return 2
        store = ResultStore(args.store)

    session = default_session()
    reporter = _ProgressReporter(
        stream=sys.stderr if args.progress else None)
    inspector = SweepInspector(store=store) if args.inspect else None
    coordinator = None
    try:
        if args.daemon is not None:
            results = submit_sweep(args.daemon, spec,
                                   use_cache=not args.no_cache,
                                   on_event=reporter)
            if store is not None:
                # a local copy of what the daemon (durably) holds
                store.bind(spec.sweep_id()).touch()
                for result in results:
                    store.add(result)
        elif args.coordinate:
            coordinator = CoordinatorBackend(
                shards=args.shards,
                jobs=None if args.jobs == 0 else args.jobs,
                chunksize=args.chunksize,
                batch_size=args.batch_size,
                max_retries=(1 if args.max_retries is None
                             else args.max_retries))
            results = coordinator.run(session, spec, store=store,
                                      use_cache=not args.no_cache,
                                      progress=reporter,
                                      inspect=inspector)
        else:
            if args.executor is not None:
                try:
                    backend = executor_from_options(
                        args.executor,
                        jobs=None if args.jobs == 1 else args.jobs,
                        chunksize=args.chunksize,
                        workers=args.workers,
                        max_retries=args.max_retries,
                        batch_size=args.batch_size)
                except ValueError as exc:
                    print(str(exc), file=out)
                    return 2
            else:
                backend = backend_for_jobs(args.jobs,
                                           chunksize=args.chunksize,
                                           batch_size=args.batch_size)
            results = session.sweep(spec, use_cache=not args.no_cache,
                                    backend=backend, store=store,
                                    shard=args.shard, progress=reporter,
                                    inspect=inspector)
    finally:
        reporter.close()
        if store is not None:
            store.close()

    if args.json:
        print(render_json(_sweep_document(spec, results, args,
                                          reporter=reporter,
                                          coordinator=coordinator,
                                          inspector=inspector)),
              file=out)
        return 0
    if args.coordinate:
        report = coordinator.last_report
        note = (f" (coordinated {report['shards']} shards, "
                f"{'/'.join(str(n) for n in report['per_shard'])} "
                f"points)")
    elif args.shard:
        note = f" (shard {args.shard[0]}/{args.shard[1]})"
    else:
        note = ""
    print(render_sweep_summary(
        summarize(results),
        title=f"Sweep {spec.sweep_id()}{note}"), file=out)
    if inspector is not None:
        if inspector.anomalies:
            print(f"inspector: {len(inspector.anomalies)} anomaly(ies), "
                  f"{len(inspector.quarantined)} point(s) quarantined "
                  f"(re-run them with --resume)", file=out)
            for annotation in inspector.anomalies:
                flag = "quarantined" if annotation.quarantine else "noted"
                print(f"  [{annotation.check}] {flag} "
                      f"{annotation.workload or annotation.key}: "
                      f"{annotation.detail}", file=out)
        else:
            print(f"inspector: {inspector.observed} result(s) validated, "
                  f"no anomalies", file=out)
    return 0


def cmd_worker(args, out) -> int:
    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    server = WorkerServer(host=host, port=port,
                          session=Session(cache_dir=args.cache_dir),
                          heartbeat_interval=args.heartbeat)
    # spawners (CI, scripts) parse this line for the resolved port
    print(f"worker listening on {format_address(server.address)}",
          file=out, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.close()
    return 0


def cmd_serve(args, out) -> int:
    try:
        host, port = parse_address(args.listen)
        workers = [parse_address(part)
                   for part in args.workers.split(",") if part]
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    if not workers:
        print("--workers needs at least one HOST:PORT", file=out)
        return 2
    daemon = SweepDaemon(
        workers=workers, host=host, port=port,
        store_dir=(str(args.store_dir)
                   if args.store_dir is not None else None),
        batch_size=args.batch_size, max_retries=args.max_retries,
        inspect=args.inspect)
    print(f"serve listening on {format_address(daemon.address)}",
          file=out, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        daemon.close()
    return 0


def _watch_report(store_path: Path) -> dict:
    """One snapshot of a store: progress, anomalies, quarantine."""
    store = ResultStore(store_path)
    try:
        results = store.results()
        return {
            "store": str(store_path),
            "sweep_id": store.sweep_id,
            "points": len(results),
            "quarantined": store.quarantined_keys(),
            "annotations": [a.to_dict() for a in store.annotations()],
            "summary": summarize(results),
        }
    finally:
        store.close()


def _render_watch(report: dict, out) -> None:
    title = (f"Store {report['store']} "
             f"(sweep {report['sweep_id'] or 'unbound'}, "
             f"{report['points']} points)")
    print(render_sweep_summary(report["summary"], title=title), file=out)
    annotations = report["annotations"]
    if annotations:
        standing = set(report["quarantined"])
        # a quarantine a later re-run already lifted is history
        rows = [[a["check"],
                 ("quarantined" if a["key"] in standing
                  else "healed" if a.get("quarantine") else "noted"),
                 a.get("workload") or "-", a["key"][:12], a["detail"]]
                for a in annotations]
        print(render_table(["check", "state", "workload", "key",
                            "detail"], rows,
                           title=f"{len(annotations)} anomaly "
                                 f"annotation(s)"), file=out)
        quarantined = report["quarantined"]
        if quarantined:
            print(f"{len(quarantined)} point(s) quarantined — a "
                  f"resumed sweep re-runs exactly them", file=out)
    else:
        print("no anomaly annotations", file=out)


def cmd_watch(args, out) -> int:
    if not args.store.is_file():
        print(f"store {args.store} does not exist", file=out)
        return 2
    if not args.follow:
        report = _watch_report(args.store)
        if args.json:
            print(render_json(report), file=out)
        else:
            _render_watch(report, out)
        return 0
    # --follow: poll the file, line per change, until --points (or ^C)
    last_points = -1
    try:
        while True:
            report = _watch_report(args.store)
            points = report["points"]
            if points != last_points:
                line = f"[{points} points]"
                if report["annotations"]:
                    line += (f" anomalies: {len(report['annotations'])}"
                             f" quarantined: "
                             f"{len(report['quarantined'])}")
                print(line, file=out, flush=True)
                last_points = points
            if args.points is not None and points >= args.points:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    if args.json:
        print(render_json(_watch_report(args.store)), file=out)
    else:
        _render_watch(_watch_report(args.store), out)
    return 0


def cmd_experiment(args, out) -> int:
    if args.list:
        return cmd_list_experiments(args, out)
    if args.name is None:
        print("experiment needs a NAME (or --list to enumerate them)",
              file=out)
        return 2
    exp = get_experiment(args.name)
    jobs = args.jobs if args.jobs != 0 else None
    result = exp.run(jobs=jobs)
    if args.json:
        print(render_json({"experiment": exp.name, "result": result}),
              file=out)
        return 0
    print(exp.render(result), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "classify":
        return cmd_classify(args, out)
    if args.command == "train":
        return cmd_train(args, out)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    if args.command == "sweep":
        return cmd_sweep(args, out)
    if args.command == "worker":
        return cmd_worker(args, out)
    if args.command == "serve":
        return cmd_serve(args, out)
    if args.command == "watch":
        return cmd_watch(args, out)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
