"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — available workloads and their categories.
* ``run WORKLOAD`` — simulate one workload under a chosen core/LTP
  configuration and print the key metrics (``--json`` for the full
  :class:`repro.api.SimResult` payload).
* ``classify WORKLOAD`` — print the oracle classification of each
  static instruction (the Figure 2 view, for any kernel).
* ``experiment NAME`` — regenerate one of the paper's tables/figures
  (``--json`` for the raw result document).

Everything routes through :mod:`repro.api`: the LTP presets come from
the shared registry in :mod:`repro.ltp.config`, experiments resolve via
the decorator registry, and simulations run on the process-global
default :class:`~repro.api.session.Session` (via the shim-aware
:func:`repro.harness.runner.run_sim_result`, so harness-level test
overrides apply to the CLI too).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (experiment_names, get_experiment, ltp_preset,
                       ltp_preset_names)
from repro.core.params import baseline_params, ltp_params
from repro.harness.config import SimConfig
from repro.harness.report import render_json, render_table
from repro.harness.runner import run_sim_result
from repro.ltp.config import LTP_PRESETS
from repro.ltp.oracle import annotate_trace
from repro.workloads import full_suite, get_workload

#: legacy alias — the presets live in :data:`repro.ltp.config.LTP_PRESETS`
LTP_CHOICES = LTP_PRESETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Long Term Parking (MICRO 2015) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload")
    run_p.add_argument("--core", choices=["baseline", "small"],
                       default="baseline",
                       help="baseline = IQ64/RF128; small = IQ32/RF96")
    run_p.add_argument("--ltp", choices=ltp_preset_names(),
                       default="none")
    run_p.add_argument("--iq", type=int, default=None,
                       help="override IQ size")
    run_p.add_argument("--rf", type=int, default=None,
                       help="override available registers (both classes)")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--measure", type=int, default=None)
    run_p.add_argument("--no-cache", action="store_true")
    run_p.add_argument("--json", action="store_true",
                       help="emit the SimResult payload as JSON")

    cls_p = sub.add_parser("classify",
                           help="oracle-classify a workload's kernel")
    cls_p.add_argument("workload")
    cls_p.add_argument("--insts", type=int, default=4000)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=experiment_names())
    exp_p.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the sweep (default 1; "
                            "0 = one per CPU)")
    exp_p.add_argument("--json", action="store_true",
                       help="emit the raw result document as JSON")
    return parser


def cmd_list(out) -> int:
    rows = [[w.name, w.category, w.alias or "-", w.description]
            for w in full_suite()]
    print(render_table(["workload", "category", "paper checkpoint",
                        "description"], rows,
                       title="Available workloads"), file=out)
    return 0


def cmd_run(args, out) -> int:
    core = baseline_params() if args.core == "baseline" else ltp_params()
    if args.iq is not None:
        core = core.but(iq_size=args.iq)
    if args.rf is not None:
        core = core.but(int_regs=args.rf, fp_regs=args.rf)
    config = SimConfig(workload=args.workload, core=core,
                       ltp=ltp_preset(args.ltp))
    if args.warmup is not None:
        config.warmup = args.warmup
    if args.measure is not None:
        config.measure = args.measure
    result = run_sim_result(config, use_cache=not args.no_cache)
    if args.json:
        print(render_json(result.to_dict()), file=out)
        return 0
    stats = result.stats
    rows = [
        ["CPI", stats["cpi"]],
        ["IPC", stats["ipc"]],
        ["cycles", stats["cycles"]],
        ["committed", stats["committed"]],
        ["avg outstanding requests", stats["avg_outstanding"]],
        ["avg load latency", stats["avg_load_latency"]],
        ["branch accuracy", stats["branch_accuracy"]],
        ["instructions parked", stats["ltp_parked"]],
        ["avg insts in LTP", stats["avg_ltp"]],
        ["LTP enabled fraction", stats["ltp_enabled_fraction"]],
    ]
    print(render_table(["metric", "value"], rows, precision=3,
                       title=f"{args.workload} — core={args.core} "
                             f"ltp={args.ltp}"), file=out)
    return 0


def cmd_classify(args, out) -> int:
    workload = get_workload(args.workload)
    trace = workload.trace(args.insts)
    oracle = annotate_trace(trace, warm_regions=workload.warm_regions)
    per_pc = {}
    for i, dyn in enumerate(trace):
        entry = per_pc.setdefault(dyn.pc, [0, 0, 0])
        entry[0] += 1
        entry[1] += oracle.urgent[i]
        entry[2] += oracle.non_ready[i]
    rows = []
    for pc in sorted(per_pc):
        count, urgent, non_ready = per_pc[pc]
        label = (("U" if urgent / count > 0.5 else "NU") + "+"
                 + ("NR" if non_ready / count > 0.5 else "R"))
        rows.append([pc, workload.program[pc].render(), label, count])
    print(render_table(["pc", "instruction", "class", "executions"],
                       rows, title=f"Classification of {workload.name}"),
          file=out)
    return 0


def cmd_experiment(args, out) -> int:
    exp = get_experiment(args.name)
    jobs = args.jobs if args.jobs != 0 else None
    result = exp.run(jobs=jobs)
    if args.json:
        print(render_json({"experiment": exp.name, "result": result}),
              file=out)
        return 0
    print(exp.render(result), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "classify":
        return cmd_classify(args, out)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
