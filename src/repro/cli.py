"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — available workloads and their categories.
* ``run WORKLOAD`` — simulate one workload under a chosen core/LTP
  configuration and print the key metrics.
* ``classify WORKLOAD`` — print the oracle classification of each
  static instruction (the Figure 2 view, for any kernel).
* ``experiment NAME`` — regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.params import baseline_params, ltp_params
from repro.harness import experiments
from repro.harness.config import SimConfig
from repro.harness.report import render_table
from repro.harness.runner import run_sim
from repro.ltp.config import (limit_ltp, no_ltp, proposed_ltp,
                              wib_ltp)
from repro.ltp.oracle import annotate_trace
from repro.workloads import full_suite, get_workload

LTP_CHOICES = {
    "none": no_ltp,
    "proposed": proposed_ltp,
    "limit-nu": lambda: limit_ltp("nu"),
    "limit-nr": lambda: limit_ltp("nr"),
    "limit-nrnu": lambda: limit_ltp("nr+nu"),
    "wib": wib_ltp,
}

EXPERIMENTS = {
    "table1": (experiments.table1_config, experiments.render_table1),
    "fig1": (experiments.fig1_motivation, experiments.render_fig1),
    "fig2": (experiments.fig2_classification, experiments.render_fig2),
    "fig5": (experiments.fig5_lifetimes, experiments.render_fig5),
    "fig6": (experiments.fig6_limit_study, experiments.render_fig6),
    "fig7": (experiments.fig7_utilization, experiments.render_fig7),
    "fig10": (experiments.fig10_impl_tradeoffs, experiments.render_fig10),
    "fig11": (experiments.fig11_tickets, experiments.render_fig11),
    "uit": (experiments.uit_ablation, experiments.render_uit_ablation),
    "predictor": (experiments.predictor_ablation,
                  experiments.render_predictor_ablation),
    "sensitivity": (experiments.sensitivity_report,
                    experiments.render_sensitivity),
    "alternatives": (experiments.alternatives_comparison,
                     experiments.render_alternatives),
    "wakeup": (experiments.wakeup_policy_ablation,
               experiments.render_wakeup_policy),
    "headline": (experiments.headline_summary,
                 experiments.render_headline),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Long Term Parking (MICRO 2015) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload")
    run_p.add_argument("--core", choices=["baseline", "small"],
                       default="baseline",
                       help="baseline = IQ64/RF128; small = IQ32/RF96")
    run_p.add_argument("--ltp", choices=sorted(LTP_CHOICES),
                       default="none")
    run_p.add_argument("--iq", type=int, default=None,
                       help="override IQ size")
    run_p.add_argument("--rf", type=int, default=None,
                       help="override available registers (both classes)")
    run_p.add_argument("--warmup", type=int, default=None)
    run_p.add_argument("--measure", type=int, default=None)
    run_p.add_argument("--no-cache", action="store_true")

    cls_p = sub.add_parser("classify",
                           help="oracle-classify a workload's kernel")
    cls_p.add_argument("workload")
    cls_p.add_argument("--insts", type=int, default=4000)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes for the sweep (default 1; "
                            "0 = one per CPU)")
    return parser


def cmd_list(out) -> int:
    rows = [[w.name, w.category, w.alias or "-", w.description]
            for w in full_suite()]
    print(render_table(["workload", "category", "paper checkpoint",
                        "description"], rows,
                       title="Available workloads"), file=out)
    return 0


def cmd_run(args, out) -> int:
    core = baseline_params() if args.core == "baseline" else ltp_params()
    if args.iq is not None:
        core = core.but(iq_size=args.iq)
    if args.rf is not None:
        core = core.but(int_regs=args.rf, fp_regs=args.rf)
    ltp = LTP_CHOICES[args.ltp]()
    config = SimConfig(workload=args.workload, core=core, ltp=ltp)
    if args.warmup is not None:
        config.warmup = args.warmup
    if args.measure is not None:
        config.measure = args.measure
    result = run_sim(config, use_cache=not args.no_cache)
    rows = [
        ["CPI", result["cpi"]],
        ["IPC", result["ipc"]],
        ["cycles", result["cycles"]],
        ["committed", result["committed"]],
        ["avg outstanding requests", result["avg_outstanding"]],
        ["avg load latency", result["avg_load_latency"]],
        ["branch accuracy", result["branch_accuracy"]],
        ["instructions parked", result["ltp_parked"]],
        ["avg insts in LTP", result["avg_ltp"]],
        ["LTP enabled fraction", result["ltp_enabled_fraction"]],
    ]
    print(render_table(["metric", "value"], rows, precision=3,
                       title=f"{args.workload} — core={args.core} "
                             f"ltp={args.ltp}"), file=out)
    return 0


def cmd_classify(args, out) -> int:
    workload = get_workload(args.workload)
    trace = workload.trace(args.insts)
    oracle = annotate_trace(trace, warm_regions=workload.warm_regions)
    per_pc = {}
    for i, dyn in enumerate(trace):
        entry = per_pc.setdefault(dyn.pc, [0, 0, 0])
        entry[0] += 1
        entry[1] += oracle.urgent[i]
        entry[2] += oracle.non_ready[i]
    rows = []
    for pc in sorted(per_pc):
        count, urgent, non_ready = per_pc[pc]
        label = (("U" if urgent / count > 0.5 else "NU") + "+"
                 + ("NR" if non_ready / count > 0.5 else "R"))
        rows.append([pc, workload.program[pc].render(), label, count])
    print(render_table(["pc", "instruction", "class", "executions"],
                       rows, title=f"Classification of {workload.name}"),
          file=out)
    return 0


def cmd_experiment(args, out) -> int:
    runner, renderer = EXPERIMENTS[args.name]
    jobs = args.jobs if args.jobs != 0 else None
    if jobs is not None and jobs <= 1:
        result = runner()
    else:
        result = experiments.run_parallel(runner, jobs=jobs)
    print(renderer(result), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(out)
    if args.command == "run":
        return cmd_run(args, out)
    if args.command == "classify":
        return cmd_classify(args, out)
    if args.command == "experiment":
        return cmd_experiment(args, out)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
