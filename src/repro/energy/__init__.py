"""First-order energy / ED2P model for the window structures."""

from repro.energy.model import (ARCH_REGS, EnergyBreakdown, compute_energy,
                                iq_ports, relative_ed2p,
                                relative_performance, rf_ports)

__all__ = [
    "ARCH_REGS",
    "EnergyBreakdown",
    "compute_energy",
    "iq_ports",
    "relative_ed2p",
    "relative_performance",
    "rf_ports",
]
