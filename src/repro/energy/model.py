"""First-order IQ/RF/LTP energy model (Section 5.5 proportionalities).

The paper scales McPAT/CACTI numbers with first-order arguments:

* the IQ's power is proportional to its comparator count — entries times
  the sum of its write, read (issue) and search ports (a CAM cost),
* the register file's cost scales with entries times ports (a RAM cost),
* the LTP queue is a plain RAM FIFO: entries times its few ports, at a
  much lower per-entry-port cost than the IQ's CAM,
* the UIT is a small tag CAM.

Absolute joules are not reproducible without the authors' McPAT
configuration, so the model works in abstract energy units and every
result is reported *relative to the baseline configuration*, which is
what Figure 10 plots (ED2P deltas).  Each structure's per-cycle cost is
half static, half scaled by utilization, so an LTP that is power-gated
off (the DRAM-timer monitor) burns only its static share when idle.

Constants below are calibrated so the baseline IQ:RF energy split
roughly matches the 21264-derived split the paper cites ([9]: IQ ~18% of
core power, RF smaller per port).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.params import CoreParams
from repro.ltp.config import LTPConfig
from repro.policies.registry import (DEFAULT_POLICY, policy_parks,
                                     policy_uses_uit)

#: architectural registers per class (the RF holds available + architectural)
ARCH_REGS = 32

#: energy per entry-port per cycle, by structure type (abstract units).
#: The IQ's CAM comparators dominate (the paper cites the IQ at ~18% of
#: core power [9], well above the RF), so the per-entry-port CAM cost is
#: much higher than the RF's RAM cost.
COST_IQ_CAM = 1.0
COST_RF_RAM = 0.12
COST_LTP_RAM = 0.12
COST_UIT_CAM = 0.12

#: capacity assumed when a structure is configured "unlimited"
_UNLIMITED_EQUIV = 1024


@dataclass
class EnergyBreakdown:
    """Energy of the window structures for one run, in abstract units."""

    iq: float
    rf: float
    ltp: float
    uit: float
    cycles: int

    @property
    def total(self) -> float:
        return self.iq + self.rf + self.ltp + self.uit

    @property
    def ed2p(self) -> float:
        """Energy x delay^2 (delay in cycles; frequency is constant)."""
        return self.total * float(self.cycles) ** 2


def _effective(size: Optional[int]) -> int:
    return _UNLIMITED_EQUIV if size is None else size


def iq_ports(params: CoreParams) -> int:
    """Write + read + search ports (Section 5.5: 8 + 6 + 8 baseline)."""
    return (params.rename_width + params.issue_width + params.rename_width)


def rf_ports(params: CoreParams) -> int:
    """Read + write ports (Section 5.5: 16 + 8 baseline)."""
    return 2 * params.issue_width + params.writeback_width + 2


def compute_energy(params: CoreParams, ltp: LTPConfig,
                   result: dict,
                   policy: Optional[str] = None) -> EnergyBreakdown:
    """Energy of IQ + RF (+ LTP structures) over a finished run.

    *result* is the flattened statistics dict a run produces
    (:meth:`repro.core.stats.SimStats.as_dict`); only the occupancy
    averages, cycle count and LTP-enabled fraction are consumed.

    *policy* makes the model policy-aware: which window structures
    are charged comes from the :mod:`repro.policies` registry's
    ``parks`` / ``uses_uit`` metadata (the policy's ``stats_extra``
    occupancy statistics — ``avg_ltp``, ``ltp_enabled_fraction`` —
    feed the utilization terms), so ``oracle-park``/``depth-park``
    runs get queue-energy estimates and ``baseline-stall`` is never
    charged for a mechanism it forces off.  Only the ``ltp`` policy's
    DRAM-timer monitor power-gates the queue; other parking policies
    clock it continuously.  ``policy=None`` (or the default ``ltp``
    policy) reproduces the original LTP-config-keyed behaviour
    exactly.
    """
    cycles = max(1, int(result["cycles"]))

    # First-order scaling (Section 5.5): IQ power is proportional to its
    # comparator count (entries x ports) and RF power to entries x
    # ports.  No utilization compensation — shrinking the structure
    # shrinks every bitline, comparator and wordline it clocks.
    iq_entries = _effective(params.iq_size)
    iq_energy = COST_IQ_CAM * iq_entries * iq_ports(params) * cycles

    rf_entries = (_effective(params.int_regs) + ARCH_REGS
                  + _effective(params.fp_regs) + ARCH_REGS)
    rf_energy = COST_RF_RAM * rf_entries * rf_ports(params) * cycles

    if policy is None:
        charge_queue = charge_uit = ltp.enabled
        power_gated = True
    else:
        charge_queue = policy_parks(policy, ltp)
        charge_uit = policy_uses_uit(policy, ltp)
        # only the LTP controller's DRAM-timer monitor power-gates the
        # structures; scenario parking policies clock them continuously
        power_gated = policy == DEFAULT_POLICY

    ltp_energy = 0.0
    uit_energy = 0.0
    enabled_frac = (result["ltp_enabled_fraction"] if power_gated
                    else 1.0)
    if charge_queue:
        ltp_entries = _effective(ltp.entries)
        ltp_static = COST_LTP_RAM * ltp_entries * ltp.ports
        ltp_util = min(1.0, result["avg_ltp"] / max(1, ltp_entries))
        # power-gated when the DRAM-timer monitor is off: only a small
        # always-on share remains
        ltp_energy = ltp_static * cycles * (
            0.1 + enabled_frac * (0.5 + 0.4 * ltp_util))
    if charge_uit:
        uit_entries = _effective(ltp.uit_size)
        uit_static = COST_UIT_CAM * uit_entries * 2  # lookup + insert port
        uit_energy = uit_static * cycles * (0.1 + 0.9 * enabled_frac)

    return EnergyBreakdown(iq=iq_energy, rf=rf_energy, ltp=ltp_energy,
                           uit=uit_energy, cycles=cycles)


def relative_ed2p(test: EnergyBreakdown, base: EnergyBreakdown) -> float:
    """ED2P of *test* relative to *base*, as a percent delta.

    Negative values mean the test configuration improves on the baseline
    (this is the y-axis of Figure 10's bottom row).
    """
    if base.ed2p == 0:
        return 0.0
    return (test.ed2p / base.ed2p - 1.0) * 100.0


def relative_performance(test_cycles: int, base_cycles: int) -> float:
    """Performance of *test* relative to *base*, as a percent delta.

    Matches the paper's "Performance Comp. to Base (%)": negative means
    slower than the baseline.
    """
    if test_cycles <= 0:
        return 0.0
    return (base_cycles / test_cycles - 1.0) * 100.0
