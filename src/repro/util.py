"""Small dependency-free helpers shared across layers.

This module imports nothing from :mod:`repro`, so any layer (policies,
api, harness, cli) can use it at module scope without creating import
cycles.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["first_doc_line"]


def first_doc_line(doc: Optional[str]) -> str:
    """First non-empty line of a docstring; ``""`` when absent/blank.

    The one implementation behind every registry's default-description
    extraction (allocation policies, experiments, sweep presets).
    """
    if not doc:
        return ""
    stripped = doc.strip()
    return stripped.splitlines()[0] if stripped else ""
