"""Trace-driven cycle model of the Table 1 out-of-order core.

The pipeline consumes a dynamic trace (true dependences, addresses and
branch outcomes from the functional executor) and models, cycle by
cycle:

* an 8-wide front end with a fixed decode depth, gshare direction
  prediction and L1I fetch stalls; mispredicts block fetch until the
  branch executes, plus a refill penalty (the standard trace-driven
  approximation — no wrong-path instructions exist in a trace),
* rename with in-order allocation of ROB / IQ / physical registers /
  LQ / SQ — or policy-directed parking, which defers the IQ and
  register (and optionally LQ/SQ) allocations exactly as Figure 5
  describes.  *When* resources are claimed is owned by a pluggable
  :class:`repro.policies.AllocationPolicy` (LTP is the default policy;
  ``baseline-stall``, ``oracle-park``, ``random-park`` and
  ``depth-park`` are registered alternatives),
* oldest-first issue of up to 6 instructions per cycle over FU pools,
  two-phase loads (AGU + cache access) with store-to-load forwarding,
  memory-dependence prediction and violation penalties,
* event-driven writeback/wakeup, and
* 8-wide in-order commit, which frees registers (previous mapping) and
  LQ/SQ entries, and trains the UIT on long-latency loads.

Idle spans (every unit waiting on a future event) are jumped over in one
step; all time-integrated statistics account for the jump width, so
results are identical to cycle-by-cycle execution, just faster.

Performance-sensitive invariants of the main loop (see README.md):

* Per-instruction metadata (FU group, non-pipelined flag, load/store
  flags, destination register class, code address) is **pre-decoded**
  on :class:`DynInst` at trace build time and mirrored onto
  :class:`InFlightInst` at rename; the hot loop performs no opcode
  table lookups or property calls.  ``Pipeline(use_predecode=False)``
  keeps the original per-use table-lookup path alive as a reference
  implementation for differential tests.
* Execution latencies are resolved to a per-``OpClass`` table once at
  pipeline construction.
* Occupancy statistics are integrated by direct writes to the bound
  :class:`Occupancy` accumulators — no per-cycle dict building.
* The trace is consumed by list index (no iterator protocol / ``next``
  exception handling in the fetch path).
* Stage order inside :meth:`_tick` (writeback, commit, parked release,
  rename, issue, fetch) and every statistics update are load-bearing:
  results must stay bit-identical to strict cycle-by-cycle execution.
* The allocation policy is driven through pre-bound hook attributes
  (``policy.observe_rename`` / ``policy.may_allocate`` / release and
  completion hooks); for the default ``ltp`` policy these resolve to
  the controller's own bound methods, so the seam adds no call
  overhead and the ``ltp`` / ``baseline-stall`` policies stay
  bit-identical to the pre-seam monolith.
"""

from __future__ import annotations

import gc as _gc
import heapq
from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.branch import GsharePredictor
from repro.core.inflight import InFlightInst
from repro.core.iq import IssueQueue
from repro.core.lsq import LoadStoreQueues
from repro.core.memdep import MemDepPredictor
from repro.core.params import CoreParams
from repro.core.regfile import RegisterFile
from repro.core.rob import ROB
from repro.core.stats import SimStats
from repro.isa.instructions import FU_GROUP, NONPIPELINED_CLASSES, OpClass
from repro.isa.trace import CODE_BASE, INST_BYTES, DynInst
from repro.ltp.config import LTPConfig
from repro.ltp.controller import NO_BOUNDARY, LTPController
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies import AllocationPolicy, LTPPolicy, build_policy

__all__ = ["CODE_BASE", "INST_BYTES", "Pipeline", "SimulationDeadlock",
           "simulate"]

_EV_COMPLETE = 0
_EV_TAG = 1

#: legacy aliases — the authoritative tables live in
#: :mod:`repro.isa.instructions`; the reference (non-pre-decoded) issue
#: path and older callers consult them per use.
_FU_GROUP = FU_GROUP
_NONPIPELINED = tuple(sorted(NONPIPELINED_CLASSES, key=lambda c: c.value))

_WORD_MASK = ~7

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationDeadlock(RuntimeError):
    """The pipeline can make no progress and no future event exists."""


class Pipeline:
    """One simulated core running one dynamic trace."""

    def __init__(self, trace: Sequence[DynInst],
                 params: Optional[CoreParams] = None,
                 ltp: Optional[LTPConfig] = None,
                 controller: Optional[LTPController] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 branch_predictor: Optional[GsharePredictor] = None,
                 warm_code: bool = True,
                 allow_skip: bool = True,
                 use_predecode: bool = True,
                 policy: Union[AllocationPolicy, str, None] = None) -> None:
        self.params = (params or CoreParams()).validate()
        self.ltp_config = (ltp or LTPConfig(enabled=False)).validate()
        self.hierarchy = hierarchy or MemoryHierarchy(self.params.mem)
        self.bpred = branch_predictor or GsharePredictor()
        dram_latency = self.params.mem.dram_latency
        if controller is not None:
            # legacy wiring: adopt the caller's controller as an LTP
            # policy (structural attributes mirror *this* pipeline's
            # LTP config, exactly as the pre-seam monolith read them)
            if policy is not None:
                raise ValueError("pass either controller= or policy=, "
                                 "not both")
            policy = LTPPolicy(self.ltp_config, dram_latency,
                               controller=controller)
        elif policy is None:
            policy = LTPPolicy(self.ltp_config, dram_latency)
        elif isinstance(policy, str):
            policy = build_policy(policy, self.ltp_config, dram_latency)
        self.policy = policy
        policy.attach_memory(self.hierarchy)
        #: the wrapped LTP controller when the policy carries one
        #: (legacy alias; None for non-LTP policies)
        self.controller = getattr(policy, "controller", None)
        self.stats = SimStats()
        #: False forces strict cycle-by-cycle execution (used by tests to
        #: verify that idle-span jumping never changes results)
        self.allow_skip = allow_skip
        #: False routes issue/execute through the reference per-use
        #: table-lookup path (differential testing of the fast path)
        self.use_predecode = use_predecode

        reserve = policy.release_reserve
        self.rob = ROB(self.params.rob_size)
        self.iq = IssueQueue(self.params.iq_size)
        self.regfile = RegisterFile(self.params.int_regs,
                                    self.params.fp_regs, reserve=reserve)
        self.lsq = LoadStoreQueues(self.params.lq_size, self.params.sq_size,
                                   reserve=reserve)
        self.memdep = MemDepPredictor()

        if warm_code and len(trace):
            # kernels are tiny; pre-warm the instruction path so short
            # traces are not dominated by a one-off cold L1I DRAM fill
            max_pc = max(dyn.pc for dyn in trace)
            for block in range(CODE_BASE >> 6,
                               ((CODE_BASE + max_pc * INST_BYTES) >> 6) + 1):
                self.hierarchy.l1i.insert(block)
                self.hierarchy.l2.insert(block)
                self.hierarchy.l3.insert(block)

        self._trace_seq: Sequence[DynInst] = trace
        self._trace_idx = 0
        self._trace_len = len(trace)

        self.cycle = 0
        self._events: List[tuple] = []          # (cycle, seq, kind, record)
        self._frontend: List[Tuple[int, DynInst]] = []  # FIFO via index
        self._frontend_head = 0
        self._frontend_cap = self.params.fetch_width * (
            self.params.frontend_depth + 2)
        self._fetch_stall_until = 0
        self._fetch_blocked_on: Optional[int] = None  # seq of branch
        self._commit_stall_until = 0
        self._scoreboard: Dict[int, InFlightInst] = {}
        self._ll_seqs: List[int] = []           # sorted in-flight LL seqs
        self._open_loads: Dict[int, List[InFlightInst]] = {}
        self._parked_store_pcs: Dict[int, int] = {}
        self._fu_busy_until: Dict[str, int] = {}
        self._fu_used: Dict[str, int] = {}      # scratch, reset per issue
        self._last_commit_cycle = 0

        # hot-path constants, resolved once
        latencies = self.params.latencies
        default_latency = latencies["int_alu"]
        self._lat_by_class: Dict[OpClass, int] = {
            op: latencies.get(op.value, default_latency) for op in OpClass}
        self._lat_agu = latencies["agu"]
        self._lat_store = latencies["store"]
        self._lat_forward = latencies["forward"]
        occ = self.stats.occupancies
        self._occ_rob = occ["rob"]
        self._occ_iq = occ["iq"]
        self._occ_lq = occ["lq"]
        self._occ_sq = occ["sq"]
        self._occ_rf_int = occ["rf_int"]
        self._occ_rf_fp = occ["rf_fp"]
        self._occ_ltp = occ["ltp"]
        self._occ_ltp_regs = occ["ltp_regs"]
        self._occ_ltp_loads = occ["ltp_loads"]
        self._occ_ltp_stores = occ["ltp_stores"]
        # direct bindings into collaborators whose identity is fixed for
        # the pipeline's lifetime (the objects mutate in place); reserves
        # are likewise fixed after construction.
        self._rob_entries = self.rob._entries
        self._rf_free = self.regfile._free
        self._rf_need = 1 + self.regfile.reserve
        self._lsq_need = 1 + self.lsq.reserve
        self._monitor = policy.monitor
        self._monitor_off = self._monitor.mode == "off"
        self._monitor_auto = (self.ltp_config.enabled
                              and self._monitor.mode == "auto")
        self._ltp_entries = policy.queue._entries
        self._release_ports = policy.ports
        # the park-path flags are immutable per run; snapshot them so
        # the parked-allocation path performs no property calls
        self._park_loads = policy.park_loads
        self._park_stores = policy.park_stores
        self._defer_registers = policy.defer_registers
        self._rf_cap_int = self.regfile._capacity["int"]
        self._rf_cap_fp = self.regfile._capacity["fp"]

        if not use_predecode:
            self._issue = self._issue_reference      # type: ignore
            self._execute = self._execute_reference  # type: ignore

    # ==================================================================
    # public API
    # ==================================================================
    def run(self) -> SimStats:
        """Run the trace to completion and return the statistics.

        The cyclic collector is suspended for the duration: the model
        allocates one record per rename attempt and links records into
        producer/consumer reference cycles, so mid-run generational
        scans cost wall time without reclaiming anything (records stay
        reachable until the window drains).  Collection resumes — and
        the cycles are reclaimed — on return.
        """
        tick = self._tick
        finished = self._finished
        gc_enabled = _gc.isenabled()
        if gc_enabled:
            _gc.disable()
        try:
            while not finished():
                tick()
        finally:
            if gc_enabled:
                _gc.enable()
        self.stats.cycles = self.cycle
        self._export_activity()
        return self.stats

    # ==================================================================
    # trace / frontend plumbing
    # ==================================================================
    def _frontend_len(self) -> int:
        return len(self._frontend) - self._frontend_head

    def _frontend_peek(self) -> Optional[Tuple[int, DynInst]]:
        if self._frontend_head < len(self._frontend):
            return self._frontend[self._frontend_head]
        return None

    def _finished(self) -> bool:
        return (self._trace_idx >= self._trace_len
                and self._frontend_head >= len(self._frontend)
                and self.rob.empty)

    # ==================================================================
    # main loop
    # ==================================================================
    def _tick(self) -> None:
        now = self.cycle
        self.hierarchy.advance(now)

        events = self._events
        progress = self._writeback(now) if (events and events[0][0] <= now) \
            else False
        progress |= self._commit(now)
        if self._ltp_entries:
            released, release_pending = self._ltp_release(now)
            progress |= released > 0
        else:
            release_pending = False
        progress |= self._rename(now)
        progress |= self._issue(now)
        progress |= self._fetch(now)

        imminent = (progress
                    or release_pending
                    or self.iq.has_ready()
                    or (events and events[0][0] <= now + 1))
        if not imminent:
            frontend = self._frontend
            head_idx = self._frontend_head
            if (head_idx < len(frontend)
                    and frontend[head_idx][0] <= now + 1):
                imminent = True

        if imminent or not self.allow_skip:
            step = 1
            if not imminent and self._next_event_cycle(now) is None:
                if not self._finished():
                    self._raise_deadlock(now)
                return
        else:
            target = self._next_event_cycle(now)
            if target is None:
                if self._finished():
                    return
                self._raise_deadlock(now)
            step = max(1, target - now)

        self._accumulate(now, step)
        self.cycle = now + step

        if self.cycle - self._last_commit_cycle > self.params.deadlock_cycles:
            self._raise_deadlock(now)

    def _next_event_cycle(self, now: int) -> Optional[int]:
        candidates: List[int] = []
        if self._events:
            candidates.append(self._events[0][0])
        head = self._frontend_peek()
        if head is not None:
            candidates.append(head[0])
        if self._fetch_stall_until > now and self._fetch_blocked_on is None:
            candidates.append(self._fetch_stall_until)
        if self._commit_stall_until > now:
            candidates.append(self._commit_stall_until)
        if self._monitor_auto and self._monitor.expiry > now:
            candidates.append(self._monitor.expiry)
        if self._ltp_entries:
            hint = self.policy.next_event_cycle(now)
            if hint is not None and hint > now:
                candidates.append(hint)
        if not candidates:
            return None
        return max(now + 1, min(candidates))

    def _raise_deadlock(self, now: int) -> None:
        head = self.rob.head()
        raise SimulationDeadlock(
            f"no progress at cycle {now}: rob={len(self.rob)} "
            f"iq={len(self.iq)} policy={self.policy.name!r} "
            f"parked={len(self.policy.queue)} "
            f"frontend={self._frontend_len()} head={head!r} "
            f"free_int={self.regfile.free('int')} "
            f"free_fp={self.regfile.free('fp')} "
            f"lq={self.lsq.lq_used} sq={self.lsq.sq_used}"
        )

    def _accumulate(self, now: int, step: int) -> None:
        queue = self.policy.queue
        lsq = self.lsq
        occ = self._occ_rob
        level = len(self._rob_entries)
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_iq
        level = self.iq.occupancy
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_lq
        level = lsq.lq_used
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_sq
        level = lsq.sq_used
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        rf_free = self._rf_free
        occ = self._occ_rf_int
        level = self._rf_cap_int - rf_free["int"]
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_rf_fp
        level = self._rf_cap_fp - rf_free["fp"]
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_ltp
        level = len(queue._entries)
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_ltp_regs
        level = queue.parked_with_dst
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_ltp_loads
        level = queue.parked_loads
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        occ = self._occ_ltp_stores
        level = queue.parked_stores
        occ.integral += level * step
        if level > occ.peak:
            occ.peak = level
        if not self._monitor_off:
            self.stats.ltp_enabled_cycles += self._monitor.enabled_span(
                now, now + step)

    # ==================================================================
    # fetch
    # ==================================================================
    def _fetch(self, now: int) -> bool:
        if self._fetch_blocked_on is not None:
            self.stats.stall_frontend += 1
            return False
        if now < self._fetch_stall_until:
            return False
        trace = self._trace_seq
        idx = self._trace_idx
        length = self._trace_len
        if idx >= length:
            return False
        frontend = self._frontend
        if (len(frontend) - self._frontend_head
                + self.params.fetch_width > self._frontend_cap):
            return False

        first = trace[idx]
        icache = self.hierarchy.access_inst(first.code_addr, now)
        if icache.complete_cycle > now + 1:
            self._fetch_stall_until = icache.complete_cycle
            return False

        stats = self.stats
        bpred_update = self.bpred.predict_and_update
        fetched = 0
        width = self.params.fetch_width
        ready = now + self.params.frontend_depth
        while fetched < width and idx < length:
            dyn = trace[idx]
            idx += 1
            frontend.append((ready, dyn))
            fetched += 1
            stats.fetched += 1
            if dyn.is_branch:
                correct = bpred_update(dyn.pc, dyn.taken)
                if not correct:
                    stats.branch_mispredicts += 1
                    self._fetch_blocked_on = dyn.seq
                    break
            elif dyn.taken:
                break  # taken jump/branch ends the fetch group
        self._trace_idx = idx
        return fetched > 0

    # ==================================================================
    # rename / dispatch / park
    # ==================================================================
    def _rename(self, now: int) -> bool:
        frontend = self._frontend
        frontend_len = len(frontend)
        if self._frontend_head >= frontend_len:
            return False
        renamed = 0
        width = self.params.rename_width
        stats = self.stats
        rob = self.rob
        rob_entries = self._rob_entries
        rob_capacity = rob.capacity
        policy = self.policy
        scoreboard = self._scoreboard
        scoreboard_get = scoreboard.get
        parked_store_pcs = self._parked_store_pcs
        while renamed < width:
            head_idx = self._frontend_head
            if head_idx >= frontend_len:
                break
            head = frontend[head_idx]
            if head[0] > now:
                break
            if len(rob_entries) >= rob_capacity:
                if renamed == 0:
                    stats.stall_rob += 1
                break
            dyn = head[1]
            record = InFlightInst(dyn)
            src_producers = dyn.src_producers
            n_producers = len(src_producers)
            if n_producers == 1:
                p0 = src_producers[0]
                record.producer_records = (
                    scoreboard_get(p0) if p0 >= 0 else None,)
            elif n_producers == 2:
                p0, p1 = src_producers
                record.producer_records = (
                    scoreboard_get(p0) if p0 >= 0 else None,
                    scoreboard_get(p1) if p1 >= 0 else None)
            elif n_producers:
                record.producer_records = tuple(
                    scoreboard_get(p) if p >= 0 else None
                    for p in src_producers)

            policy.observe_rename(record)
            if record.urgent:
                stats.classified_urgent += 1
            else:
                stats.classified_non_urgent += 1
            if record.non_ready:
                stats.classified_non_ready += 1

            memdep_forced = False
            if record.is_load and parked_store_pcs:
                for store_pc in self.memdep.predicted_stores(dyn.pc):
                    if parked_store_pcs.get(store_pc):
                        memdep_forced = True
                        break

            decision = policy.may_allocate(record, now, memdep_forced)
            if decision == "stall":
                if renamed == 0:
                    stats.stall_ltp_full += 1
                break

            if decision == "park":
                if not self._can_allocate_park(record):
                    if renamed == 0:
                        stats.stall_lsq += 1
                    break
                self._allocate_park(record, now)
            else:
                blocker = self._can_allocate_dispatch(record)
                if blocker is not None:
                    if renamed == 0:
                        setattr(stats, blocker,
                                getattr(stats, blocker) + 1)
                    break
                self._allocate_dispatch(record, now)

            # pop the frontend FIFO; periodic compaction bounds the list
            head_idx += 1
            if head_idx > 64:
                del frontend[:head_idx]
                head_idx = 0
                frontend_len = len(frontend)
            self._frontend_head = head_idx
            scoreboard[dyn.seq] = record
            self._register_dependences(record)
            record.rename_cycle = now
            if record.predicted_ll:
                self._ll_add(record)
            renamed += 1
            stats.renamed += 1
        return renamed > 0

    def _can_allocate_park(self, record: InFlightInst) -> bool:
        if record.is_load and not self._park_loads:
            if not self.lsq.can_allocate_load():
                return False
        if record.is_store and not self._park_stores:
            if not self.lsq.can_allocate_store():
                return False
        if not self._defer_registers and record.rf_class is not None:
            # WIB-style buffer: registers are taken at rename as usual
            if not self.regfile.can_allocate(record.rf_class):
                return False
        return True

    def _allocate_park(self, record: InFlightInst, now: int) -> None:
        dyn = record.dyn
        if record.is_load and not self._park_loads:
            self.lsq.allocate_load()
            record.lq_allocated = True
        if record.is_store and not self._park_stores:
            self.lsq.allocate_store(dyn.seq, dyn.pc)
            record.sq_allocated = True
        if not self._defer_registers and record.rf_class is not None:
            self.regfile.allocate(record.rf_class)
            record.rf_allocated = True
        self.rob.push(record)
        self.policy.park(record)
        self.stats.ltp_parked += 1
        self.stats.ltp_writes += 1
        if record.is_store:
            count = self._parked_store_pcs.get(dyn.pc, 0)
            self._parked_store_pcs[dyn.pc] = count + 1

    def _can_allocate_dispatch(self, record: InFlightInst) -> Optional[str]:
        """Return the stall-stat name blocking dispatch, or None.

        Equivalent to ``iq.full`` / ``regfile.can_allocate`` /
        ``lsq.can_allocate_*`` with the reserve honoured, expanded to
        direct comparisons because rename retries this check every
        cycle it stays blocked.
        """
        iq = self.iq
        if iq.occupancy >= iq.capacity:
            return "stall_iq"
        rf_class = record.rf_class
        if rf_class is not None and self._rf_free[rf_class] < self._rf_need:
            return "stall_regs"
        lsq = self.lsq
        if record.is_load and lsq.lq_used + self._lsq_need > lsq.lq_capacity:
            return "stall_lsq"
        if record.is_store and lsq.sq_used + self._lsq_need > lsq.sq_capacity:
            return "stall_lsq"
        return None

    def _allocate_dispatch(self, record: InFlightInst, now: int) -> None:
        # _can_allocate_dispatch just verified every resource (with the
        # reserve honoured), so take them directly.
        dyn = record.dyn
        if record.rf_class is not None:
            self._rf_free[record.rf_class] -= 1
            record.rf_allocated = True
        if record.is_load:
            self.lsq.lq_used += 1
            record.lq_allocated = True
        if record.is_store:
            self.lsq.allocate_store(dyn.seq, dyn.pc)
            record.sq_allocated = True
        self._rob_entries.append(record)
        self.iq.insert(record)
        self.stats.iq_writes += 1

    def _register_dependences(self, record: InFlightInst) -> None:
        waiting = 0
        for producer in record.producer_records:
            if producer is not None and not producer.done:
                consumers = producer.consumers
                if consumers:
                    consumers.append(record)
                else:  # first consumer: swap the shared () for a list
                    producer.consumers = [record]
                waiting += 1
        record.waiting_on = waiting
        if waiting == 0 and record.in_iq:
            self.iq.mark_ready(record)

    # ==================================================================
    # LTP release (wakeup)
    # ==================================================================
    def _boundary_seq(self) -> int:
        if len(self._ll_seqs) < 2:
            return NO_BOUNDARY
        return self._ll_seqs[1]

    def _ll_add(self, record: InFlightInst) -> None:
        if not record.ll_listed:
            record.ll_listed = True
            insort(self._ll_seqs, record.seq)

    def _ll_remove(self, record: InFlightInst) -> None:
        if record.ll_listed:
            record.ll_listed = False
            index = self._ll_seqs.index(record.seq)
            del self._ll_seqs[index]

    def _ltp_release(self, now: int) -> Tuple[int, bool]:
        policy = self.policy
        if not len(policy.queue):
            return 0, False
        ports = self._release_ports
        boundary = self._boundary_seq()
        head = self.rob.head()
        force_seq = head.seq if head is not None and head.parked else -1
        released = 0
        while released < ports:
            candidates = policy.on_release_scan(
                now, boundary, force_seq, 1)
            if not candidates:
                break
            record = candidates[0]
            if not self._try_release(record, now):
                break
            released += 1
            if record.forced_release:
                self.stats.ltp_forced_releases += 1
        pending = False
        if released >= ports:
            pending = bool(policy.on_release_scan(
                now, boundary, force_seq, 1))
        return released, pending

    def _try_release(self, record: InFlightInst, now: int) -> bool:
        dyn = record.dyn
        if self.iq.full:
            return False
        if (record.rf_class is not None and not record.rf_allocated
                and not self.regfile.can_allocate(record.rf_class,
                                                  honor_reserve=False)):
            return False
        if record.is_load and not record.lq_allocated:
            if not self.lsq.can_allocate_load(honor_reserve=False):
                return False
        if record.is_store and not record.sq_allocated:
            if not self.lsq.can_allocate_store(honor_reserve=False):
                return False

        self.policy.release(record)
        if record.rf_class is not None and not record.rf_allocated:
            self.regfile.allocate(record.rf_class, honor_reserve=False)
            record.rf_allocated = True
        if record.is_load and not record.lq_allocated:
            self.lsq.allocate_load()
            record.lq_allocated = True
        if record.is_store and not record.sq_allocated:
            self.lsq.allocate_store(dyn.seq, dyn.pc)
            record.sq_allocated = True
        if record.is_store:
            count = self._parked_store_pcs.get(dyn.pc, 0)
            if count <= 1:
                self._parked_store_pcs.pop(dyn.pc, None)
            else:
                self._parked_store_pcs[dyn.pc] = count - 1
        record.release_cycle = now
        self.iq.insert(record)
        self.stats.ltp_released += 1
        self.stats.ltp_reads += 1
        self.stats.iq_writes += 1
        return True

    # ==================================================================
    # issue / execute
    # ==================================================================
    def _issue(self, now: int) -> bool:
        iq = self.iq
        if not iq._ready_heap:
            return False
        fu_used = self._fu_used
        fu_used.clear()
        fu_counts = self.params.fu_counts
        fu_busy_until = self._fu_busy_until
        execute = self._execute

        def try_issue(record: InFlightInst) -> bool:
            group = record.fu_group
            used = fu_used.get(group, 0)
            if used >= fu_counts.get(group, 1):
                return False
            if record.nonpipelined and now < fu_busy_until.get(group, 0):
                return False
            if not execute(record, now):
                return False
            fu_used[group] = used + 1
            return True

        picked = iq.select(try_issue, self.params.issue_width)
        if not picked:
            return False
        stats = self.stats
        for record in picked:
            record.issue_cycle = now
            stats.issued += 1
            stats.rf_reads += record.dyn.n_srcs
        return True

    def _execute(self, record: InFlightInst, now: int) -> bool:
        """Compute the completion time; return False to retry later."""
        if record.is_load:
            return self._execute_load(record, now)

        dyn = record.dyn
        if record.is_store:
            addr = dyn.addr
            resolve_cycle = now + self._lat_agu
            self.lsq.store_executed(dyn.seq, addr, resolve_cycle)
            self._check_violation(record, addr, resolve_cycle)
            completion = resolve_cycle + self._lat_store
            record.completion_cycle = completion
            _heappush(self._events,
                      (completion, record.seq, _EV_COMPLETE, record))
            return True

        latency = self._lat_by_class[dyn.op_class]
        completion = now + latency
        if record.nonpipelined:
            self._fu_busy_until[record.fu_group] = completion
            if record.own_ticket is not None:
                lead = min(self.params.mem.dram_wakeup_lead, latency)
                self._schedule_tag(record, completion - lead)
        record.completion_cycle = completion
        _heappush(self._events, (completion, record.seq, _EV_COMPLETE, record))
        return True

    # ------------------------------------------------------------------
    # reference (non-pre-decoded) issue/execute path.  Semantically
    # identical to the fast path above but derives every piece of
    # per-instruction metadata from the authoritative opcode tables per
    # use, exactly like the original implementation.  Differential tests
    # run both paths and assert bit-identical statistics.
    # ------------------------------------------------------------------
    def _issue_reference(self, now: int) -> bool:
        fu_used: Dict[str, int] = {}
        params = self.params

        def try_issue(record: InFlightInst) -> bool:
            group = _FU_GROUP[record.dyn.op_class]
            if fu_used.get(group, 0) >= params.fu_counts.get(group, 1):
                return False
            if record.dyn.op_class in _NONPIPELINED:
                if now < self._fu_busy_until.get(group, 0):
                    return False
            if not self._execute_reference(record, now):
                return False
            fu_used[group] = fu_used.get(group, 0) + 1
            return True

        picked = self.iq.select(try_issue, params.issue_width)
        for record in picked:
            record.issue_cycle = now
            self.stats.issued += 1
            self.stats.rf_reads += len(record.dyn.inst.srcs)
        return bool(picked)

    def _execute_reference(self, record: InFlightInst, now: int) -> bool:
        dyn = record.dyn
        op_class = dyn.inst.op_class
        latencies = self.params.latencies

        if op_class is OpClass.LOAD:
            return self._execute_load(record, now)

        if op_class is OpClass.STORE:
            agu = latencies["agu"]
            addr = dyn.addr
            resolve_cycle = now + agu
            self.lsq.store_executed(dyn.seq, addr, resolve_cycle)
            self._check_violation(record, addr, resolve_cycle)
            completion = resolve_cycle + latencies["store"]
            self._schedule_completion(record, completion)
            return True

        latency = latencies.get(op_class.value, latencies["int_alu"])
        completion = now + latency
        if op_class in _NONPIPELINED:
            group = _FU_GROUP[op_class]
            self._fu_busy_until[group] = completion
            if record.own_ticket is not None:
                lead = min(self.params.mem.dram_wakeup_lead, latency)
                self._schedule_tag(record, completion - lead)
        self._schedule_completion(record, completion)
        return True

    def _execute_load(self, record: InFlightInst, now: int) -> bool:
        dyn = record.dyn
        agu = self._lat_agu
        addr = dyn.addr

        state, entry = self.lsq.older_store_state(dyn.seq, addr, now)
        if state == "unknown":
            if self.memdep.must_wait(dyn.pc, entry.pc):
                return False  # wait for the store's address
            # speculate past the unknown store
        elif state == "forward":
            completion = now + agu + self._lat_forward
            record.mem_level = "forward"
            self._schedule_completion(record, completion)
            self._schedule_tag(record, completion)
            self._track_open_load(record, addr)
            return True

        result = self.hierarchy.access_data(addr, now + agu,
                                            is_store=False, pc=dyn.pc)
        if result is None:
            return False  # MSHRs full; retry
        record.mem_level = result.level
        record.actual_ll = result.long_latency
        if result.long_latency:
            self.stats.long_latency_loads += 1
            self._ll_add(record)
        if result.level == "dram":
            self.policy.on_dram_demand_access(now)
        self._schedule_completion(record, result.complete_cycle)
        self._schedule_tag(record,
                           min(result.tag_known_cycle, result.complete_cycle))
        self._track_open_load(record, addr)
        return True

    def _track_open_load(self, record: InFlightInst, addr: int) -> None:
        word = addr & _WORD_MASK
        self._open_loads.setdefault(word, []).append(record)

    def _untrack_open_load(self, record: InFlightInst) -> None:
        word = record.dyn.addr & _WORD_MASK
        entries = self._open_loads.get(word)
        if entries:
            try:
                entries.remove(record)
            except ValueError:
                pass
            if not entries:
                del self._open_loads[word]

    def _check_violation(self, store: InFlightInst, addr: int,
                         now: int) -> None:
        """A store resolved its address: detect younger issued loads."""
        word = addr & _WORD_MASK
        for load in self._open_loads.get(word, ()):
            if load.seq > store.seq and load.issue_cycle is not None:
                self.stats.memory_violations += 1
                self._commit_stall_until = max(
                    self._commit_stall_until,
                    now + self.params.violation_penalty)
                self.memdep.train_violation(load.dyn.pc, store.dyn.pc)
                self.policy.on_violation(load.dyn.pc, store.dyn.pc)

    def _schedule_completion(self, record: InFlightInst, cycle: int) -> None:
        record.completion_cycle = cycle
        _heappush(self._events, (cycle, record.seq, _EV_COMPLETE, record))

    def _schedule_tag(self, record: InFlightInst, cycle: int) -> None:
        if record.own_ticket is not None:
            _heappush(self._events, (cycle, record.seq, _EV_TAG, record))

    # ==================================================================
    # writeback
    # ==================================================================
    def _writeback(self, now: int) -> bool:
        events = self._events
        width = self.params.writeback_width
        completed = 0
        progress = False
        policy_tag = self.policy.on_tag_known
        complete = self._complete
        while events and events[0][0] <= now:
            if events[0][2] == _EV_COMPLETE and completed >= width:
                break
            _, _, kind, record = _heappop(events)
            if kind == _EV_TAG:
                policy_tag(record)
                progress = True
                continue
            completed += 1
            progress = True
            complete(record, now)
        return progress

    def _complete(self, record: InFlightInst, now: int) -> None:
        record.done = True
        stats = self.stats
        if record.has_dst:
            stats.rf_writes += 1
        iq_mark_ready = self.iq.mark_ready
        for consumer in record.consumers:
            waiting = consumer.waiting_on - 1
            consumer.waiting_on = waiting
            if waiting == 0 and consumer.in_iq:
                iq_mark_ready(consumer)
        self._ll_remove(record)
        if record.own_ticket is not None:
            # safety net: clear tickets no later than completion
            self.policy.on_tag_known(record)
        if record.is_load:
            self.policy.on_load_complete(record, record.actual_ll)
        if record.seq == self._fetch_blocked_on:
            self._fetch_blocked_on = None
            self._fetch_stall_until = now + self.params.mispredict_penalty

    # ==================================================================
    # commit
    # ==================================================================
    def _commit(self, now: int) -> bool:
        if now < self._commit_stall_until:
            return False
        rob_entries = self._rob_entries
        if not rob_entries or not rob_entries[0].done:
            return False
        committed = 0
        width = self.params.commit_width
        stats = self.stats
        policy_commit = self.policy.on_commit
        regfile_release = self.regfile.release
        lsq = self.lsq
        pop = rob_entries.popleft
        head = rob_entries[0]
        while committed < width:
            pop()
            dyn = head.dyn
            if head.has_dst:
                # frees the previous mapping of the architectural register
                regfile_release(head.rf_class)
            if head.is_load:
                lsq.release_load()
                self._untrack_open_load(head)
                stats.committed_loads += 1
            elif head.is_store:
                self.hierarchy.commit_store(dyn.addr)
                lsq.release_store(dyn.seq)
                stats.committed_stores += 1
            elif dyn.is_branch:
                stats.committed_branches += 1
            policy_commit(head)
            committed += 1
            stats.committed += 1
            if not rob_entries:
                break
            head = rob_entries[0]
            if not head.done:
                break
        self._last_commit_cycle = now
        return True

    # ==================================================================
    # wrap-up
    # ==================================================================
    def _export_activity(self) -> None:
        stats = self.stats
        self.policy.stats_extra(stats)
        stats.extra["avg_outstanding"] = self.hierarchy.average_outstanding(
            self.cycle)
        stats.extra["avg_load_latency"] = (
            self.hierarchy.stats.average_load_latency)
        stats.extra["branch_accuracy"] = self.bpred.accuracy
        stats.extra["prefetches_issued"] = float(
            self.hierarchy.stats.prefetches_issued)
        hits = self.hierarchy.stats.level_hits
        total = max(1, sum(hits.values()))
        for level, count in hits.items():
            stats.extra[f"frac_{level}"] = count / total


def simulate(trace: Sequence[DynInst],
             params: Optional[CoreParams] = None,
             ltp: Optional[LTPConfig] = None,
             **kwargs) -> SimStats:
    """Convenience wrapper: build a :class:`Pipeline` and run it."""
    return Pipeline(trace, params=params, ltp=ltp, **kwargs).run()
