"""Load and store queues: occupancy, forwarding, and ordering checks.

The LQ/SQ are allocated at rename and freed at commit (paper Figure 4;
stores "deallocate their SQ entry after the data has been written back,
which typically happens shortly after they commit" — modelled as free at
commit).  The SQ additionally tracks in-flight store addresses so loads
can (a) forward from a completed older store, or (b) be held back when
an older store to an unknown address is predicted to conflict.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.params import cap

WORD_MASK = ~7


class StoreEntry:
    """One in-flight store tracked by the SQ."""

    __slots__ = ("seq", "pc", "addr", "data_ready_cycle", "committed")

    def __init__(self, seq: int, pc: int) -> None:
        self.seq = seq
        self.pc = pc
        self.addr: Optional[int] = None
        self.data_ready_cycle: Optional[int] = None
        self.committed = False


class LoadStoreQueues:
    """Combined LQ/SQ occupancy and store-address tracking."""

    def __init__(self, lq_size: Optional[int], sq_size: Optional[int],
                 reserve: int = 0) -> None:
        self.lq_capacity = cap(lq_size)
        self.sq_capacity = cap(sq_size)
        self.lq_used = 0
        self.sq_used = 0  # kept as a plain counter: read every cycle
        self._stores: Dict[int, StoreEntry] = {}  # seq -> entry
        # clamp so the reserve can never block rename outright
        self.reserve = min(reserve,
                           max(0, self.lq_capacity - 1),
                           max(0, self.sq_capacity - 1))

    # -- allocation -----------------------------------------------------
    def can_allocate_load(self, honor_reserve: bool = True) -> bool:
        needed = 1 + (self.reserve if honor_reserve else 0)
        return self.lq_used + needed <= self.lq_capacity

    def can_allocate_store(self, honor_reserve: bool = True) -> bool:
        needed = 1 + (self.reserve if honor_reserve else 0)
        return len(self._stores) + needed <= self.sq_capacity

    def allocate_load(self) -> None:
        if self.lq_used >= self.lq_capacity:
            raise RuntimeError("LQ overflow")
        self.lq_used += 1

    def allocate_store(self, seq: int, pc: int) -> StoreEntry:
        if len(self._stores) >= self.sq_capacity:
            raise RuntimeError("SQ overflow")
        entry = StoreEntry(seq, pc)
        self._stores[seq] = entry
        self.sq_used += 1
        return entry

    def release_load(self) -> None:
        if self.lq_used <= 0:
            raise RuntimeError("LQ double free")
        self.lq_used -= 1

    def release_store(self, seq: int) -> None:
        if seq not in self._stores:
            raise RuntimeError(f"SQ double free (seq {seq})")
        del self._stores[seq]
        self.sq_used -= 1

    # -- store execution ------------------------------------------------
    def store_executed(self, seq: int, addr: int, cycle: int) -> None:
        entry = self._stores[seq]
        entry.addr = addr & WORD_MASK
        entry.data_ready_cycle = cycle

    # -- load-side queries ----------------------------------------------
    def older_store_state(self, load_seq: int, load_addr: int,
                          now: int) -> Tuple[str, Optional[StoreEntry]]:
        """Classify the youngest relevant older store for a load.

        Returns one of:

        * ``("forward", entry)`` — an older store to the same word has
          executed; store-to-load forwarding applies.
        * ``("unknown", entry)`` — an older store's address is still
          unknown; the memory-dependence predictor decides whether the
          load may speculate past it.
        * ``("clear", None)`` — no older store can conflict.
        """
        addr = load_addr & WORD_MASK
        youngest_match: Optional[StoreEntry] = None
        youngest_unknown: Optional[StoreEntry] = None
        for entry in self._stores.values():
            if entry.seq >= load_seq:
                continue
            if entry.addr is None:
                if youngest_unknown is None or entry.seq > youngest_unknown.seq:
                    youngest_unknown = entry
            elif entry.addr == addr:
                if youngest_match is None or entry.seq > youngest_match.seq:
                    youngest_match = entry
        if youngest_unknown is not None and (
                youngest_match is None
                or youngest_unknown.seq > youngest_match.seq):
            return "unknown", youngest_unknown
        if youngest_match is not None:
            return "forward", youngest_match
        return "clear", None

    def unknown_older_stores(self, load_seq: int) -> List[StoreEntry]:
        """All older stores whose addresses are still unknown."""
        return [e for e in self._stores.values()
                if e.seq < load_seq and e.addr is None]
