"""The out-of-order core substrate: a trace-driven cycle model."""

from repro.core.branch import GsharePredictor
from repro.core.inflight import InFlightInst
from repro.core.iq import IssueQueue
from repro.core.lsq import LoadStoreQueues
from repro.core.memdep import MemDepPredictor
from repro.core.params import (CoreParams, UNLIMITED, baseline_params, cap,
                               ltp_params)
from repro.core.pipeline import (CODE_BASE, Pipeline, SimulationDeadlock,
                                 simulate)
from repro.core.regfile import RegisterFile, RegisterFileError
from repro.core.rob import ROB
from repro.core.stats import Occupancy, SimStats

__all__ = [
    "CODE_BASE",
    "CoreParams",
    "GsharePredictor",
    "InFlightInst",
    "IssueQueue",
    "LoadStoreQueues",
    "MemDepPredictor",
    "Occupancy",
    "Pipeline",
    "RegisterFile",
    "RegisterFileError",
    "ROB",
    "SimStats",
    "SimulationDeadlock",
    "UNLIMITED",
    "baseline_params",
    "cap",
    "ltp_params",
    "simulate",
]
