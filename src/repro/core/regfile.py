"""Physical register file modelled as per-class free pools.

Dataflow in the timing model is tracked by producer sequence numbers, so
the register file only needs to model *occupancy*: how many physical
registers of each class are free.  The pool size is the paper's
"available registers" — the registers beyond the architectural state
(Section 4.2, footnote 4).  Renaming a destination consumes one entry;
committing an instruction that redefines an architectural register frees
exactly one entry (the previous mapping dies).

A *reserve* can be carved out so LTP releases always find registers
(Section 5.4's deadlock avoidance): normal rename honours the reserve,
LTP release allocation does not.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.params import cap


class RegisterFileError(RuntimeError):
    """Raised on accounting violations (double free / empty-pool alloc)."""


class RegisterFile:
    """Free-pool accounting for the int and fp physical register files."""

    CLASSES = ("int", "fp")

    def __init__(self, int_regs: Optional[int], fp_regs: Optional[int],
                 reserve: int = 0) -> None:
        if reserve < 0:
            raise ValueError("reserve must be >= 0")
        self._capacity: Dict[str, int] = {
            "int": cap(int_regs), "fp": cap(fp_regs),
        }
        self._free: Dict[str, int] = dict(self._capacity)
        # a reserve as large as the pool would deadlock rename entirely;
        # clamp it so at least one register stays generally allocatable
        smallest = min(self._capacity.values())
        self.reserve = min(reserve, max(0, smallest - 1))

    def capacity(self, cls: str) -> int:
        return self._capacity[cls]

    def free(self, cls: str) -> int:
        return self._free[cls]

    def in_use(self, cls: str) -> int:
        used = self._capacity[cls] - self._free[cls]
        # unlimited pools report their true usage, not the sentinel
        return used

    def can_allocate(self, cls: str, honor_reserve: bool = True) -> bool:
        needed = 1 + (self.reserve if honor_reserve else 0)
        return self._free[cls] >= needed

    def allocate(self, cls: str, honor_reserve: bool = True) -> None:
        if not self.can_allocate(cls, honor_reserve):
            raise RegisterFileError(f"no free {cls} register")
        self._free[cls] -= 1

    def release(self, cls: str) -> None:
        if self._free[cls] >= self._capacity[cls]:
            raise RegisterFileError(f"double free of {cls} register")
        self._free[cls] += 1
