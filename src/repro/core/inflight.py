"""Per-dynamic-instruction bookkeeping record used by the pipeline.

One :class:`InFlightInst` exists per dynamic instruction from rename to
commit.  Dataflow is tracked by producer/consumer links between records
(the rename result), physical registers purely as occupancy, so the
record carries readiness counters rather than register indices.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.trace import DynInst

# lifecycle states are implicit in flags:
#   parked      -> waiting in LTP (no IQ/RF yet)
#   in_iq       -> dispatched, waiting/ready in the IQ
#   issued      -> selected for execution, completion event pending
#   done        -> executed; eligible for commit when at ROB head

#: shared immutable defaults so constructing a record (which happens on
#: every rename *attempt*, including retried ones) allocates nothing.
#: The pipeline swaps ``consumers`` for a real list on first append;
#: the ticket tracker assigns a real set on inheritance.
_NO_CONSUMERS: Tuple = ()
_NO_TICKETS: frozenset = frozenset()


class InFlightInst:
    """Timing-model state for one dynamic instruction."""

    __slots__ = (
        "dyn", "seq",
        "is_load", "is_store", "has_dst", "fu_group", "nonpipelined",
        "waiting_on", "consumers",
        "in_iq", "issued", "done",
        "completion_cycle",
        "parked", "urgent", "non_ready", "predicted_ll", "actual_ll",
        "ll_listed",
        "tickets", "own_ticket",
        "rf_class", "rf_allocated", "lq_allocated", "sq_allocated",
        "rename_cycle", "release_cycle", "issue_cycle",
        "mem_level", "producer_records",
        "forced_release", "park_reason",
    )

    def __init__(self, dyn: DynInst) -> None:
        # one record is built per rename *attempt* (retries included),
        # so this constructor is hot: constant defaults are grouped into
        # chained stores and the pre-decoded metadata the per-cycle
        # paths touch is mirrored so the hot loop never takes the extra
        # hop through ``dyn``
        self.dyn = dyn
        self.seq = dyn.seq
        self.is_load = dyn.is_load
        self.is_store = dyn.is_store
        self.has_dst = dyn.has_dst
        self.fu_group = dyn.fu_group
        self.nonpipelined = dyn.nonpipelined
        self.rf_class: Optional[str] = dyn.rf_class
        self.waiting_on = 0
        self.consumers = _NO_CONSUMERS  # list on first append (see pipeline)
        self.tickets = _NO_TICKETS  # real set assigned by TicketTracker
        self.producer_records: Tuple[Optional["InFlightInst"], ...] = ()
        self.in_iq = self.issued = self.done = self.parked = False
        self.urgent = self.non_ready = False
        self.predicted_ll = self.actual_ll = self.ll_listed = False
        self.rf_allocated = self.lq_allocated = self.sq_allocated = False
        self.forced_release = False
        self.completion_cycle = self.own_ticket = None
        self.rename_cycle = self.release_cycle = self.issue_cycle = None
        self.mem_level = self.park_reason = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        flags = []
        if self.parked:
            flags.append("parked")
        if self.in_iq:
            flags.append("iq")
        if self.issued:
            flags.append("issued")
        if self.done:
            flags.append("done")
        state = ",".join(flags) or "renamed"
        return f"<InFlight #{self.seq} {self.dyn.inst.opcode} [{state}]>"
