"""Per-dynamic-instruction bookkeeping record used by the pipeline.

One :class:`InFlightInst` exists per dynamic instruction from rename to
commit.  Dataflow is tracked by producer/consumer links between records
(the rename result), physical registers purely as occupancy, so the
record carries readiness counters rather than register indices.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.isa.trace import DynInst

# lifecycle states are implicit in flags:
#   parked      -> waiting in LTP (no IQ/RF yet)
#   in_iq       -> dispatched, waiting/ready in the IQ
#   issued      -> selected for execution, completion event pending
#   done        -> executed; eligible for commit when at ROB head


class InFlightInst:
    """Timing-model state for one dynamic instruction."""

    __slots__ = (
        "dyn", "seq",
        "waiting_on", "consumers",
        "in_iq", "issued", "done",
        "completion_cycle",
        "parked", "urgent", "non_ready", "predicted_ll", "actual_ll",
        "ll_listed",
        "tickets", "own_ticket",
        "rf_class", "rf_allocated", "lq_allocated", "sq_allocated",
        "rename_cycle", "release_cycle", "issue_cycle",
        "mem_level", "mispredicted", "producer_records",
        "forced_release", "park_reason",
    )

    def __init__(self, dyn: DynInst) -> None:
        self.dyn = dyn
        self.seq = dyn.seq
        self.waiting_on = 0
        self.consumers: List["InFlightInst"] = []
        self.in_iq = False
        self.issued = False
        self.done = False
        self.completion_cycle: Optional[int] = None
        self.parked = False
        self.urgent = False
        self.non_ready = False
        self.predicted_ll = False
        self.actual_ll = False
        self.ll_listed = False
        self.tickets: Set[int] = set()
        self.own_ticket: Optional[int] = None
        self.rf_class: Optional[str] = None
        self.rf_allocated = False
        self.lq_allocated = False
        self.sq_allocated = False
        self.rename_cycle: Optional[int] = None
        self.release_cycle: Optional[int] = None
        self.issue_cycle: Optional[int] = None
        self.mem_level: Optional[str] = None
        self.mispredicted = False
        self.producer_records: Tuple[Optional["InFlightInst"], ...] = ()
        self.forced_release = False
        self.park_reason: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        flags = []
        if self.parked:
            flags.append("parked")
        if self.in_iq:
            flags.append("iq")
        if self.issued:
            flags.append("issued")
        if self.done:
            flags.append("done")
        state = ",".join(flags) or "renamed"
        return f"<InFlight #{self.seq} {self.dyn.inst.opcode} [{state}]>"
