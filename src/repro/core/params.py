"""Core (pipeline) configuration — defaults reproduce the paper's Table 1.

======================  =====================================
Frequency               3.4 GHz
Width F/D/R/I/W/C       8 / 8 / 8 / 6 / 8 / 8
ROB / IQ / LQ / SQ      256 / 64 / 64 / 32
Int / FP registers      128 / 128 (available, beyond architectural)
======================  =====================================

``None`` for any structure size means "effectively unlimited", which is
how the limit study (Section 4) isolates one resource at a time.
Internally unlimited maps to :data:`UNLIMITED`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.memory.hierarchy import MemParams

#: sentinel capacity for "unlimited" structures
UNLIMITED = 1 << 30


def cap(value: Optional[int]) -> int:
    """Map a structure-size parameter to its effective capacity."""
    return UNLIMITED if value is None else value


@dataclass
class CoreParams:
    """Out-of-order core configuration (Table 1 defaults)."""

    frequency_ghz: float = 3.4
    fetch_width: int = 8
    decode_width: int = 8
    rename_width: int = 8
    issue_width: int = 6
    writeback_width: int = 8
    commit_width: int = 8

    rob_size: Optional[int] = 256
    iq_size: Optional[int] = 64
    lq_size: Optional[int] = 64
    sq_size: Optional[int] = 32
    int_regs: Optional[int] = 128   # available (beyond architectural)
    fp_regs: Optional[int] = 128

    #: cycles between fetch and rename (front-end depth)
    frontend_depth: int = 5
    #: extra cycles to refill the front end after a mispredict redirect
    mispredict_penalty: int = 10
    #: commit-stall cycles charged per memory-order violation
    violation_penalty: int = 15

    #: functional-unit pool sizes per issue port group
    fu_counts: Dict[str, int] = field(default_factory=lambda: {
        "alu": 4, "mem": 2, "fp": 2, "muldiv": 1,
    })

    #: operation latencies in cycles (memory ops add cache access time)
    latencies: Dict[str, int] = field(default_factory=lambda: {
        "int_alu": 1, "int_mul": 3, "int_div": 20,
        "fp_add": 3, "fp_mul": 4, "fp_div": 24,
        "branch": 1, "jump": 1, "agu": 1, "store": 1, "nop": 1,
        "forward": 3,
    })

    mem: MemParams = field(default_factory=MemParams)

    #: watchdog: abort if a run exceeds this many cycles with no commit
    deadlock_cycles: int = 200_000

    def validate(self) -> "CoreParams":
        for name in ("fetch_width", "rename_width", "issue_width",
                     "commit_width", "frontend_depth"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("rob_size", "iq_size", "lq_size", "sq_size",
                     "int_regs", "fp_regs"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        self.mem.validate()
        return self

    def but(self, **overrides) -> "CoreParams":
        """Return a copy with *overrides* applied (sweep helper)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """Render the configuration like the paper's Table 1."""
        def fmt(value: Optional[int]) -> str:
            return "unlimited" if value is None else str(value)

        mem = self.mem
        rows = [
            ("Frequency", f"{self.frequency_ghz} GHz"),
            ("Width: F / D / R / I / W / C",
             f"{self.fetch_width} / {self.decode_width} / "
             f"{self.rename_width} / {self.issue_width} / "
             f"{self.writeback_width} / {self.commit_width}"),
            ("ROB / IQ / LQ / SQ",
             f"{fmt(self.rob_size)} / {fmt(self.iq_size)} / "
             f"{fmt(self.lq_size)} / {fmt(self.sq_size)}"),
            ("Int. / FP Registers",
             f"{fmt(self.int_regs)} / {fmt(self.fp_regs)}"),
            ("L1 Instruction / Data Caches",
             f"{mem.l1d_size // 1024}kB, 64B, {mem.l1d_ways}-way, LRU, "
             f"{mem.l1_latency}c"),
            ("L2 Unified Cache",
             f"{mem.l2_size // 1024}kB, 64B, {mem.l2_ways}-way, LRU, "
             f"{mem.l2_latency}c"),
            ("-- L2 Prefetcher",
             f"Stride prefetcher, degree {mem.prefetch_degree}"),
            ("L3 Shared Cache",
             f"{mem.l3_size // 1024 // 1024}MB, 64B, {mem.l3_ways}-way, "
             f"LRU, {mem.l3_latency}c"),
            ("DRAM", f"~{mem.dram_latency} cycles, "
                     f"1/{mem.dram_issue_interval} cycles bandwidth"),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def baseline_params() -> CoreParams:
    """The paper's baseline: IQ 64, RF 128/128."""
    return CoreParams().validate()


def ltp_params() -> CoreParams:
    """The paper's proposed core: IQ 32, RF 96/96 (plus an LTP queue)."""
    return CoreParams(iq_size=32, int_regs=96, fp_regs=96).validate()
