"""Issue queue: wakeup/select with oldest-first scheduling.

Entries are allocated at dispatch and freed at issue (paper Figure 4).
Readiness is event driven: the pipeline calls :meth:`wake` when a
producer completes, and ready entries sit in a min-heap keyed by sequence
number so selection is oldest-first — the common heuristic the paper's
IQ discussion assumes.

``occupancy`` is a plain public counter (read every simulated cycle by
the statistics accumulator — keep it attribute-cheap).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.core.params import cap

_heappush = heapq.heappush
_heappop = heapq.heappop


class IssueQueue:
    """Bounded issue queue with event-driven wakeup and oldest-first select."""

    def __init__(self, size: Optional[int]) -> None:
        self.capacity = cap(size)
        self.occupancy = 0
        self._ready_heap: List[tuple] = []

    def __len__(self) -> int:
        return self.occupancy

    @property
    def full(self) -> bool:
        return self.occupancy >= self.capacity

    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    def insert(self, record) -> None:
        """Dispatch *record* into the IQ; it must carry wait bookkeeping."""
        if self.occupancy >= self.capacity:
            raise RuntimeError("IQ overflow")
        self.occupancy += 1
        record.in_iq = True
        if record.waiting_on == 0:
            _heappush(self._ready_heap, (record.seq, record))

    def mark_ready(self, record) -> None:
        _heappush(self._ready_heap, (record.seq, record))

    def wake(self, record) -> None:
        """Producer completed for *record*; enqueue if fully ready."""
        if record.waiting_on == 0 and record.in_iq and not record.issued:
            self.mark_ready(record)

    def select(self, can_issue: Callable[[object], bool],
               max_issues: int) -> List[object]:
        """Pick up to *max_issues* ready records, oldest first.

        *can_issue* implements structural constraints (FU availability,
        load/store port and ordering checks).  Records rejected by
        *can_issue* are kept for a later cycle.
        """
        picked: List[object] = []
        deferred: List[tuple] = []
        heap = self._ready_heap
        while heap and len(picked) < max_issues:
            item = _heappop(heap)
            record = item[1]
            if record.issued or not record.in_iq:
                continue  # stale heap entry
            if record.waiting_on != 0:
                continue  # stale: got re-blocked (should not happen)
            if can_issue(record):
                picked.append(record)
                record.issued = True
                record.in_iq = False
                self.occupancy -= 1
            else:
                deferred.append(item)
        for item in deferred:
            _heappush(heap, item)
        return picked

    def has_ready(self) -> bool:
        """True if some entry could issue this cycle (ignoring FUs)."""
        heap = self._ready_heap
        while heap:
            record = heap[0][1]
            if record.issued or not record.in_iq:
                _heappop(heap)
                continue
            return True
        return False
