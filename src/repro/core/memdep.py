"""Memory-dependence predictor (store-set flavoured).

Loads that have previously violated memory ordering against a store are
made to wait for that store's address instead of speculating past it.
This is the unit Section 5.3 extends: when a violation is detected, LTP
additionally classifies the store's PC as Urgent, and a load predicted
to depend on a *parked* store inherits the parked bit.

The predictor maps load PCs to the set of store PCs they must respect.
Sets are bounded per load to keep lookups cheap.
"""

from __future__ import annotations

from typing import Dict, Set


class MemDepPredictor:
    """Per-load-PC sets of conflicting store PCs, trained on violations."""

    def __init__(self, max_set_size: int = 4, table_size: int = 512) -> None:
        self.max_set_size = max_set_size
        self.table_size = table_size
        self._sets: Dict[int, Set[int]] = {}
        self.trainings = 0

    def _key(self, load_pc: int) -> int:
        return load_pc % self.table_size

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Record that *load_pc* violated ordering against *store_pc*."""
        self.trainings += 1
        entry = self._sets.setdefault(self._key(load_pc), set())
        if len(entry) >= self.max_set_size:
            entry.pop()
        entry.add(store_pc)

    def must_wait(self, load_pc: int, store_pc: int) -> bool:
        """Should the load wait for this unresolved older store?"""
        entry = self._sets.get(self._key(load_pc))
        return entry is not None and store_pc in entry

    def predicted_stores(self, load_pc: int) -> Set[int]:
        return set(self._sets.get(self._key(load_pc), ()))
