"""Columnar struct-of-arrays simulation engine (``engine="kernel"``).

:class:`KernelPipeline` executes the same Table 1 out-of-order core as
:class:`~repro.core.pipeline.Pipeline` — same stage order, same policy
seam, same statistics, bit-for-bit — but restructured for speed:

* **Struct-of-arrays trace state.**  The configuration-independent
  per-instruction metadata (PC, code address, branch flags, dense
  op-class / FU-group ids, non-pipelined flag, source counts) is
  predecoded once into parallel plain lists (:class:`TraceArrays`,
  built on :func:`repro.isa.trace.predecode_columns`) and indexed by
  position.  One predecode serves any number of configurations
  (:func:`simulate_batch`; the session layer caches the arrays in its
  trace LRU), which is the shape sweeps actually execute.
* **Integer event heap.**  Completion/tag events are packed into single
  integers ``cycle * SHIFT + rel * 2 + kind`` (``rel`` the trace-window
  index, ``SHIFT = 2 * len(trace)``), preserving the reference heap's
  exact ``(cycle, seq, kind)`` ordering while popping plain ints.
* **Index-window scheduling.**  The frontend FIFO is a pair of parallel
  int lists (ready cycle, trace index), the rename scoreboard is a
  preallocated list indexed by ``seq - seq0`` (the reference scoreboard
  never deletes, and producers outside the window resolve to ``None``),
  and the ready "queue" is a heap of window indices.
* **One fully-inlined main loop.**  All pipeline stages, the occupancy
  integration and every statistics counter live in locals of a single
  :meth:`KernelPipeline.run` frame; shared collaborator objects
  (hierarchy, branch predictor, LSQ, register file, memory-dependence
  predictor, and the whole policy seam) are driven through pre-bound
  methods exactly as the reference pipeline drives them.

**Bit-identity contract.**  The kernel performs the same *effective*
call sequence as the reference: every policy hook that can observe or
mutate state is invoked with identical arguments in identical order
(including one fresh :class:`InFlightInst` per rename *attempt*, which
the ticket tracker's pool accounting depends on).  The only calls it
elides are ones statically known to be no-ops for the constructed
policy (e.g. ``may_allocate`` on a disabled LTP controller, which
returns ``"dispatch"`` unconditionally without side effects).
Differential tests assert full ``SimStats.as_dict()`` equality across
every registered policy, LTP preset and workload.
"""

from __future__ import annotations

import gc as _gc
from heapq import heappop as _heappop, heappush as _heappush
from bisect import insort
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.branch import GsharePredictor
from repro.core.inflight import InFlightInst
from repro.core.params import CoreParams
from repro.core.pipeline import CODE_BASE, INST_BYTES, Pipeline
from repro.core.stats import SimStats
from repro.isa.instructions import OpClass
from repro.isa.trace import FU_GROUPS, DynInst, predecode_columns
from repro.ltp.config import LTPConfig
from repro.ltp.controller import NO_BOUNDARY, LTPController
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies import AllocationPolicy, LTPPolicy

__all__ = ["KernelPipeline", "TraceArrays", "predecode", "simulate_batch"]

_WORD_MASK = ~7


class TraceArrays:
    """Configuration-independent columnar predecode of one trace.

    Holds the :class:`DynInst` list plus the parallel metadata lists of
    :func:`~repro.isa.trace.predecode_columns`, the base sequence number
    ``seq0`` (kernel state is indexed by ``seq - seq0``), and the
    maximum static PC (for code warming).  Build with :func:`predecode`;
    slice a measurement window out of a full-trace predecode with
    :meth:`window` — the lists are sliced (cheap, C-speed) while the
    ``DynInst`` objects stay shared, so a cached full-trace predecode
    serves any warmup/measure split.
    """

    __slots__ = ("dyns", "n", "seq0", "pc", "code_addr", "is_branch",
                 "taken", "cid", "gid", "nonpipelined", "n_srcs", "max_pc")

    def __init__(self, dyns: List[DynInst],
                 columns: Dict[str, List]) -> None:
        self.dyns = dyns
        self.n = len(dyns)
        self.seq0 = dyns[0].seq if dyns else 0
        self.pc = columns["pc"]
        self.code_addr = columns["code_addr"]
        self.is_branch = columns["is_branch"]
        self.taken = columns["taken"]
        self.cid = columns["cid"]
        self.gid = columns["gid"]
        self.nonpipelined = columns["nonpipelined"]
        self.n_srcs = columns["n_srcs"]
        self.max_pc = max(self.pc) if self.pc else 0

    def window(self, start: int, stop: Optional[int] = None) -> "TraceArrays":
        """A columnar view of ``trace[start:stop]`` (shared DynInsts)."""
        if stop is None:
            stop = self.n
        columns = {
            "pc": self.pc[start:stop],
            "code_addr": self.code_addr[start:stop],
            "is_branch": self.is_branch[start:stop],
            "taken": self.taken[start:stop],
            "cid": self.cid[start:stop],
            "gid": self.gid[start:stop],
            "nonpipelined": self.nonpipelined[start:stop],
            "n_srcs": self.n_srcs[start:stop],
        }
        return TraceArrays(self.dyns[start:stop], columns)


def predecode(trace: Sequence[DynInst]) -> TraceArrays:
    """Predecode *trace* into :class:`TraceArrays` for the kernel engine.

    The trace must be sequence-contiguous (executor traces always are):
    the kernel indexes its scoreboard and event heap by ``seq - seq0``.
    """
    dyns = trace if isinstance(trace, list) else list(trace)
    if dyns and dyns[-1].seq - dyns[0].seq != len(dyns) - 1:
        raise ValueError("kernel engine requires a contiguous trace "
                         f"(seq {dyns[0].seq}..{dyns[-1].seq} over "
                         f"{len(dyns)} instructions)")
    return TraceArrays(dyns, predecode_columns(dyns))


class KernelPipeline(Pipeline):
    """The struct-of-arrays engine behind ``SimConfig(engine="kernel")``.

    Construction mirrors :class:`~repro.core.pipeline.Pipeline` (the
    collaborators, policy resolution and structural sizing are
    inherited), plus an optional pre-built ``arrays=`` so batch callers
    predecode once.  :meth:`run` replaces the reference tick loop with
    the fully-inlined columnar loop.
    """

    def __init__(self, trace: Sequence[DynInst],
                 params: Optional[CoreParams] = None,
                 ltp: Optional[LTPConfig] = None,
                 controller: Optional[LTPController] = None,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 branch_predictor: Optional[GsharePredictor] = None,
                 warm_code: bool = True,
                 allow_skip: bool = True,
                 policy=None,
                 arrays: Optional[TraceArrays] = None) -> None:
        if arrays is None:
            arrays = predecode(trace)
        elif arrays.n != len(trace) or (
                arrays.n and arrays.seq0 != trace[0].seq):
            raise ValueError("arrays= does not match the trace window")
        self.arrays = arrays
        # the base constructor owns policy resolution, structure sizing
        # and hot-path bindings; code warming is replayed here from the
        # predecoded max_pc instead of a per-instruction scan
        super().__init__(trace, params=params, ltp=ltp,
                         controller=controller, hierarchy=hierarchy,
                         branch_predictor=branch_predictor,
                         warm_code=False, allow_skip=allow_skip,
                         policy=policy)
        if warm_code and arrays.n:
            hier = self.hierarchy
            for block in range(CODE_BASE >> 6,
                               ((CODE_BASE + arrays.max_pc * INST_BYTES)
                                >> 6) + 1):
                hier.l1i.insert(block)
                hier.l2.insert(block)
                hier.l3.insert(block)

    # ------------------------------------------------------------------
    def _kernel_deadlock(self, now: int, iq_len: int,
                         frontend_len: int) -> None:
        from repro.core.pipeline import SimulationDeadlock
        head = self.rob.head()
        raise SimulationDeadlock(
            f"no progress at cycle {now}: rob={len(self.rob)} "
            f"iq={iq_len} policy={self.policy.name!r} "
            f"parked={len(self.policy.queue)} "
            f"frontend={frontend_len} head={head!r} "
            f"free_int={self.regfile.free('int')} "
            f"free_fp={self.regfile.free('fp')} "
            f"lq={self.lsq.lq_used} sq={self.lsq.sq_used}"
        )

    # ------------------------------------------------------------------
    def run(self) -> SimStats:
        """Simulate to completion with the cyclic collector suspended.

        The hot loop allocates one :class:`InFlightInst` per rename
        attempt and links records into producer/consumer cycles; letting
        generational GC scan those mid-run costs >10% wall time for zero
        reclamation (records stay reachable until the window drains).
        Collection resumes — and the cycles are reclaimed — on return.
        """
        gc_enabled = _gc.isenabled()
        if gc_enabled:
            _gc.disable()
        try:
            return self._run_loop()
        finally:
            if gc_enabled:
                _gc.enable()

    def _run_loop(self) -> SimStats:  # noqa: C901 - one hot frame
        arrays = self.arrays
        n = arrays.n
        params = self.params
        policy = self.policy
        stats = self.stats
        hierarchy = self.hierarchy
        lsq = self.lsq
        allow_skip = self.allow_skip

        # ---- columnar trace state -----------------------------------
        dyns = arrays.dyns
        seq0 = arrays.seq0
        col_pc = arrays.pc
        col_code_addr = arrays.code_addr
        col_is_branch = arrays.is_branch
        col_taken = arrays.taken
        col_cid = arrays.cid
        col_gid = arrays.gid
        col_nonpipelined = arrays.nonpipelined
        col_n_srcs = arrays.n_srcs

        # ---- per-run tables indexed by dense ids --------------------
        latencies = params.latencies
        default_latency = latencies["int_alu"]
        lat_table = [latencies.get(op.value, default_latency)
                     for op in OpClass]
        lat_agu = latencies["agu"]
        lat_store = latencies["store"]
        lat_forward = latencies["forward"]
        n_groups = len(FU_GROUPS)
        fu_counts = [params.fu_counts.get(group, 1) for group in FU_GROUPS]
        fu_busy = [0] * n_groups
        fu_used = [0] * n_groups
        fu_zero = (0,) * n_groups

        # ---- machine parameters -------------------------------------
        fetch_width = params.fetch_width
        rename_width = params.rename_width
        issue_width = params.issue_width
        writeback_width = params.writeback_width
        commit_width = params.commit_width
        frontend_depth = params.frontend_depth
        frontend_cap = self._frontend_cap
        mispredict_penalty = params.mispredict_penalty
        violation_penalty = params.violation_penalty
        deadlock_cycles = params.deadlock_cycles
        dram_wakeup_lead = params.mem.dram_wakeup_lead

        # ---- flat machine state (all locals) ------------------------
        SHIFT = 2 * n if n else 2
        events: List[int] = []          # cycle*SHIFT + rel*2 + kind
        records: List[Optional[InFlightInst]] = [None] * n
        ready_heap: List[int] = []      # rel indices; oldest == smallest
        fe_ready: List[int] = []        # frontend FIFO: ready cycle
        fe_idx: List[int] = []          # frontend FIFO: trace index
        fe_head = 0
        fe_len = 0                      # == len(fe_ready), kept in step
        trace_idx = 0
        now = 0
        fetch_stall_until = 0
        fetch_blocked_on: Optional[int] = None
        commit_stall_until = 0
        last_commit_cycle = 0
        ll_seqs: List[int] = []
        open_loads: Dict[int, List[InFlightInst]] = {}
        parked_store_pcs: Dict[int, int] = {}
        picked: List[int] = []
        deferred: List[int] = []

        # ---- shared structures, pre-bound ---------------------------
        # occupancy counters the loop alone mutates are mirrored into
        # plain locals (rob_len, lq_used, rfi_free/rff_free) and flushed
        # back into the shared structures on exit / before deadlock
        rob_entries = self._rob_entries
        rob_capacity = self.rob.capacity
        rob_pop = rob_entries.popleft
        rob_append = rob_entries.append
        rob_len = len(rob_entries)
        iq_capacity = self.iq.capacity
        iq_occ = 0
        rf_free = self._rf_free
        rfi_free = rf_free["int"]
        rff_free = rf_free["fp"]
        rf_need = self._rf_need
        lsq_need = self._lsq_need
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        lq_used = lsq.lq_used
        stores_dict = lsq._stores
        rf_cap_int = self._rf_cap_int
        rf_cap_fp = self._rf_cap_fp

        advance = hierarchy.advance
        hier_events = hierarchy._outstanding_events
        mshr_expiry = hierarchy.mshrs._expiry
        access_inst = hierarchy.access_inst
        access_data = hierarchy.access_data
        commit_store = hierarchy.commit_store
        bpred_update = self.bpred.predict_and_update
        older_store_state = lsq.older_store_state
        allocate_store = lsq.allocate_store
        release_store = lsq.release_store
        predicted_stores = self.memdep.predicted_stores
        must_wait = self.memdep.must_wait
        train_violation = self.memdep.train_violation

        # ---- policy seam (pre-bound attributes) ---------------------
        observe_rename = policy.observe_rename
        may_allocate = policy.may_allocate
        policy_park = policy.park
        on_release_scan = policy.on_release_scan
        policy_release = policy.release
        policy_tag = policy.on_tag_known
        policy_next_event = policy.next_event_cycle
        policy_violation = policy.on_violation
        policy_dram = policy.on_dram_demand_access
        queue = policy.queue
        ltp_entries = queue._entries
        release_ports = self._release_ports
        park_loads = self._park_loads
        park_stores = self._park_stores
        defer_registers = self._defer_registers
        monitor = self._monitor
        monitor_off = self._monitor_off
        monitor_auto = self._monitor_auto

        # hooks statically known to be no-ops are skipped; the gates
        # replicate the hook bodies' own guards, so the sequence of
        # *effective* calls is unchanged (bit-identity contract above)
        is_ltp = isinstance(policy, LTPPolicy)
        skip_may_allocate = (is_ltp
                             and not policy.controller.config.enabled)
        # a disabled LTP controller's rename/decide path never reads
        # producer_records (no ticket inheritance, no parked-bit scan),
        # so failed rename attempts need not build the producer tuple —
        # it is deferred to dependence registration on success
        defer_producers = skip_may_allocate
        # same reasoning one step further: a failed attempt's record is
        # discarded unread, so with a disabled controller the capacity
        # checks (side-effect free) run first and a stalling attempt
        # replays only its observable work via the controller probe
        observe_probe = (policy.controller.observe_attempt
                         if skip_may_allocate else None)
        policy_commit = policy.on_commit
        if is_ltp:
            # LTPController.on_commit acts only on long-latency loads
            commit_always = False
            commit_ll_only = True
        elif (type(policy).on_commit is AllocationPolicy.on_commit
                and "on_commit" not in policy.__dict__):
            commit_always = commit_ll_only = False
        else:
            commit_always = True
            commit_ll_only = False
        if is_ltp:
            # LTPController.on_load_complete acts only with a predictor
            load_hook = (policy.on_load_complete
                         if policy.controller.predictor is not None
                         else None)
        elif (type(policy).on_load_complete
                is AllocationPolicy.on_load_complete
                and "on_load_complete" not in policy.__dict__):
            load_hook = None
        else:
            load_hook = policy.on_load_complete

        # ---- local statistics counters ------------------------------
        s_fetched = s_renamed = s_issued = s_committed = 0
        s_committed_loads = s_committed_stores = s_committed_branches = 0
        s_mispredicts = s_violations = 0
        s_ltp_parked = s_ltp_released = s_ltp_forced = 0
        s_enabled_cycles = 0
        s_urgent = s_non_urgent = s_non_ready = 0
        s_ll_loads = 0
        s_stall_rob = s_stall_iq = s_stall_regs = s_stall_lsq = 0
        s_stall_ltp_full = s_stall_frontend = 0
        s_iq_writes = s_rf_reads = s_rf_writes = 0
        s_ltp_writes = s_ltp_reads = 0
        o_rob_i = o_rob_p = o_iq_i = o_iq_p = 0
        o_lq_i = o_lq_p = o_sq_i = o_sq_p = 0
        o_rfi_i = o_rfi_p = o_rff_i = o_rff_p = 0
        o_ltp_i = o_ltp_p = o_lregs_i = o_lregs_p = 0
        o_lloads_i = o_lloads_p = o_lstores_i = o_lstores_p = 0

        # =============================================================
        # main loop — one tick per iteration, stages in reference order
        # =============================================================
        while trace_idx < n or fe_head < fe_len or rob_len:
            # hierarchy.advance with its empty fast path inlined: with no
            # outstanding past-L2 completions (the heap sizes track the
            # counters exactly) and no MSHR expiries, advancing reduces
            # to moving the integration clock forward by zero area
            if hier_events or mshr_expiry:
                advance(now)
            elif now > hierarchy._last_advance_cycle:
                hierarchy._last_advance_cycle = now
            now_limit = (now + 1) * SHIFT

            # ---- writeback (completion + tag events due now) --------
            progress = False
            if events and events[0] < now_limit:
                completed = 0
                while events and events[0] < now_limit:
                    ev = events[0]
                    rem = ev % SHIFT
                    if not (rem & 1) and completed >= writeback_width:
                        break
                    _heappop(events)
                    record = records[rem >> 1]
                    if rem & 1:  # tag-known event
                        policy_tag(record)
                        progress = True
                        continue
                    completed += 1
                    progress = True
                    record.done = True
                    if record.has_dst:
                        s_rf_writes += 1
                    for consumer in record.consumers:
                        waiting = consumer.waiting_on - 1
                        consumer.waiting_on = waiting
                        if waiting == 0 and consumer.in_iq:
                            _heappush(ready_heap, consumer.seq - seq0)
                    if record.ll_listed:
                        record.ll_listed = False
                        del ll_seqs[ll_seqs.index(record.seq)]
                    if record.own_ticket is not None:
                        policy_tag(record)
                    if record.is_load and load_hook is not None:
                        load_hook(record, record.actual_ll)
                    if record.seq == fetch_blocked_on:
                        fetch_blocked_on = None
                        fetch_stall_until = now + mispredict_penalty

            # ---- commit ---------------------------------------------
            if now >= commit_stall_until and rob_len:
                head = rob_entries[0]
                if head.done:
                    committed = 0
                    while committed < commit_width:
                        rob_pop()
                        rob_len -= 1
                        dyn = head.dyn
                        if head.has_dst:
                            if head.rf_class == "int":
                                rfi_free += 1
                            else:
                                rff_free += 1
                        if head.is_load:
                            lq_used -= 1
                            word = dyn.addr & _WORD_MASK
                            entries = open_loads.get(word)
                            if entries:
                                try:
                                    entries.remove(head)
                                except ValueError:
                                    pass
                                if not entries:
                                    del open_loads[word]
                            s_committed_loads += 1
                        elif head.is_store:
                            commit_store(dyn.addr)
                            release_store(dyn.seq)
                            s_committed_stores += 1
                        elif dyn.is_branch:
                            s_committed_branches += 1
                        if commit_always:
                            policy_commit(head)
                        elif (commit_ll_only and head.actual_ll
                                and head.is_load):
                            policy_commit(head)
                        committed += 1
                        s_committed += 1
                        if not rob_len:
                            break
                        head = rob_entries[0]
                        if not head.done:
                            break
                    last_commit_cycle = now
                    progress = True

            # ---- parked release (wakeup) ----------------------------
            release_pending = False
            if ltp_entries:
                boundary = (ll_seqs[1] if len(ll_seqs) >= 2
                            else NO_BOUNDARY)
                if rob_len:
                    head_rec = rob_entries[0]
                    force_seq = head_rec.seq if head_rec.parked else -1
                else:
                    force_seq = -1
                released = 0
                while released < release_ports:
                    candidates = on_release_scan(now, boundary,
                                                 force_seq, 1)
                    if not candidates:
                        break
                    record = candidates[0]
                    if iq_occ >= iq_capacity:
                        break
                    rf_class = record.rf_class
                    if (rf_class is not None and not record.rf_allocated
                            and (rfi_free if rf_class == "int"
                                 else rff_free) < 1):
                        break
                    if (record.is_load and not record.lq_allocated
                            and lq_used >= lq_capacity):
                        break
                    if (record.is_store and not record.sq_allocated
                            and len(stores_dict) >= sq_capacity):
                        break
                    policy_release(record)
                    if rf_class is not None and not record.rf_allocated:
                        if rf_class == "int":
                            rfi_free -= 1
                        else:
                            rff_free -= 1
                        record.rf_allocated = True
                    if record.is_load and not record.lq_allocated:
                        lq_used += 1
                        record.lq_allocated = True
                    dyn = record.dyn
                    if record.is_store:
                        if not record.sq_allocated:
                            allocate_store(dyn.seq, dyn.pc)
                            record.sq_allocated = True
                        count = parked_store_pcs.get(dyn.pc, 0)
                        if count <= 1:
                            parked_store_pcs.pop(dyn.pc, None)
                        else:
                            parked_store_pcs[dyn.pc] = count - 1
                    record.release_cycle = now
                    iq_occ += 1
                    record.in_iq = True
                    if record.waiting_on == 0:
                        _heappush(ready_heap, record.seq - seq0)
                    s_ltp_released += 1
                    s_ltp_reads += 1
                    s_iq_writes += 1
                    released += 1
                    if record.forced_release:
                        s_ltp_forced += 1
                if released >= release_ports:
                    release_pending = bool(on_release_scan(
                        now, boundary, force_seq, 1))
                if released:
                    progress = True

            # ---- rename / dispatch / park ---------------------------
            if fe_head < fe_len:
                renamed = 0
                while renamed < rename_width:
                    if fe_head >= fe_len:
                        break
                    if fe_ready[fe_head] > now:
                        break
                    if rob_len >= rob_capacity:
                        if renamed == 0:
                            s_stall_rob += 1
                        break
                    dyn = dyns[fe_idx[fe_head]]
                    if skip_may_allocate:
                        # probe-first: same checks the dispatch branch
                        # performs below, hoisted above the record
                        # construction they would discard
                        stall = 0
                        if iq_occ >= iq_capacity:
                            stall = 1
                        else:
                            rf_class = dyn.rf_class
                            if (rf_class is not None
                                    and (rfi_free if rf_class == "int"
                                         else rff_free) < rf_need):
                                stall = 2
                            elif ((dyn.is_load and lq_used + lsq_need
                                   > lq_capacity)
                                  or (dyn.is_store
                                      and len(stores_dict) + lsq_need
                                      > sq_capacity)):
                                stall = 3
                        if stall:
                            if observe_probe(dyn):
                                s_urgent += 1
                            else:
                                s_non_urgent += 1
                            if renamed == 0:
                                if stall == 1:
                                    s_stall_iq += 1
                                elif stall == 2:
                                    s_stall_regs += 1
                                else:
                                    s_stall_lsq += 1
                            break
                    # one fresh record per rename *attempt* (ticket-pool
                    # accounting depends on it; see module docstring)
                    record = InFlightInst(dyn)
                    if not defer_producers:
                        src_producers = dyn.src_producers
                        n_producers = len(src_producers)
                        if n_producers == 1:
                            p0 = src_producers[0]
                            record.producer_records = (
                                records[p0 - seq0] if p0 >= seq0
                                else None,)
                        elif n_producers == 2:
                            p0, p1 = src_producers
                            record.producer_records = (
                                records[p0 - seq0] if p0 >= seq0 else None,
                                records[p1 - seq0] if p1 >= seq0
                                else None)
                        elif n_producers:
                            record.producer_records = tuple(
                                records[p - seq0] if p >= seq0 else None
                                for p in src_producers)

                    observe_rename(record)
                    if record.urgent:
                        s_urgent += 1
                    else:
                        s_non_urgent += 1
                    if record.non_ready:
                        s_non_ready += 1

                    memdep_forced = False
                    if record.is_load and parked_store_pcs:
                        for store_pc in predicted_stores(dyn.pc):
                            if parked_store_pcs.get(store_pc):
                                memdep_forced = True
                                break

                    if skip_may_allocate:
                        decision = "dispatch"
                    else:
                        decision = may_allocate(record, now, memdep_forced)
                    if decision == "stall":
                        if renamed == 0:
                            s_stall_ltp_full += 1
                        break

                    if decision == "park":
                        park_ok = True
                        if record.is_load and not park_loads:
                            if lq_used + lsq_need > lq_capacity:
                                park_ok = False
                        if park_ok and record.is_store and not park_stores:
                            if len(stores_dict) + lsq_need > sq_capacity:
                                park_ok = False
                        if (park_ok and not defer_registers
                                and record.rf_class is not None):
                            if (rfi_free if record.rf_class == "int"
                                    else rff_free) < rf_need:
                                park_ok = False
                        if not park_ok:
                            if renamed == 0:
                                s_stall_lsq += 1
                            break
                        if record.is_load and not park_loads:
                            lq_used += 1
                            record.lq_allocated = True
                        if record.is_store and not park_stores:
                            allocate_store(dyn.seq, dyn.pc)
                            record.sq_allocated = True
                        if (not defer_registers
                                and record.rf_class is not None):
                            if record.rf_class == "int":
                                rfi_free -= 1
                            else:
                                rff_free -= 1
                            record.rf_allocated = True
                        rob_append(record)
                        rob_len += 1
                        policy_park(record)
                        s_ltp_parked += 1
                        s_ltp_writes += 1
                        if record.is_store:
                            pc = dyn.pc
                            parked_store_pcs[pc] = (
                                parked_store_pcs.get(pc, 0) + 1)
                    else:
                        rf_class = record.rf_class
                        if not skip_may_allocate:
                            # (the skip path already ran these checks
                            # in the probe above)
                            if iq_occ >= iq_capacity:
                                if renamed == 0:
                                    s_stall_iq += 1
                                break
                            if (rf_class is not None
                                    and (rfi_free if rf_class == "int"
                                         else rff_free) < rf_need):
                                if renamed == 0:
                                    s_stall_regs += 1
                                break
                            if (record.is_load
                                    and lq_used + lsq_need > lq_capacity):
                                if renamed == 0:
                                    s_stall_lsq += 1
                                break
                            if (record.is_store
                                    and len(stores_dict) + lsq_need
                                    > sq_capacity):
                                if renamed == 0:
                                    s_stall_lsq += 1
                                break
                        if rf_class is not None:
                            if rf_class == "int":
                                rfi_free -= 1
                            else:
                                rff_free -= 1
                            record.rf_allocated = True
                        if record.is_load:
                            lq_used += 1
                            record.lq_allocated = True
                        if record.is_store:
                            allocate_store(dyn.seq, dyn.pc)
                            record.sq_allocated = True
                        rob_append(record)
                        rob_len += 1
                        iq_occ += 1
                        record.in_iq = True
                        # IQ insert: waiting_on is 0 until dependences
                        # are registered below, exactly as the reference
                        _heappush(ready_heap, dyn.seq - seq0)
                        s_iq_writes += 1

                    fe_head += 1
                    if fe_head > 64:
                        del fe_ready[:fe_head]
                        del fe_idx[:fe_head]
                        fe_head = 0
                        fe_len = len(fe_ready)
                    rel = dyn.seq - seq0
                    records[rel] = record
                    if defer_producers:
                        src_producers = dyn.src_producers
                        n_producers = len(src_producers)
                        if n_producers == 1:
                            p0 = src_producers[0]
                            record.producer_records = (
                                records[p0 - seq0] if p0 >= seq0
                                else None,)
                        elif n_producers == 2:
                            p0, p1 = src_producers
                            record.producer_records = (
                                records[p0 - seq0] if p0 >= seq0 else None,
                                records[p1 - seq0] if p1 >= seq0
                                else None)
                        elif n_producers:
                            record.producer_records = tuple(
                                records[p - seq0] if p >= seq0 else None
                                for p in src_producers)
                    waiting = 0
                    for producer in record.producer_records:
                        if producer is not None and not producer.done:
                            consumers = producer.consumers
                            if consumers:
                                consumers.append(record)
                            else:
                                producer.consumers = [record]
                            waiting += 1
                    record.waiting_on = waiting
                    if waiting == 0 and record.in_iq:
                        _heappush(ready_heap, rel)
                    record.rename_cycle = now
                    if record.predicted_ll and not record.ll_listed:
                        record.ll_listed = True
                        insort(ll_seqs, record.seq)
                    renamed += 1
                    s_renamed += 1
                if renamed:
                    progress = True

            # ---- issue / execute ------------------------------------
            if ready_heap:
                fu_used[:] = fu_zero
                del picked[:]
                del deferred[:]
                n_picked = 0
                while ready_heap and n_picked < issue_width:
                    rel = _heappop(ready_heap)
                    record = records[rel]
                    if record.issued or not record.in_iq:
                        continue  # stale heap entry
                    if record.waiting_on != 0:
                        continue  # stale: re-blocked before selection
                    gid = col_gid[rel]
                    used = fu_used[gid]
                    if used >= fu_counts[gid]:
                        deferred.append(rel)
                        continue
                    if col_nonpipelined[rel] and now < fu_busy[gid]:
                        deferred.append(rel)
                        continue
                    dyn = record.dyn
                    if record.is_load:
                        addr = dyn.addr
                        if stores_dict:
                            state, entry = older_store_state(
                                dyn.seq, addr, now)
                        else:
                            state = "clear"
                        if state == "forward":
                            completion = now + lat_agu + lat_forward
                            record.mem_level = "forward"
                            record.completion_cycle = completion
                            enc = completion * SHIFT + rel * 2
                            _heappush(events, enc)
                            if record.own_ticket is not None:
                                _heappush(events, enc + 1)
                            word = addr & _WORD_MASK
                            lst = open_loads.get(word)
                            if lst is None:
                                open_loads[word] = [record]
                            else:
                                lst.append(record)
                        else:
                            if state == "unknown" and must_wait(
                                    dyn.pc, entry.pc):
                                deferred.append(rel)
                                continue  # wait for the store's address
                            result = access_data(addr, now + lat_agu,
                                                 False, dyn.pc)
                            if result is None:
                                deferred.append(rel)
                                continue  # MSHRs full; retry
                            level = result.level
                            record.mem_level = level
                            long_latency = (level == "l3"
                                            or level == "dram")
                            record.actual_ll = long_latency
                            if long_latency:
                                s_ll_loads += 1
                                if not record.ll_listed:
                                    record.ll_listed = True
                                    insort(ll_seqs, record.seq)
                            if level == "dram":
                                policy_dram(now)
                            completion = result.complete_cycle
                            record.completion_cycle = completion
                            _heappush(events,
                                      completion * SHIFT + rel * 2)
                            if record.own_ticket is not None:
                                tag_cycle = result.tag_known_cycle
                                if completion < tag_cycle:
                                    tag_cycle = completion
                                _heappush(events,
                                          tag_cycle * SHIFT + rel * 2 + 1)
                            word = addr & _WORD_MASK
                            lst = open_loads.get(word)
                            if lst is None:
                                open_loads[word] = [record]
                            else:
                                lst.append(record)
                    elif record.is_store:
                        addr = dyn.addr
                        resolve_cycle = now + lat_agu
                        word = addr & _WORD_MASK
                        entry = stores_dict[dyn.seq]
                        entry.addr = word
                        entry.data_ready_cycle = resolve_cycle
                        open_list = open_loads.get(word)
                        if open_list:
                            seq = dyn.seq
                            for load in open_list:
                                if (load.seq > seq
                                        and load.issue_cycle is not None):
                                    s_violations += 1
                                    stall = (resolve_cycle
                                             + violation_penalty)
                                    if stall > commit_stall_until:
                                        commit_stall_until = stall
                                    train_violation(load.dyn.pc, dyn.pc)
                                    policy_violation(load.dyn.pc, dyn.pc)
                        completion = resolve_cycle + lat_store
                        record.completion_cycle = completion
                        _heappush(events, completion * SHIFT + rel * 2)
                    else:
                        latency = lat_table[col_cid[rel]]
                        completion = now + latency
                        if col_nonpipelined[rel]:
                            fu_busy[gid] = completion
                            if record.own_ticket is not None:
                                lead = dram_wakeup_lead
                                if latency < lead:
                                    lead = latency
                                _heappush(events,
                                          (completion - lead) * SHIFT
                                          + rel * 2 + 1)
                        record.completion_cycle = completion
                        _heappush(events, completion * SHIFT + rel * 2)
                    fu_used[gid] = used + 1
                    record.issued = True
                    record.in_iq = False
                    iq_occ -= 1
                    picked.append(rel)
                    n_picked += 1
                for rel in deferred:
                    _heappush(ready_heap, rel)
                if picked:
                    # issue_cycle is stamped after selection, as in the
                    # reference: a store executing this same cycle must
                    # not see loads picked this cycle as "issued"
                    for rel in picked:
                        records[rel].issue_cycle = now
                        s_rf_reads += col_n_srcs[rel]
                    s_issued += n_picked
                    progress = True

            # ---- fetch ----------------------------------------------
            if fetch_blocked_on is not None:
                s_stall_frontend += 1
            elif now >= fetch_stall_until and trace_idx < n:
                if fe_len - fe_head + fetch_width <= frontend_cap:
                    icache = access_inst(col_code_addr[trace_idx], now)
                    if icache.complete_cycle > now + 1:
                        fetch_stall_until = icache.complete_cycle
                    else:
                        fetched = 0
                        ready = now + frontend_depth
                        idx = trace_idx
                        while fetched < fetch_width and idx < n:
                            fe_ready.append(ready)
                            fe_idx.append(idx)
                            fetched += 1
                            s_fetched += 1
                            j = idx
                            idx += 1
                            if col_is_branch[j]:
                                if not bpred_update(col_pc[j],
                                                    col_taken[j]):
                                    s_mispredicts += 1
                                    fetch_blocked_on = seq0 + j
                                    break
                            elif col_taken[j]:
                                break  # taken jump ends the fetch group
                        trace_idx = idx
                        if fetched:
                            fe_len += fetched
                            progress = True

            # ---- imminent check / idle skip -------------------------
            if progress or release_pending:
                imminent = True
            else:
                imminent = False
                while ready_heap:
                    record = records[ready_heap[0]]
                    if record.issued or not record.in_iq:
                        _heappop(ready_heap)
                        continue
                    imminent = True
                    break
                if (not imminent and events
                        and events[0] < now_limit + SHIFT):
                    imminent = True
                if (not imminent and fe_head < fe_len
                        and fe_ready[fe_head] <= now + 1):
                    imminent = True

            if imminent:
                step = 1
            else:
                target = events[0] // SHIFT if events else None
                if fe_head < fe_len:
                    c = fe_ready[fe_head]
                    if target is None or c < target:
                        target = c
                if fetch_stall_until > now and fetch_blocked_on is None:
                    if target is None or fetch_stall_until < target:
                        target = fetch_stall_until
                if commit_stall_until > now:
                    if target is None or commit_stall_until < target:
                        target = commit_stall_until
                if monitor_auto:
                    expiry = monitor.expiry
                    if expiry > now and (target is None
                                         or expiry < target):
                        target = expiry
                if ltp_entries:
                    hint = policy_next_event(now)
                    if (hint is not None and hint > now
                            and (target is None or hint < target)):
                        target = hint
                if target is None:
                    if (trace_idx >= n and fe_head >= fe_len
                            and not rob_len):
                        break  # drained between stages; finished
                    lsq.lq_used = lq_used
                    rf_free["int"] = rfi_free
                    rf_free["fp"] = rff_free
                    self._kernel_deadlock(now, iq_occ,
                                          fe_len - fe_head)
                if target <= now:
                    target = now + 1
                step = target - now if allow_skip else 1

            # ---- occupancy integration (exact over the step) --------
            o_rob_i += rob_len * step
            if rob_len > o_rob_p:
                o_rob_p = rob_len
            o_iq_i += iq_occ * step
            if iq_occ > o_iq_p:
                o_iq_p = iq_occ
            o_lq_i += lq_used * step
            if lq_used > o_lq_p:
                o_lq_p = lq_used
            level = len(stores_dict)
            o_sq_i += level * step
            if level > o_sq_p:
                o_sq_p = level
            level = rf_cap_int - rfi_free
            o_rfi_i += level * step
            if level > o_rfi_p:
                o_rfi_p = level
            level = rf_cap_fp - rff_free
            o_rff_i += level * step
            if level > o_rff_p:
                o_rff_p = level
            if ltp_entries:
                level = len(ltp_entries)
                o_ltp_i += level * step
                if level > o_ltp_p:
                    o_ltp_p = level
                level = queue.parked_with_dst
                o_lregs_i += level * step
                if level > o_lregs_p:
                    o_lregs_p = level
                level = queue.parked_loads
                o_lloads_i += level * step
                if level > o_lloads_p:
                    o_lloads_p = level
                level = queue.parked_stores
                o_lstores_i += level * step
                if level > o_lstores_p:
                    o_lstores_p = level
            if not monitor_off:
                s_enabled_cycles += monitor.enabled_span(now, now + step)

            now += step
            if now - last_commit_cycle > deadlock_cycles:
                lsq.lq_used = lq_used
                rf_free["int"] = rfi_free
                rf_free["fp"] = rff_free
                self._kernel_deadlock(now - step, iq_occ,
                                      fe_len - fe_head)

        # =============================================================
        # flush locals into the shared statistics / structures
        # =============================================================
        self.cycle = now
        self.iq.occupancy = iq_occ
        lsq.lq_used = lq_used
        rf_free["int"] = rfi_free
        rf_free["fp"] = rff_free
        self._last_commit_cycle = last_commit_cycle
        self._commit_stall_until = commit_stall_until
        self._fetch_stall_until = fetch_stall_until
        stats.cycles = now
        stats.fetched = s_fetched
        stats.renamed = s_renamed
        stats.issued = s_issued
        stats.committed = s_committed
        stats.committed_loads = s_committed_loads
        stats.committed_stores = s_committed_stores
        stats.committed_branches = s_committed_branches
        stats.branch_mispredicts = s_mispredicts
        stats.memory_violations = s_violations
        stats.ltp_parked = s_ltp_parked
        stats.ltp_released = s_ltp_released
        stats.ltp_forced_releases = s_ltp_forced
        stats.ltp_enabled_cycles = s_enabled_cycles
        stats.classified_urgent = s_urgent
        stats.classified_non_urgent = s_non_urgent
        stats.classified_non_ready = s_non_ready
        stats.long_latency_loads = s_ll_loads
        stats.stall_rob = s_stall_rob
        stats.stall_iq = s_stall_iq
        stats.stall_regs = s_stall_regs
        stats.stall_lsq = s_stall_lsq
        stats.stall_ltp_full = s_stall_ltp_full
        stats.stall_frontend = s_stall_frontend
        stats.iq_writes = s_iq_writes
        stats.rf_reads = s_rf_reads
        stats.rf_writes = s_rf_writes
        stats.ltp_writes = s_ltp_writes
        stats.ltp_reads = s_ltp_reads
        occ = stats.occupancies
        o = occ["rob"]
        o.integral, o.peak = o_rob_i, o_rob_p
        o = occ["iq"]
        o.integral, o.peak = o_iq_i, o_iq_p
        o = occ["lq"]
        o.integral, o.peak = o_lq_i, o_lq_p
        o = occ["sq"]
        o.integral, o.peak = o_sq_i, o_sq_p
        o = occ["rf_int"]
        o.integral, o.peak = o_rfi_i, o_rfi_p
        o = occ["rf_fp"]
        o.integral, o.peak = o_rff_i, o_rff_p
        o = occ["ltp"]
        o.integral, o.peak = o_ltp_i, o_ltp_p
        o = occ["ltp_regs"]
        o.integral, o.peak = o_lregs_i, o_lregs_p
        o = occ["ltp_loads"]
        o.integral, o.peak = o_lloads_i, o_lloads_p
        o = occ["ltp_stores"]
        o.integral, o.peak = o_lstores_i, o_lstores_p
        self._export_activity()
        return stats


def simulate_batch(trace: Sequence[DynInst],
                   runs: Iterable[Dict[str, Any]],
                   arrays: Optional[TraceArrays] = None) -> List[SimStats]:
    """Run N configurations against one predecoded trace.

    *runs* is an iterable of keyword-argument dicts for
    :class:`KernelPipeline` (``params=``, ``ltp=``, ``policy=``,
    ``allow_skip=``, ...).  The trace is predecoded exactly once (or
    not at all when *arrays* is passed); each run still builds fresh
    collaborators unless its kwargs supply them, so results match N
    independent single runs bit-for-bit.
    """
    if arrays is None:
        arrays = predecode(trace)
    return [KernelPipeline(trace, arrays=arrays, **kwargs).run()
            for kwargs in runs]
