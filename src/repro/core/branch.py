"""Branch direction predictor: gshare with a global history register.

The trace-driven pipeline knows every branch's actual direction, so the
predictor's only job is deciding *whether the front end would have been
redirected* — a mispredict stalls fetch until the branch resolves plus a
refill penalty.  Targets come from the trace (a perfect BTB), which is
the standard trace-driven simplification.
"""

from __future__ import annotations


class GsharePredictor:
    """Classic gshare: PC xor global-history indexes 2-bit counters."""

    def __init__(self, history_bits: int = 12) -> None:
        if not 1 <= history_bits <= 24:
            raise ValueError("history_bits must be in [1, 24]")
        self.history_bits = history_bits
        self.table_size = 1 << history_bits
        self._counters = bytearray([2] * self.table_size)  # weakly taken
        self._history = 0
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & (self.table_size - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at *pc*; train with the actual outcome.

        Returns True when the prediction was correct.
        """
        self.lookups += 1
        index = self._index(pc)
        counter = self._counters[index]
        prediction = counter >= 2
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & (
            self.table_size - 1)
        correct = prediction == taken
        if not correct:
            self.mispredicts += 1
        return correct

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups
