"""Simulation statistics: counters plus exact time-weighted occupancies.

Occupancy accumulators integrate a level over simulated time, which stays
exact even when the pipeline jumps over idle cycles: the pipeline calls
:meth:`SimStats.accumulate` once per time step with the step's width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Occupancy:
    """Time-weighted average of one structure's occupancy."""

    integral: int = 0
    peak: int = 0

    def add(self, level: int, cycles: int = 1) -> None:
        self.integral += level * cycles
        if level > self.peak:
            self.peak = level

    def average(self, total_cycles: int) -> float:
        if total_cycles <= 0:
            return 0.0
        return self.integral / total_cycles


@dataclass
class SimStats:
    """All statistics produced by one simulation run."""

    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    fetched: int = 0
    renamed: int = 0
    issued: int = 0

    branch_mispredicts: int = 0
    memory_violations: int = 0

    ltp_parked: int = 0
    ltp_released: int = 0
    ltp_forced_releases: int = 0
    ltp_enabled_cycles: int = 0
    ltp_park_stalls: int = 0

    # classification tallies (at rename)
    classified_urgent: int = 0
    classified_non_urgent: int = 0
    classified_non_ready: int = 0

    long_latency_loads: int = 0

    # stall attribution (cycles where rename made no progress, by cause)
    stall_rob: int = 0
    stall_iq: int = 0
    stall_regs: int = 0
    stall_lsq: int = 0
    stall_ltp_full: int = 0
    stall_frontend: int = 0

    occupancies: Dict[str, Occupancy] = field(default_factory=lambda: {
        name: Occupancy() for name in
        ("rob", "iq", "lq", "sq", "rf_int", "rf_fp",
         "ltp", "ltp_regs", "ltp_loads", "ltp_stores")
    })

    # raw activity counts for the energy model
    iq_writes: int = 0
    iq_issues: int = 0
    rf_reads: int = 0
    rf_writes: int = 0
    ltp_writes: int = 0
    ltp_reads: int = 0
    uit_lookups: int = 0
    uit_inserts: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    def accumulate(self, levels: Dict[str, int], cycles: int = 1) -> None:
        """Integrate occupancy *levels* over *cycles* time steps."""
        occupancies = self.occupancies
        for name, level in levels.items():
            occupancies[name].add(level, cycles)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def ltp_enabled_fraction(self) -> float:
        return self.ltp_enabled_cycles / self.cycles if self.cycles else 0.0

    def average_occupancy(self, name: str) -> float:
        return self.occupancies[name].average(self.cycles)

    def occupancy_integrals(self) -> Dict[str, int]:
        """Exact per-structure time integrals (strict equivalence tests)."""
        return {name: occ.integral for name, occ in self.occupancies.items()}

    def equivalence_signature(self) -> Dict[str, float]:
        """The execution-mode-invariant statistics.

        Everything here must be bit-identical across strict
        (``allow_skip=False``) and idle-jumping execution, and across
        the pre-decoded and reference issue paths.  Per-*attempt*
        counters (stall attribution, classification tallies, UIT
        activity) are deliberately excluded: strict mode retries blocked
        rename attempts every cycle that idle-jumping elides, so those
        counters legitimately differ between modes.
        """
        sig: Dict[str, float] = {}
        for key in ("cycles", "committed", "committed_loads",
                    "committed_stores", "committed_branches", "fetched",
                    "renamed", "issued", "branch_mispredicts",
                    "memory_violations", "ltp_parked", "ltp_released",
                    "ltp_enabled_cycles", "long_latency_loads",
                    "iq_writes", "rf_reads", "rf_writes",
                    "ltp_writes", "ltp_reads"):
            sig[key] = getattr(self, key)
        sig["ipc"] = self.ipc
        for name, occ in self.occupancies.items():
            sig[f"integral_{name}"] = occ.integral
            sig[f"peak_{name}"] = occ.peak
        return sig

    def as_dict(self) -> Dict[str, float]:
        """Flatten to a plain dict (for caching / reports)."""
        out: Dict[str, float] = {}
        for key in ("cycles", "committed", "committed_loads",
                    "committed_stores", "committed_branches", "fetched",
                    "renamed", "issued", "branch_mispredicts",
                    "memory_violations", "ltp_parked", "ltp_released",
                    "ltp_forced_releases", "ltp_enabled_cycles",
                    "ltp_park_stalls", "classified_urgent",
                    "classified_non_urgent", "classified_non_ready",
                    "long_latency_loads", "stall_rob", "stall_iq",
                    "stall_regs", "stall_lsq", "stall_ltp_full",
                    "stall_frontend", "iq_writes", "iq_issues", "rf_reads",
                    "rf_writes", "ltp_writes", "ltp_reads", "uit_lookups",
                    "uit_inserts"):
            out[key] = getattr(self, key)
        out["ipc"] = self.ipc
        out["cpi"] = self.cpi
        out["ltp_enabled_fraction"] = self.ltp_enabled_fraction
        for name, occ in self.occupancies.items():
            out[f"avg_{name}"] = occ.average(self.cycles)
            out[f"peak_{name}"] = occ.peak
        out.update(self.extra)
        return out
