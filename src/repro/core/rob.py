"""Reorder buffer: bounded FIFO of in-flight instructions.

Every instruction — parked or not — gets a ROB entry at rename so commit
stays in order (Section 3: "they have been allocated an entry in the ROB
to ensure in-order commit").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.core.params import cap


class ROB:
    """Bounded in-order buffer of in-flight instruction records."""

    def __init__(self, size: Optional[int]) -> None:
        self.capacity = cap(size)
        self._entries: Deque = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, record) -> None:
        if self.full:
            raise RuntimeError("ROB overflow")
        self._entries.append(record)

    def head(self):
        return self._entries[0] if self._entries else None

    def pop(self):
        return self._entries.popleft()
