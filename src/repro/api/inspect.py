"""Online sweep QA: the :class:`SweepInspector`.

A long sweep is write-only without it: a silently wrong
:class:`~repro.api.result.SimResult` — a stat-conservation violation
from a miscompiled worker, an IPC outlier from a misconfigured host, a
straggling or dead shard — is otherwise only discoverable after the
run by manual inspection.  The inspector sits on the existing
execution surfaces and validates the sweep *while it runs*:

* as a :data:`~repro.api.exec.ProgressCallback` it watches every
  lifecycle event (:class:`~repro.api.exec.ExecEvent`) for
  **operational alarms** — stragglers (started→finished latency far
  above the sweep's own distribution), a retry rate above threshold,
  and dead shards (submitted work, no events for too long);
* via :meth:`SweepInspector.observe` it validates every **landed
  result** — hard stat-conservation invariants lifted from the
  differential-test assertions (:func:`stat_invariants`) and robust
  per-workload outlier detection over IPC/CPI/energy
  (median + MAD z-score, seeded from prior rows when a store is
  bound, because stored points flow through ``observe`` first).

Confirmed anomalies become :class:`~repro.api.store.Annotation` rows
in the bound :class:`~repro.api.store.ResultStore`.  Data anomalies
(``invariant``, ``outlier``) quarantine their key — the stored result
is suspect, and a resumed ``Session.sweep`` re-simulates exactly the
quarantined points.  Operational alarms (``straggler``,
``retry-rate``, ``dead-shard``) are recorded without quarantine: the
landed data is fine, the fleet is not.

The inspector never touches the simulation loop — it observes the
event stream and landed results, so the hot path's cost profile is
unchanged (the ``bench.py --check`` gate holds).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, List,
                    Optional, Tuple)

from repro.api.exec import (EVENT_ANOMALY, EVENT_CANCELLED, EVENT_FAILED,
                            EVENT_FINISHED, EVENT_RETRIED, EVENT_STARTED,
                            EVENT_SUBMITTED, ExecEvent, ProgressCallback)
from repro.api.result import SimResult
from repro.api.store import Annotation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.store import ResultStore

#: annotation ``check`` values the inspector emits
CHECK_INVARIANT = "invariant"
CHECK_OUTLIER = "outlier"
CHECK_STRAGGLER = "straggler"
CHECK_RETRY_RATE = "retry-rate"
CHECK_DEAD_SHARD = "dead-shard"

#: checks whose anomalies quarantine the key's stored result
QUARANTINE_CHECKS = (CHECK_INVARIANT, CHECK_OUTLIER)

#: MAD -> standard-deviation consistency factor (normal distribution)
_MAD_SCALE = 1.4826


# ----------------------------------------------------------------------
# hard invariants
# ----------------------------------------------------------------------
def stat_invariants(result: SimResult) -> List[str]:
    """Conservation violations in a landed result (empty = clean).

    The checks are lifted from the differential-test assertions
    (``tests/test_policies_differential.py``) and restated over the
    flattened stats dict, tolerant of absent keys so fabricated
    (mock) and historical rows validate too:

    * every numeric statistic is non-negative;
    * the measure window is respected (``0 < committed <= measure``,
      ``cycles >= 1``) and rename conserves (``renamed == committed``);
    * ``ipc``/``cpi`` agree with the committed/cycle accounting;
    * LTP parking conserves (``ltp_parked == ltp_released``);
    * peak occupancies never exceed the configured structure sizes.
    """
    stats = result.stats
    config = result.config
    problems: List[str] = []

    for name, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if value < 0:
            problems.append(f"negative counter {name}={value}")

    cycles = stats.get("cycles")
    committed = stats.get("committed")
    if cycles is not None and cycles < 1:
        problems.append(f"cycles={cycles} < 1")
    if committed is not None:
        if committed <= 0:
            problems.append(f"committed={committed} <= 0")
        elif committed > config.measure:
            problems.append(
                f"committed={committed} exceeds the measure window "
                f"({config.measure})")
        renamed = stats.get("renamed")
        if renamed is not None and renamed != committed:
            problems.append(
                f"renamed={renamed} != committed={committed}")

    if committed and cycles:
        expected_ipc = float(committed) / float(cycles)
        for name, expected in (("ipc", expected_ipc),
                               ("cpi", 1.0 / expected_ipc)):
            value = stats.get(name)
            if value is None:
                continue
            if abs(float(value) - expected) > 1e-6 * max(1.0, expected):
                problems.append(
                    f"{name}={value} inconsistent with "
                    f"committed/cycles ({expected:.6f})")

    parked = stats.get("ltp_parked")
    released = stats.get("ltp_released")
    if parked is not None and released is not None and parked != released:
        problems.append(
            f"ltp_parked={parked} != ltp_released={released}")

    limits: List[Tuple[str, Optional[int]]] = [
        ("rob", config.core.rob_size), ("iq", config.core.iq_size),
        ("lq", config.core.lq_size), ("sq", config.core.sq_size),
        ("ltp", config.ltp.entries)]
    for name, limit in limits:
        peak = stats.get(f"peak_{name}")
        if limit is not None and peak is not None and peak > limit:
            problems.append(f"peak_{name}={peak} exceeds size {limit}")
    return problems


def _metric_values(result: SimResult,
                   metrics: Tuple[str, ...]) -> Dict[str, float]:
    """Extract the baseline metrics present in a result.

    ``"energy"`` is derived through the energy model when the stats
    carry the occupancy averages it consumes; fabricated rows without
    them simply skip the metric.
    """
    values: Dict[str, float] = {}
    for metric in metrics:
        if metric == "energy":
            try:
                from repro.energy.model import compute_energy
                values[metric] = compute_energy(
                    result.config.core, result.config.ltp, result.stats,
                    policy=result.config.policy).total
            except Exception:
                continue
        else:
            raw = result.stats.get(metric)
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                values[metric] = float(raw)
    return values


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class InspectorConfig:
    """Thresholds of the online checks (defaults deliberately loose).

    The statistical knobs trade detection latency for false-positive
    rate: a baseline needs ``baseline_min`` clean points per workload
    before outlier verdicts fire, the MAD scale is floored at
    ``rel_scale_floor`` of the median (identical baselines otherwise
    make every deviation infinitely significant), and the z threshold
    is far outside normal sweep variation.
    """

    #: stats fed into the per-workload rolling baselines
    metrics: Tuple[str, ...] = ("ipc", "cpi", "energy")
    #: robust z-score above which a point is an outlier
    z_threshold: float = 6.0
    #: baseline samples required before outlier verdicts fire
    baseline_min: int = 5
    #: rolling-baseline window per workload/metric
    baseline_window: int = 64
    #: scale floor as a fraction of the baseline median
    rel_scale_floor: float = 0.02
    #: finished latency > factor x median latency flags a straggler
    straggler_factor: float = 4.0
    #: latency samples required before straggler verdicts fire
    straggler_min_samples: int = 6
    #: absolute latency floor (seconds) under which nothing straggles
    straggler_floor_s: float = 0.5
    #: retried / attempted ratio above which the alarm latches
    retry_rate_threshold: float = 0.5
    #: attempts required before the retry-rate alarm can fire
    retry_min_attempts: int = 6
    #: seconds without events from a shard with outstanding work
    dead_shard_timeout_s: float = 300.0


@dataclass
class _ShardState:
    """Per-shard progress counters for throughput and liveness."""

    submitted: int = 0
    started: int = 0
    finished: int = 0
    failed: int = 0
    retried: int = 0
    cancelled: int = 0
    first_event_t: float = 0.0
    last_event_t: float = 0.0
    wall_time_s: float = 0.0
    dead_flagged: bool = False

    @property
    def outstanding(self) -> int:
        return self.submitted - self.finished - self.failed \
            - self.cancelled

    def to_dict(self) -> Dict[str, Any]:
        payload = {"submitted": self.submitted, "started": self.started,
                   "finished": self.finished, "failed": self.failed,
                   "retried": self.retried, "cancelled": self.cancelled,
                   "outstanding": self.outstanding}
        elapsed = self.last_event_t - self.first_event_t
        if elapsed > 0 and self.finished:
            payload["throughput_per_s"] = self.finished / elapsed
        return payload


# ----------------------------------------------------------------------
# the inspector
# ----------------------------------------------------------------------
class SweepInspector:
    """Online validation over a sweep's events and landed results.

    Parameters
    ----------
    store:
        Destination for :class:`~repro.api.store.Annotation` rows
        (``None`` keeps verdicts in-process only, on
        :attr:`anomalies`).
    config:
        Check thresholds (:class:`InspectorConfig`).
    clock:
        Monotonic time source; injectable for deterministic alarm
        tests.
    on_anomaly:
        Called with each confirmed :class:`Annotation` as it fires.

    The inspector is a valid
    :data:`~repro.api.exec.ProgressCallback` — register it with an
    executor (``Session`` does this when ``inspect=`` is passed) and
    feed every landed result to :meth:`observe`.  Anomalies are also
    surfaced as synthetic :class:`~repro.api.exec.ExecEvent`\\ s
    (``kind == "anomaly"``) to every sink registered with
    :meth:`add_sink`, which is how ``--progress`` renderers and the
    daemon's client streams see them without a second wire format.
    """

    def __init__(self, store: Optional["ResultStore"] = None,
                 config: Optional[InspectorConfig] = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_anomaly: Optional[Callable[[Annotation], None]] = None,
                 ) -> None:
        self.store = store
        self.config = config or InspectorConfig()
        self.clock = clock
        self.on_anomaly = on_anomaly
        #: every confirmed anomaly, in detection order
        self.anomalies: List[Annotation] = []
        #: results validated so far (store hits included)
        self.observed = 0
        self._sinks: List[ProgressCallback] = []
        #: workload -> metric -> rolling clean values
        self._baselines: Dict[str, Dict[str, Deque[float]]] = {}
        #: key -> (clock at started event, attempt)
        self._started_at: Dict[str, float] = {}
        self._latencies: Deque[float] = deque(maxlen=256)
        self._shards: Dict[Optional[int], _ShardState] = {}
        self._attempts = 0
        self._retries = 0
        self._retry_flagged = False
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_sink(self, sink: ProgressCallback) -> None:
        """Also deliver synthetic anomaly events to *sink*."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink: ProgressCallback) -> None:
        """Stop delivering anomaly events to *sink* (idempotent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    def _flag(self, annotation: Annotation) -> None:
        self.anomalies.append(annotation)
        if self.store is not None:
            self.store.annotate(annotation)
        if self.on_anomaly is not None:
            self.on_anomaly(annotation)
        event = ExecEvent(kind=EVENT_ANOMALY, key=annotation.key,
                          workload=annotation.workload,
                          index=-1 if annotation.index is None
                          else annotation.index,
                          error=f"{annotation.check}: {annotation.detail}")
        for sink in list(self._sinks):
            try:
                sink(event)
            except Exception:
                pass  # a broken renderer must not fail the sweep

    # ------------------------------------------------------------------
    # lifecycle events (ProgressCallback surface)
    # ------------------------------------------------------------------
    def __call__(self, event: ExecEvent) -> None:
        now = self.clock()
        if self._t0 is None:
            self._t0 = now
        shard = self._shards.setdefault(event.shard, _ShardState())
        if not shard.first_event_t:
            shard.first_event_t = now
        shard.last_event_t = now
        if event.kind == EVENT_SUBMITTED:
            shard.submitted += 1
        elif event.kind == EVENT_STARTED:
            shard.started += 1
            self._attempts += 1
            self._started_at[event.key] = now
        elif event.kind == EVENT_FINISHED:
            shard.finished += 1
            if event.wall_time_s:
                shard.wall_time_s += event.wall_time_s
            self._check_straggler(event, now)
        elif event.kind == EVENT_FAILED:
            shard.failed += 1
        elif event.kind == EVENT_RETRIED:
            shard.retried += 1
            self._attempts += 1
            self._retries += 1
            self._check_retry_rate(event)
        elif event.kind == EVENT_CANCELLED:
            shard.cancelled += 1
        self.check_alarms(now)

    def _check_straggler(self, event: ExecEvent, now: float) -> None:
        started = self._started_at.pop(event.key, None)
        latency = (now - started if started is not None
                   else event.wall_time_s)
        if latency is None:
            return
        cfg = self.config
        if len(self._latencies) >= cfg.straggler_min_samples:
            typical = _median(list(self._latencies))
            threshold = max(typical * cfg.straggler_factor,
                            cfg.straggler_floor_s)
            if latency > threshold:
                self._flag(Annotation(
                    key=event.key, check=CHECK_STRAGGLER,
                    detail=(f"finished after {latency:.2f}s "
                            f"(median {typical:.2f}s)"),
                    workload=event.workload, index=event.index,
                    quarantine=False,
                    values={"latency_s": round(latency, 4),
                            "median_s": round(typical, 4),
                            "shard": event.shard}))
        self._latencies.append(latency)

    def _check_retry_rate(self, event: ExecEvent) -> None:
        cfg = self.config
        if self._retry_flagged or self._attempts < cfg.retry_min_attempts:
            return
        rate = self._retries / float(self._attempts)
        if rate > cfg.retry_rate_threshold:
            self._retry_flagged = True
            self._flag(Annotation(
                key="alarm:retry-rate", check=CHECK_RETRY_RATE,
                detail=(f"{self._retries}/{self._attempts} attempts "
                        f"were retries ({rate:.0%})"),
                workload=event.workload, quarantine=False,
                values={"retries": self._retries,
                        "attempts": self._attempts,
                        "rate": round(rate, 4)}))

    def check_alarms(self, now: Optional[float] = None) -> None:
        """Fire time-based alarms (dead shards); safe to call any time.

        Event handling calls this on every event, but a *completely*
        silent shard produces no events — watch loops (``repro watch``,
        the daemon scheduler) should call it periodically too.
        """
        now = self.clock() if now is None else now
        timeout = self.config.dead_shard_timeout_s
        for shard_id, shard in self._shards.items():
            if shard.dead_flagged or shard_id is None:
                continue
            if shard.outstanding > 0 and \
                    now - shard.last_event_t > timeout:
                shard.dead_flagged = True
                self._flag(Annotation(
                    key=f"alarm:shard-{shard_id}", check=CHECK_DEAD_SHARD,
                    detail=(f"shard {shard_id} silent for "
                            f"{now - shard.last_event_t:.0f}s with "
                            f"{shard.outstanding} points outstanding"),
                    quarantine=False,
                    values={"shard": shard_id,
                            "outstanding": shard.outstanding,
                            "silent_s": round(now - shard.last_event_t,
                                              1)}))

    # ------------------------------------------------------------------
    # landed results
    # ------------------------------------------------------------------
    def observe(self, result: SimResult,
                index: Optional[int] = None) -> List[Annotation]:
        """Validate one landed result; returns the anomalies it raised.

        Call with *every* result a drive lands — store and cache hits
        included.  Prior rows served from a bound store flow through
        here before fresh points land, which is what seeds the
        per-workload baselines from history.  Clean values join the
        rolling baseline; flagged values never do, so one bad point
        cannot widen the envelope that should catch the next one.
        """
        self.observed += 1
        raised: List[Annotation] = []
        problems = stat_invariants(result)
        if problems:
            annotation = Annotation(
                key=result.key, check=CHECK_INVARIANT,
                detail="; ".join(problems),
                workload=result.config.workload, index=index,
                quarantine=True,
                values={"source": result.source,
                        "backend": result.backend})
            self._flag(annotation)
            raised.append(annotation)
            return raised  # broken accounting: keep it off the baseline

        cfg = self.config
        values = _metric_values(result, cfg.metrics)
        per_workload = self._baselines.setdefault(
            result.config.workload, {})
        outliers: Dict[str, Dict[str, float]] = {}
        for metric, value in values.items():
            baseline = per_workload.setdefault(
                metric, deque(maxlen=cfg.baseline_window))
            if len(baseline) >= cfg.baseline_min:
                history = list(baseline)
                center = _median(history)
                mad = _median([abs(v - center) for v in history])
                scale = max(_MAD_SCALE * mad,
                            cfg.rel_scale_floor * abs(center), 1e-12)
                z = abs(value - center) / scale
                if z > cfg.z_threshold:
                    outliers[metric] = {
                        "value": value, "median": center,
                        "z": round(z, 2)}
                    continue  # keep the outlier off the baseline
            baseline.append(value)
        if outliers:
            detail = "; ".join(
                f"{metric}={info['value']:.4g} vs median "
                f"{info['median']:.4g} (z={info['z']})"
                for metric, info in sorted(outliers.items()))
            annotation = Annotation(
                key=result.key, check=CHECK_OUTLIER, detail=detail,
                workload=result.config.workload, index=index,
                quarantine=True, values=outliers)
            self._flag(annotation)
            raised.append(annotation)
        return raised

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> List[str]:
        """Keys this inspector quarantined, in detection order."""
        seen = []
        for annotation in self.anomalies:
            if annotation.quarantine and annotation.key not in seen:
                seen.append(annotation.key)
        return seen

    def summary(self) -> Dict[str, Any]:
        """JSON-ready report: counters, per-shard state, anomalies."""
        shards = {("-" if shard_id is None else str(shard_id)):
                  state.to_dict()
                  for shard_id, state in sorted(
                      self._shards.items(),
                      key=lambda item: (item[0] is None, item[0]))}
        finished = sum(s.finished for s in self._shards.values())
        elapsed = 0.0
        if self._t0 is not None:
            last = max((s.last_event_t for s in self._shards.values()),
                       default=self._t0)
            elapsed = last - self._t0
        payload: Dict[str, Any] = {
            "observed": self.observed,
            "finished": finished,
            "failed": sum(s.failed for s in self._shards.values()),
            "retried": self._retries,
            "elapsed_s": round(elapsed, 3),
            "anomalies": [a.to_dict() for a in self.anomalies],
            "quarantined": self.quarantined,
            "shards": shards,
        }
        if elapsed > 0 and finished:
            payload["throughput_per_s"] = round(finished / elapsed, 3)
        return payload


def as_inspector(inspect: Any,
                 store: Optional["ResultStore"] = None,
                 ) -> Optional[SweepInspector]:
    """Normalise an ``inspect=`` argument.

    ``None``/``False`` disable inspection; ``True`` builds a default
    :class:`SweepInspector` bound to *store*; an existing inspector
    passes through (adopting *store* if it has none, so one inspector
    can follow a sweep across resumed invocations).
    """
    if inspect is None or inspect is False:
        return None
    if inspect is True:
        return SweepInspector(store=store)
    if isinstance(inspect, SweepInspector):
        if inspect.store is None and store is not None:
            inspect.store = store
        return inspect
    raise TypeError(
        f"inspect must be a bool or SweepInspector, not {inspect!r}")
