"""Pluggable execution backends for simulation batches.

Since the submission redesign, the real machinery lives in
:mod:`repro.api.exec` (executors expose ``submit(item) -> SimFuture``
plus ``as_completed()``, lifecycle events, bounded retries and
graceful cancellation), and since the executor registry
(:mod:`repro.api.executors`) the supported way to pick one is **by
name**: ``build_executor("serial")``, ``Session(backend="remote")``,
``repro sweep --executor NAME``.  This module registers the two local
executors and keeps the historical names import-compatible:

* ``"serial"`` / :class:`SerialBackend` — in-process, submission order
  (:class:`~repro.api.exec.SerialExecutor`).
* ``"process-pool"`` / :class:`ProcessPoolBackend` —
  ``multiprocessing`` fan-out with a tunable dispatch ``chunksize``
  (:class:`~repro.api.exec.PoolExecutor`); trace generation is
  deterministic so each worker regenerates what it needs, and the
  disk cache's atomic replace-on-write keeps concurrent writers safe.

Constructing the classes directly still works but is deprecated in
favour of the registry (:func:`repro.api.executors.build_executor`),
which is what :func:`backend_for_jobs` does now.  Both classes satisfy
the legacy :class:`ExecutionBackend` iterator protocol through the
base class's ``execute()`` shim; third-party iterator-style backends
(anything with just ``name`` and ``execute()``) are driven through
:class:`~repro.api.exec.LegacyBackendAdapter`, which emits a
``DeprecationWarning``.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Optional,
                    Protocol, runtime_checkable)

from repro.api.exec import (Outcome, PoolExecutor, SerialExecutor,
                            WorkItem, _pool_worker)
from repro.api.executors import build_executor, register_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

__all__ = [
    "ExecutionBackend", "Outcome", "ProcessPoolBackend", "SerialBackend",
    "WorkItem", "backend_for_jobs", "_pool_worker",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """The original iterator-style backend protocol (still honoured)."""

    #: short identifier recorded in :class:`repro.api.result.SimResult`
    name: str

    def execute(self, session: "Session",
                items: List[WorkItem]) -> Iterator[Outcome]:
        """Simulate *items*, yielding outcomes in any order."""
        ...  # pragma: no cover - protocol


@register_executor("serial", options=("max_retries", "batch_size"))
class SerialBackend(SerialExecutor):
    """Run every configuration in-process, in submission order."""

    def __repr__(self) -> str:
        return "SerialBackend()"


@register_executor("process-pool",
                   options=("jobs", "chunksize", "max_retries",
                            "batch_size"))
class ProcessPoolBackend(PoolExecutor):
    """Fan configurations over a ``multiprocessing`` pool.

    ``jobs=None`` uses :func:`repro.harness.runner.default_jobs`
    (``REPRO_JOBS`` env var, else the CPU count); ``batch_size`` caps
    how many trace-identical points ride one worker round trip
    (``chunksize`` keeps acting as that cap when no ``batch_size`` is
    given).  Queues that would not benefit from a pool (one pending
    item, or one worker) degrade to in-process execution.
    """

    def __repr__(self) -> str:
        return (f"ProcessPoolBackend(jobs={self.jobs!r}, "
                f"chunksize={self.chunksize!r}, "
                f"batch_size={self.batch_size!r})")


def backend_for_jobs(jobs: Optional[int],
                     chunksize: Optional[int] = None,
                     batch_size: Optional[int] = None,
                     ) -> "ExecutionBackend":
    """The execution backend a ``--jobs N`` style flag selects.

    ``1`` is the plain in-process ``"serial"`` executor; anything else
    (including ``None`` = one worker per CPU and ``0``, its CLI
    spelling) is ``"process-pool"``, which itself degrades to serial
    execution when only one worker or work item remains.  A thin
    convenience over the executor registry — callers wanting any other
    executor (or explicit options) should use
    :func:`repro.api.executors.build_executor` directly.
    """
    options: Dict[str, Any] = {}
    if batch_size is not None:
        options["batch_size"] = batch_size
    if jobs == 1:
        return build_executor("serial", **options)
    return build_executor("process-pool",
                          jobs=None if jobs == 0 else jobs,
                          chunksize=chunksize, **options)
