"""Pluggable execution backends for simulation batches.

A backend turns a list of ``(index, SimConfig, use_cache)`` work items
into ``(index, stats, wall_time_s, source)`` outcomes.  The
:class:`~repro.api.session.Session` resolves cache hits and deduplicates
configurations before handing the pending work to its backend, so a
backend only ever sees configurations that actually need simulating.

Two implementations ship today:

* :class:`SerialBackend` — runs every item in-process, in order.
* :class:`ProcessPoolBackend` — fans items over a ``multiprocessing``
  pool; trace generation is deterministic so each worker regenerates
  what it needs, and the disk cache's atomic replace-on-write keeps
  concurrent writers safe.

Future backends (async, remote executors) only need to satisfy
:class:`ExecutionBackend` and can be selected per
:class:`~repro.api.session.Session`.
"""

from __future__ import annotations

import multiprocessing
from typing import (TYPE_CHECKING, Any, Dict, Iterator, List, Protocol,
                    Tuple, runtime_checkable)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session
    from repro.harness.config import SimConfig

#: a unit of pending work: position in the batch, config, cache policy
WorkItem = Tuple[int, "SimConfig", bool]
#: a completed unit: position, stats dict, wall seconds, result source
Outcome = Tuple[int, Dict[str, Any], float, str]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend satisfies."""

    #: short identifier recorded in :class:`repro.api.result.SimResult`
    name: str

    def execute(self, session: "Session",
                items: List[WorkItem]) -> Iterator[Outcome]:
        """Simulate *items*, yielding outcomes in any order."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Run every configuration in-process, in submission order."""

    name = "serial"

    def execute(self, session: "Session",
                items: List[WorkItem]) -> Iterator[Outcome]:
        for index, config, use_cache in items:
            result = session.run(config, use_cache=use_cache)
            yield index, result.stats, result.wall_time_s, result.source

    def __repr__(self) -> str:
        return "SerialBackend()"


#: per-process sessions for pool workers driving a non-default cache dir
_worker_sessions: Dict[str, "Session"] = {}


def _pool_worker(item: Tuple[int, "SimConfig", bool, str]) -> Outcome:
    """Simulate one configuration inside a pool worker.

    Runs against the worker's default session (with ``fork`` this
    inherits the parent's session state, including any test overrides on
    :mod:`repro.harness.runner`); when the parent session uses a
    different cache directory, a per-directory worker session is created
    so disk-cache writes land where the parent will look for them.
    """
    index, config, use_cache, cache_dir = item
    from repro.harness import runner
    session = runner._shim_session()
    if cache_dir and str(session.results.directory) != cache_dir:
        session = _worker_sessions.get(cache_dir)
        if session is None:
            from repro.api.session import Session
            session = Session(cache_dir=cache_dir)
            _worker_sessions[cache_dir] = session
        result = session.run(config, use_cache=use_cache)
    else:
        result = runner.run_sim_result(config, use_cache=use_cache)
    return index, result.stats, result.wall_time_s, result.source


class ProcessPoolBackend:
    """Fan configurations over a ``multiprocessing`` pool.

    ``jobs=None`` uses :func:`repro.harness.runner.default_jobs`
    (``REPRO_JOBS`` env var, else the CPU count).  Batches that would
    not benefit from a pool (one pending item, or one worker) degrade
    to in-process execution.
    """

    name = "process-pool"

    def __init__(self, jobs: int | None = None,
                 start_method: str | None = None) -> None:
        self.jobs = jobs
        self.start_method = start_method

    def _resolved_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, self.jobs)
        from repro.harness.runner import default_jobs
        return default_jobs()

    def execute(self, session: "Session",
                items: List[WorkItem]) -> Iterator[Outcome]:
        if not items:
            return
        jobs = self._resolved_jobs()
        if jobs <= 1 or len(items) == 1:
            yield from SerialBackend().execute(session, items)
            return
        cache_dir = str(session.results.directory)
        payload = [(index, config, use_cache, cache_dir)
                   for index, config, use_cache in items]
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(jobs, len(items))
        with ctx.Pool(processes=workers) as pool:
            for outcome in pool.imap_unordered(_pool_worker, payload):
                yield outcome

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(jobs={self.jobs!r})"


def backend_for_jobs(jobs: int | None) -> "ExecutionBackend":
    """The execution backend a ``--jobs N`` style flag selects.

    ``1`` is the plain in-process :class:`SerialBackend`; anything else
    (including ``None`` = one worker per CPU and ``0``, its CLI
    spelling) is a :class:`ProcessPoolBackend`, which itself degrades
    to serial execution when only one worker or work item remains.
    """
    if jobs == 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs=None if jobs == 0 else jobs)
