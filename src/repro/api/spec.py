"""Declarative sweep specifications.

A :class:`SweepSpec` names the workloads, the base core/LTP
configuration, and a set of *axes* — dotted parameter paths mapped to
the values to sweep — and expands their cross product into validated
:class:`~repro.harness.config.SimConfig` objects:

>>> spec = SweepSpec(workloads=["lattice_milc"],
...                  axes={"core.iq_size": [16, 32, 64],
...                        "ltp.enabled": [False, True]})
>>> len(spec.expand())
6

Axis paths address ``core.<field>``, ``ltp.<field>``, the allocation
``policy`` (:func:`repro.policies.policy_names`), or the ``warmup`` /
``measure`` budgets; unknown paths raise ``ValueError`` at expansion
time.  Specs round-trip through :meth:`to_dict` / :meth:`from_dict`, so
a sweep can live in a JSON file and be handed to
:meth:`repro.api.session.Session.sweep` as the user-facing entry point
— replacing the implicit plan/execute dance for ad-hoc sweeps.

For multi-worker execution, :meth:`SweepSpec.shard` partitions the
expanded product into ``count`` disjoint subsets whose union is exactly
:meth:`expand`.  Assignment depends only on each configuration's cache
key (``int(key, 16) % count``), never on its position, so K CI matrix
jobs — or K machines — each running ``spec.shard(i, K)`` cover the
sweep exactly once, and a point keeps its shard when unrelated axis
values are added to the spec.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.params import CoreParams
from repro.harness.config import (DEFAULT_ENGINE, SimConfig, core_from_dict,
                                  ltp_from_dict)
from repro.ltp.config import LTPConfig
from repro.policies.registry import DEFAULT_POLICY

#: axis paths that address the simulation budgets directly
_BUDGET_AXES = ("warmup", "measure")
#: axis path that addresses the allocation policy
_POLICY_AXIS = "policy"
#: axis path that addresses the simulation engine
_ENGINE_AXIS = "engine"


def _axis_fields(cls: type) -> frozenset:
    return frozenset(f.name for f in dataclass_fields(cls))

_CORE_FIELDS = _axis_fields(CoreParams)
_LTP_FIELDS = _axis_fields(LTPConfig)


def _check_axis(path: str) -> None:
    if path in _BUDGET_AXES or path in (_POLICY_AXIS, _ENGINE_AXIS):
        return
    prefix, _, name = path.partition(".")
    if prefix == "core" and name in _CORE_FIELDS:
        return
    if prefix == "ltp" and name in _LTP_FIELDS:
        return
    raise ValueError(
        f"unknown sweep axis {path!r}: use 'core.<field>', 'ltp.<field>', "
        f"'policy', 'engine', 'warmup' or 'measure'")


def shard_of(key: str, count: int) -> int:
    """The shard (0-based) a cache key belongs to in a *count*-way split."""
    if count < 1:
        raise ValueError("shard count must be >= 1")
    return int(key, 16) % count


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``"i/k"`` shard designator into ``(index, count)``.

    Accepts what the ``repro sweep --shard`` flag takes: a 0-based index
    and the total shard count, e.g. ``"0/4"`` … ``"3/4"``.
    """
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"bad shard designator {text!r}: expected 'index/count', "
            f"e.g. '0/4'") from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"bad shard designator {text!r}: need 0 <= index < count")
    return index, count


@dataclass
class SweepSpec:
    """A declarative cross-product sweep over simulation parameters."""

    workloads: Sequence[str]
    core: CoreParams = field(default_factory=CoreParams)
    ltp: LTPConfig = field(default_factory=LTPConfig)
    warmup: Optional[int] = None    # None = SimConfig default
    measure: Optional[int] = None
    #: base allocation policy; the ``"policy"`` axis overrides it per
    #: point (the default keeps pre-policy sweep ids stable)
    policy: str = DEFAULT_POLICY
    #: base simulation engine; the ``"engine"`` axis overrides it per
    #: point (the default keeps pre-engine sweep ids stable)
    engine: str = DEFAULT_ENGINE
    #: dotted parameter path -> values; expansion is the cross product
    #: in insertion order, workloads outermost
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: registered executor name the sweep prefers (``None`` = caller's
    #: choice); an execution detail, so it never enters the sweep id
    executor: Optional[str] = None

    def validate(self) -> "SweepSpec":
        if not self.workloads:
            raise ValueError("a sweep needs at least one workload")
        if self.executor is not None:
            from repro.api.executors import check_executor_name
            check_executor_name(self.executor)
        for path, values in self.axes.items():
            _check_axis(path)
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"axis {path!r} needs a non-empty list of values")
        return self

    def expand(self) -> List[SimConfig]:
        """The sweep's validated configurations, in deterministic order."""
        self.validate()
        axis_paths = list(self.axes)
        value_lists = [self.axes[path] for path in axis_paths]
        configs: List[SimConfig] = []
        for workload in self.workloads:
            for combo in itertools.product(*value_lists):
                core_overrides: Dict[str, Any] = {}
                ltp_overrides: Dict[str, Any] = {}
                budgets: Dict[str, Any] = {}
                policy = self.policy
                engine = self.engine
                for path, value in zip(axis_paths, combo):
                    prefix, _, name = path.partition(".")
                    if path in _BUDGET_AXES:
                        budgets[path] = value
                    elif path == _POLICY_AXIS:
                        policy = str(value)
                    elif path == _ENGINE_AXIS:
                        engine = str(value)
                    elif prefix == "core":
                        core_overrides[name] = value
                    else:
                        ltp_overrides[name] = value
                config = SimConfig(
                    workload=workload,
                    core=(self.core.but(**core_overrides)
                          if core_overrides else self.core),
                    ltp=(self.ltp.but(**ltp_overrides)
                         if ltp_overrides else self.ltp),
                    policy=policy, engine=engine)
                if self.warmup is not None:
                    config.warmup = self.warmup
                if self.measure is not None:
                    config.measure = self.measure
                for name, value in budgets.items():
                    setattr(config, name, int(value))
                configs.append(config.validate())
        return configs

    def shard(self, index: int, count: int) -> List[SimConfig]:
        """The *index*-th of *count* disjoint partitions of :meth:`expand`.

        Membership is decided by each configuration's cache key alone
        (:func:`shard_of`), so the split is stable under re-expansion
        and the union over ``shard(0, k) … shard(k-1, k)`` is exactly
        the full sweep, each point appearing in precisely one shard.
        Expansion order is preserved within a shard.  Shards of an
        uneven split differ in size; some may be empty.
        """
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(
                f"shard index {index} out of range for count {count}")
        return [config for config in self.expand()
                if shard_of(config.key(), count) == index]

    def sweep_id(self) -> str:
        """Stable content hash identifying this sweep's definition.

        Derived from the same payload as :meth:`to_dict`, so equal specs
        — however constructed — share an id.  Result stores record it to
        refuse mixing results from different sweeps.  The ``executor``
        preference is stripped first: *where* a sweep runs must not
        change *what* it is, or stores could never be shared between
        serial, pooled and remote runs.
        """
        payload = self.to_dict()
        payload.pop("executor", None)
        text = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def __len__(self) -> int:
        """Number of configurations :meth:`expand` will produce."""
        points = 1
        for values in self.axes.values():
            points *= len(values)
        return len(self.workloads) * points

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "workloads": list(self.workloads),
            "core": asdict(self.core),
            "ltp": asdict(self.ltp),
            "warmup": self.warmup,
            "measure": self.measure,
            "axes": {path: list(values)
                     for path, values in self.axes.items()},
        }
        if self.policy != DEFAULT_POLICY:
            # sweep-id stability: default-policy specs serialize exactly
            # as pre-policy ones did
            payload["policy"] = self.policy
        if self.engine != DEFAULT_ENGINE:
            payload["engine"] = self.engine
        if self.executor is not None:
            payload["executor"] = self.executor
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        payload = dict(data)
        try:
            workloads = list(payload.pop("workloads"))
        except KeyError:
            raise ValueError("sweep payload is missing 'workloads'") \
                from None
        core_data = payload.pop("core", None)
        ltp_data = payload.pop("ltp", None)
        warmup = payload.pop("warmup", None)
        measure = payload.pop("measure", None)
        policy = payload.pop("policy", DEFAULT_POLICY)
        engine = payload.pop("engine", DEFAULT_ENGINE)
        executor = payload.pop("executor", None)
        axes = payload.pop("axes", {}) or {}
        if payload:
            raise ValueError(f"unknown sweep fields: {sorted(payload)}")
        spec = cls(
            workloads=workloads,
            core=(core_from_dict(core_data) if core_data is not None
                  else CoreParams()),
            ltp=(ltp_from_dict(ltp_data) if ltp_data is not None
                 else LTPConfig()),
            warmup=None if warmup is None else int(warmup),
            measure=None if measure is None else int(measure),
            policy=str(policy), engine=str(engine),
            executor=None if executor is None else str(executor),
            axes={path: list(values) for path, values in axes.items()})
        return spec.validate()
