"""Typed simulation results for the API boundary.

:func:`repro.harness.runner.run_sim` historically returned the raw
flattened statistics dict; :class:`SimResult` wraps that dict with the
configuration that produced it, the cache key, where the result came
from (fresh simulation vs. memory/disk cache), which backend executed
it and how long the simulation took.  Experiment aggregation code keeps
consuming the plain ``stats`` dict; scripting consumers get a stable
JSON shape from :meth:`SimResult.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.harness.config import SimConfig

#: where a result came from
SOURCE_SIMULATED = "simulated"
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
#: served from a persistent :class:`repro.api.store.ResultStore`
SOURCE_STORE = "store"
SOURCES = (SOURCE_SIMULATED, SOURCE_MEMORY, SOURCE_DISK, SOURCE_STORE)


@dataclass
class SimResult:
    """One simulation outcome: statistics plus provenance."""

    config: SimConfig
    #: flattened statistics (``SimStats.as_dict()`` plus workload/category)
    stats: Dict[str, Any]
    #: the configuration's stable cache key (``SimConfig.key()``)
    key: str
    #: "simulated", "memory" (in-process cache), "disk" (result cache)
    #: or "store" (persistent sweep result store)
    source: str = SOURCE_SIMULATED
    #: wall-clock seconds spent simulating (0.0 for cache hits)
    wall_time_s: float = 0.0
    #: name of the execution backend that produced the result
    #: ("cache" when no backend ran because a cache served it)
    backend: str = "serial"
    extra: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        """Dict-style access to the statistics (``result["cpi"]``)."""
        return self.stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stats

    @property
    def cached(self) -> bool:
        """True when the result was served from a cache, not simulated."""
        return self.source != SOURCE_SIMULATED

    @property
    def cpi(self) -> float:
        return float(self.stats["cpi"])

    @property
    def ipc(self) -> float:
        return float(self.stats["ipc"])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload: config, stats and provenance."""
        return {
            "schema": 1,
            "key": self.key,
            "source": self.source,
            "cached": self.cached,
            "backend": self.backend,
            "wall_time_s": round(self.wall_time_s, 6),
            "config": self.config.to_dict(),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        config = SimConfig.from_dict(data["config"])
        return cls(config=config, stats=dict(data["stats"]),
                   key=data.get("key") or config.key(),
                   source=data.get("source", SOURCE_DISK),
                   wall_time_s=float(data.get("wall_time_s", 0.0)),
                   backend=data.get("backend", "serial"))


def cached_result(config: SimConfig, key: str, stats: Dict[str, Any],
                  source: str, backend: str = "serial") -> SimResult:
    """A :class:`SimResult` for a cache hit (no simulation time)."""
    if source not in SOURCES:
        raise ValueError(f"source must be one of {SOURCES}")
    return SimResult(config=config, stats=stats, key=key, source=source,
                     wall_time_s=0.0, backend=backend)
