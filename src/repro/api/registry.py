"""Decorator-based experiment registry.

Experiments self-register instead of being listed in a hand-maintained
table::

    from repro.api import experiment, renderer

    @experiment("fig6")
    def fig6_limit_study(...):
        ...

    @renderer("fig6")
    def render_fig6(result):
        ...

``repro experiment NAME`` (and anything else consuming
:func:`experiment_names` / :func:`get_experiment`) picks new scenarios
up automatically.  The built-in experiments live in
:mod:`repro.harness.experiments`, which is imported lazily the first
time the registry is queried so module import order never matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.util import first_doc_line


@dataclass
class Experiment:
    """A registered experiment: a sweep function plus its renderer."""

    name: str
    runner: Callable[..., dict]
    renderer: Optional[Callable[[dict], str]] = None
    description: str = ""

    def run(self, *args, jobs: Optional[int] = 1, **kwargs) -> dict:
        """Run the experiment; ``jobs`` > 1 (or ``None`` = one worker
        per CPU) executes the sweep across a process pool."""
        if jobs is not None and jobs <= 1:
            return self.runner(*args, **kwargs)
        from repro.harness.experiments import run_parallel
        return run_parallel(self.runner, *args, jobs=jobs, **kwargs)

    def render(self, result: dict) -> str:
        """Render a result for humans (repr when no renderer exists)."""
        if self.renderer is None:
            return repr(result)
        return self.renderer(result)


_REGISTRY: Dict[str, Experiment] = {}


def experiment(name: str, description: Optional[str] = None) -> Callable:
    """Class-method-style decorator registering an experiment runner."""

    def decorate(func: Callable[..., dict]) -> Callable[..., dict]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        doc = description
        if doc is None:
            doc = first_doc_line(func.__doc__)
        _REGISTRY[name] = Experiment(name=name, runner=func,
                                     description=doc)
        return func

    return decorate


def renderer(name: str) -> Callable:
    """Decorator attaching a render function to a registered experiment."""

    def decorate(func: Callable[[dict], str]) -> Callable[[dict], str]:
        entry = _REGISTRY.get(name)
        if entry is None:
            raise ValueError(
                f"no experiment {name!r}; register the runner first")
        if entry.renderer is not None:
            raise ValueError(
                f"experiment {name!r} already has a renderer")
        entry.renderer = func
        return func

    return decorate


def _ensure_builtins() -> None:
    """Import the built-in experiment definitions (registers them)."""
    import repro.harness.experiments  # noqa: F401  (import side effect)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(
            f"unknown experiment {name!r} (registered: {known})") from None


def experiment_names() -> List[str]:
    """Sorted names of every registered experiment."""
    _ensure_builtins()
    return sorted(_REGISTRY)
