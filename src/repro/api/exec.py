"""Futures-based execution: submission, lifecycle events, coordination.

This module is the execution layer's supported surface.  Where the
original :class:`~repro.api.backends.ExecutionBackend` protocol was a
blocking batch iterator (``execute(session, items) -> outcomes``), the
submission protocol decomposes execution into observable, controllable
pieces:

* :class:`SimFuture` — one submitted configuration's pending outcome:
  ``result()`` / ``exception()`` / ``cancel()`` / ``done()``, carrying
  provenance (config, cache key, batch index, shard tag, attempts).
* :class:`ExecutorBackend` — the submission surface every executor
  implements: ``submit(item) -> SimFuture`` plus ``as_completed()``,
  progress callbacks receiving structured :class:`ExecEvent` lifecycle
  events (``submitted``/``started``/``finished``/``failed``/
  ``retried``/``cancelled``, each delivered exactly once per
  transition), bounded retry on worker failure, and graceful
  cancellation (``cancel_all`` stops dispatching but drains whatever
  is already in flight).
* :class:`SerialExecutor` / :class:`PoolExecutor` — the in-process and
  ``multiprocessing`` implementations.  Both dispatch
  :class:`BatchWorkItem`\\ s: queued futures sharing one trace
  identity (workload + total trace length + cache policy + shard) are
  grouped so each dispatch pays one trace generation, one workload
  build and one columnar predecode for the whole group (the
  :class:`~repro.api.session.BatchRunner` amortization).  ``batch_size``
  caps the group; the pool's legacy ``chunksize`` acts as that cap
  when no ``batch_size`` is given, so tuned call sites keep their
  dispatch granularity.
* :class:`LegacyBackendAdapter` — wraps an iterator-style backend so
  pre-submission backends keep working (with a ``DeprecationWarning``).
* :class:`CoordinatorBackend` — expands a
  :class:`~repro.api.spec.SweepSpec`, partitions it with
  :meth:`~repro.api.spec.SweepSpec.shard`'s key-stable rule, and
  drives *all* shards
  from one process over a worker pool, streaming every landed outcome
  into a bound :class:`~repro.api.store.ResultStore` — the
  ``repro sweep --coordinate`` engine that replaces *k* separate CLI
  invocations.

Event-delivery guarantees: every submitted item emits ``submitted``
once, ``started`` once (its first dispatch), then either ``finished``
or ``failed`` once, with zero or more ``retried`` events in between
(one per redispatch after a worker failure); an item cancelled before
it starts emits ``cancelled`` instead.  Events are delivered on the
thread iterating ``as_completed()``, in a deterministic order for
serial execution.  Batching never changes any of this: points landing
from one batch still emit their lifecycle events per point, exactly
once, and a batch that fails mid-flight retries only its unfinished
points.
"""

from __future__ import annotations

import threading
import warnings
from collections import deque
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Iterator,
                    List, Optional, Sequence, Tuple)

from repro.api.executors import register_executor
from repro.api.result import SimResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session
    from repro.api.spec import SweepSpec
    from repro.api.store import ResultStore
    from repro.harness.config import SimConfig

#: a unit of pending work: position in the batch, config, cache policy
WorkItem = Tuple[int, "SimConfig", bool]
#: a completed unit: position, stats dict, wall seconds, result source
Outcome = Tuple[int, Dict[str, Any], float, str]

#: default cap on trace-shared batch size when neither ``batch_size``
#: nor a legacy ``chunksize`` is given: large enough to amortize trace
#: generation and predecode, small enough that progress events, retry
#: granularity and work stealing stay responsive
DEFAULT_BATCH_SIZE = 16

# ----------------------------------------------------------------------
# lifecycle events
# ----------------------------------------------------------------------
EVENT_SUBMITTED = "submitted"
EVENT_STARTED = "started"
EVENT_FINISHED = "finished"
EVENT_FAILED = "failed"
EVENT_RETRIED = "retried"
EVENT_CANCELLED = "cancelled"
EVENT_KINDS = (EVENT_SUBMITTED, EVENT_STARTED, EVENT_FINISHED,
               EVENT_FAILED, EVENT_RETRIED, EVENT_CANCELLED)
#: synthetic event kind injected by the SweepInspector (not part of
#: the per-future lifecycle, so not in EVENT_KINDS): an anomaly
#: confirmed online, carrying ``"check: detail"`` in ``error``
EVENT_ANOMALY = "anomaly"


@dataclass
class ExecEvent:
    """One lifecycle transition of one submitted configuration."""

    kind: str
    key: str
    workload: str
    index: int
    #: 1-based attempt number at the time of the event (0 = not started)
    attempt: int = 0
    #: coordinator shard tag, when the submission was shard-partitioned
    shard: Optional[int] = None
    #: result provenance, on ``finished`` events
    source: Optional[str] = None
    wall_time_s: Optional[float] = None
    #: stringified worker error, on ``failed``/``retried`` events
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (``None`` fields omitted)."""
        payload: Dict[str, Any] = {"kind": self.kind, "key": self.key,
                                   "workload": self.workload,
                                   "index": self.index,
                                   "attempt": self.attempt}
        for name in ("shard", "source", "wall_time_s", "error"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        return payload


ProgressCallback = Callable[[ExecEvent], None]


class ExecutionCancelled(RuntimeError):
    """A batch ended with cancelled work still unexecuted.

    ``completed`` maps batch index -> :class:`SimResult` for every
    point that landed before (or while) the cancellation drained, so a
    caller can aggregate partial results; everything already appended
    to a bound :class:`~repro.api.store.ResultStore` stays there, which
    is what makes a cancelled sweep resumable.
    """

    def __init__(self, message: str,
                 completed: Optional[Dict[int, SimResult]] = None) -> None:
        super().__init__(message)
        self.completed: Dict[int, SimResult] = completed or {}


class WorkerFailure(RuntimeError):
    """A work item kept failing after its bounded retries."""

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


# ----------------------------------------------------------------------
# futures
# ----------------------------------------------------------------------
_PENDING = "pending"
_RUNNING = "running"
_CANCELLED = "cancelled"
_DONE = "done"


class SimFuture:
    """The pending outcome of one submitted configuration.

    Created by :meth:`ExecutorBackend.submit`; resolved by the
    executor's ``as_completed`` drive.  Thread-safe: the pool executor
    resolves futures from its completion loop while callers may wait
    in :meth:`result` from another thread.
    """

    def __init__(self, executor: "ExecutorBackend", item: WorkItem,
                 shard: Optional[int] = None) -> None:
        self.index, self.config, self.use_cache = item
        #: the configuration's stable cache key (provenance)
        self.key = self.config.key()
        #: coordinator shard tag (``None`` outside coordinated runs)
        self.shard = shard
        #: attempts dispatched so far (grows on retries)
        self.attempts = 0
        self._executor = executor
        self._state = _PENDING
        self._result: Optional[SimResult] = None
        self._exception: Optional[BaseException] = None
        self._cond = threading.Condition()
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    # -- state queries ---------------------------------------------------
    def done(self) -> bool:
        """True once resolved: result, exception, or cancelled."""
        with self._cond:
            return self._state in (_DONE, _CANCELLED)

    def cancelled(self) -> bool:
        with self._cond:
            return self._state == _CANCELLED

    def running(self) -> bool:
        with self._cond:
            return self._state == _RUNNING

    # -- cancellation ----------------------------------------------------
    def cancel(self) -> bool:
        """Cancel if not yet started; running work is never interrupted.

        Returns ``True`` when the future is (now) cancelled.  The
        executor emits the ``cancelled`` lifecycle event.
        """
        with self._cond:
            if self._state == _CANCELLED:
                return True
            if self._state != _PENDING:
                return False
            self._state = _CANCELLED
            self._cond.notify_all()
        self._executor._on_future_cancelled(self)
        self._invoke_callbacks()
        return True

    def _cancel_running(self) -> None:
        """Force-cancel in-flight work whose outcome will never arrive
        (the legacy adapter's torn-iterator path)."""
        with self._cond:
            if self._state in (_DONE, _CANCELLED):
                return
            self._state = _CANCELLED
            self._cond.notify_all()
        self._executor._on_future_cancelled(self)
        self._invoke_callbacks()

    # -- waiting ---------------------------------------------------------
    def _wait(self, timeout: Optional[float]) -> None:
        if not self._cond.wait_for(
                lambda: self._state in (_DONE, _CANCELLED),
                timeout=timeout):
            raise TimeoutError(f"future for {self.key} still "
                               f"{self._state} after {timeout}s")

    def result(self, timeout: Optional[float] = None) -> SimResult:
        """The :class:`SimResult`; raises the failure or cancellation."""
        with self._cond:
            self._wait(timeout)
            if self._state == _CANCELLED:
                raise ExecutionCancelled(
                    f"simulation of {self.key} was cancelled")
            if self._exception is not None:
                raise self._exception
            assert self._result is not None
            return self._result

    def exception(self,
                  timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The failure that resolved this future, or ``None``."""
        with self._cond:
            self._wait(timeout)
            if self._state == _CANCELLED:
                return ExecutionCancelled(
                    f"simulation of {self.key} was cancelled")
            return self._exception

    def add_done_callback(self,
                          fn: Callable[["SimFuture"], None]) -> None:
        """Run *fn(future)* once resolved (immediately if already)."""
        with self._cond:
            if self._state not in (_DONE, _CANCELLED):
                self._callbacks.append(fn)
                return
        fn(self)

    # -- resolution (executor-internal) ----------------------------------
    def _set_running(self) -> None:
        with self._cond:
            if self._state == _PENDING:
                self._state = _RUNNING

    def _set_result(self, result: SimResult) -> None:
        with self._cond:
            self._result = result
            self._state = _DONE
            self._cond.notify_all()
        self._invoke_callbacks()

    def _set_exception(self, exc: BaseException) -> None:
        with self._cond:
            self._exception = exc
            self._state = _DONE
            self._cond.notify_all()
        self._invoke_callbacks()

    def _invoke_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        return (f"SimFuture({self.config.workload!r}, key={self.key!r}, "
                f"state={self._state!r})")


# ----------------------------------------------------------------------
# trace-shared batches
# ----------------------------------------------------------------------
def _batch_key(future: SimFuture) -> Tuple[Optional[int], str, int, bool]:
    """The grouping identity for trace-shared batching.

    Futures batch together when they share a coordinator shard, a
    workload, a total trace length (``warmup + measure``) and a cache
    policy — exactly the inputs one trace generation + one predecode
    can serve.  The engine is deliberately *not* part of the key: the
    predecode is done lazily, only when a batch member actually uses
    the kernel engine.
    """
    config = future.config
    return (future.shard, config.workload,
            config.warmup + config.measure, future.use_cache)


@dataclass
class BatchWorkItem:
    """A trace-homogeneous slice of the queue, dispatched as one unit.

    Every member future shares the :func:`_batch_key` identity (a
    cancelled future travels alone), so an executor can run the whole
    group through one :class:`~repro.api.session.BatchRunner` — or one
    ``run_batch`` protocol frame — while still resolving each member
    per point.
    """

    futures: List[SimFuture]

    def __len__(self) -> int:
        return len(self.futures)

    @property
    def workload(self) -> str:
        return self.futures[0].config.workload

    @property
    def length(self) -> int:
        config = self.futures[0].config
        return config.warmup + config.measure

    @property
    def use_cache(self) -> bool:
        return self.futures[0].use_cache

    @property
    def shard(self) -> Optional[int]:
        return self.futures[0].shard


# ----------------------------------------------------------------------
# pool worker functions (module-level: picklable for any start method)
# ----------------------------------------------------------------------
#: per-process sessions for pool workers driving a non-default cache dir
_worker_sessions: Dict[str, "Session"] = {}


def _worker_session(cache_dir: str) -> "Session":
    """The session a pool worker runs against.

    The worker's default (shim) session — with ``fork`` this inherits
    the parent's session state, including any test overrides on
    :mod:`repro.harness.runner` — unless the parent session uses a
    different cache directory, in which case a per-directory worker
    session is created so disk-cache writes land where the parent will
    look for them.
    """
    from repro.harness import runner
    session = runner._shim_session()
    if cache_dir and str(session.results.directory) != cache_dir:
        session = _worker_sessions.get(cache_dir)
        if session is None:
            from repro.api.session import Session
            session = Session(cache_dir=cache_dir)
            _worker_sessions[cache_dir] = session
    return session


def _pool_worker(item: Tuple[int, "SimConfig", bool, str]) -> Outcome:
    """Simulate one configuration inside a pool worker."""
    index, config, use_cache, cache_dir = item
    result = _worker_session(cache_dir).run(config, use_cache=use_cache)
    return index, result.stats, result.wall_time_s, result.source


def _chunk_worker(
        payloads: Sequence[Tuple[int, "SimConfig", bool, str]]
) -> List[Any]:
    """Simulate a chunk of configurations in one worker round trip.

    The batched pool dispatches trace-homogeneous chunks (one
    workload, one total trace length, one cache policy), which run
    through a session :class:`~repro.api.session.BatchRunner`: one
    trace generation, one workload build, one predecode for the whole
    chunk.  A per-point failure comes back in-band as a five-tuple
    ``(index, None, 0.0, "", error)`` — alongside the usual four-tuple
    :data:`Outcome` successes — so one bad point costs one single-item
    retry instead of re-failing the whole chunk.  Heterogeneous chunks
    (legacy dispatchers, hand-built batches) fall back to per-item
    execution.
    """
    identities = {(config.workload, config.warmup + config.measure,
                   use_cache)
                  for _, config, use_cache, _ in payloads}
    if len(payloads) < 2 or len(identities) != 1:
        return [_pool_worker(payload) for payload in payloads]
    _, first, _, cache_dir = payloads[0]
    runner = _worker_session(cache_dir).batch_runner(
        first.workload, first.warmup + first.measure)
    outcomes: List[Any] = []
    for index, config, use_cache, _ in payloads:
        try:
            result = runner.run(config, use_cache=use_cache)
        except Exception as exc:  # noqa: BLE001 - reported in-band
            outcomes.append((index, None, 0.0, "",
                             f"{type(exc).__name__}: {exc}"))
        else:
            outcomes.append((index, result.stats, result.wall_time_s,
                             result.source))
    return outcomes


# ----------------------------------------------------------------------
# the submission protocol
# ----------------------------------------------------------------------
class ExecutorBackend:
    """Base of every futures-style executor.

    Subclasses implement :meth:`as_completed`, the drive loop that
    resolves every submitted future; everything else — submission,
    progress callbacks, cancellation bookkeeping, the legacy
    ``execute()`` compatibility shim — is shared here.

    Parameters
    ----------
    max_retries:
        How many times a failing work item is redispatched before its
        exception surfaces on the :class:`SimFuture` (default 1, so a
        transient worker crash costs one retry).
    batch_size:
        Cap on how many trace-identical futures one
        :class:`BatchWorkItem` groups (``None`` = executor-specific
        default; ``1`` disables batching entirely).
    """

    #: short identifier recorded in :class:`repro.api.result.SimResult`
    name = "?"

    def __init__(self, max_retries: int = 1,
                 batch_size: Optional[int] = None) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.max_retries = max_retries
        self.batch_size = batch_size
        self._session: Optional["Session"] = None
        self._callbacks: List[ProgressCallback] = []
        #: submitted futures not yet taken by the drive loop
        self._queue: "Deque[SimFuture]" = deque()
        self._cancelling = False

    # -- wiring ----------------------------------------------------------
    def bind(self, session: "Session") -> "ExecutorBackend":
        """Attach the session work is executed against."""
        self._session = session
        return self

    def _require_session(self) -> "Session":
        if self._session is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a Session; call "
                f"bind(session) (Session.run_many does this for you)")
        return self._session

    def add_progress_callback(self,
                              callback: ProgressCallback
                              ) -> ProgressCallback:
        """Register *callback* for every lifecycle event; returns it."""
        self._callbacks.append(callback)
        return callback

    def remove_progress_callback(self, callback: ProgressCallback) -> None:
        """Unregister a callback (missing callbacks are ignored)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _emit(self, kind: str, future: SimFuture, **extra: Any) -> None:
        if not self._callbacks:
            return
        event = ExecEvent(kind=kind, key=future.key,
                          workload=future.config.workload,
                          index=future.index, attempt=future.attempts,
                          shard=future.shard, **extra)
        for callback in list(self._callbacks):
            callback(event)

    # -- submission ------------------------------------------------------
    def submit(self, item: WorkItem,
               shard: Optional[int] = None) -> SimFuture:
        """Queue one work item; returns its :class:`SimFuture`.

        Execution happens while :meth:`as_completed` is iterated —
        ``submit`` never blocks on simulation.
        """
        future = SimFuture(self, item, shard=shard)
        self._queue.append(future)
        self._emit(EVENT_SUBMITTED, future)
        return future

    # -- cancellation ----------------------------------------------------
    def cancel_all(self) -> int:
        """Gracefully cancel: stop dispatching, drain in-flight work.

        Every not-yet-started future is cancelled (and emits its
        ``cancelled`` event); futures already handed to a worker run
        to completion and still resolve normally.  Returns how many
        futures were cancelled.
        """
        self._cancelling = True
        cancelled = 0
        for future in list(self._queue):
            if future.cancel():
                cancelled += 1
        return cancelled

    def _on_future_cancelled(self, future: SimFuture) -> None:
        self._emit(EVENT_CANCELLED, future)

    # -- batch formation -------------------------------------------------
    def _next_batch(self,
                    limit: Optional[int] = None
                    ) -> Optional[BatchWorkItem]:
        """Pop the next :class:`BatchWorkItem` off the queue.

        Takes the queue head plus every queued future sharing its
        :func:`_batch_key` identity (up to *limit*); non-matching
        futures keep their relative order.  A cancelled head travels
        alone so the drive loops resolve it without touching a batch.
        Queue order is preserved *within* each trace identity, and a
        sweep's expansion is workload-major, so batching a sweep never
        reorders how its points land.
        """
        if not self._queue:
            return None
        head = self._queue.popleft()
        if head.cancelled() or (limit is not None and limit <= 1):
            return BatchWorkItem([head])
        key = _batch_key(head)
        futures = [head]
        kept: "Deque[SimFuture]" = deque()
        while self._queue:
            future = self._queue.popleft()
            if (len(futures) != limit and not future.cancelled()
                    and _batch_key(future) == key):
                futures.append(future)
            else:
                kept.append(future)
        self._queue.extend(kept)
        return BatchWorkItem(futures)

    def shutdown(self) -> None:
        """Release executor resources (pools close themselves per drive)."""

    # -- the drive loop --------------------------------------------------
    def as_completed(self) -> Iterator[SimFuture]:
        """Resolve and yield every submitted future, completion order."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _drain_inline(self, session: "Session",
                      limit: Optional[int] = None) -> Iterator[SimFuture]:
        """Run the queue in-process, batched, in submission order
        (shared by the serial executor and the pool's small-batch
        degradation).

        Trace-identical runs of the queue execute through one
        :class:`~repro.api.session.BatchRunner`, so the trace is
        generated (and, for kernel points, predecoded) once per batch;
        each point still starts, finishes, retries and resolves
        individually, exactly as unbatched execution would.  *limit*
        overrides the executor's own ``batch_size`` cap (the pool
        passes its resolved dispatch cap when it degrades inline).
        """
        if limit is None:
            limit = self.batch_size
        self._cancelling = False
        while self._queue:
            batch = self._next_batch(limit)
            runner = None
            for future in batch.futures:
                # cancel_all between points of a batch must cancel the
                # batch's not-yet-started remainder, exactly as it
                # cancels the queued futures it can still see
                if self._cancelling and not future.done():
                    future.cancel()
                if future.cancelled():
                    yield future
                    continue
                if runner is None and len(batch) > 1:
                    runner = session.batch_runner(batch.workload,
                                                  batch.length)
                future._set_running()
                self._emit(EVENT_STARTED, future)
                self._run_one_inline(session, future, runner=runner)
                yield future

    def _run_one_inline(self, session: "Session", future: SimFuture,
                        runner: Any = None) -> None:
        """One item, in-process, with bounded retries.

        With a *runner* (a :class:`~repro.api.session.BatchRunner`),
        the point executes against the batch's shared trace state;
        semantics are otherwise identical to ``session.run``.
        """
        run = session.run if runner is None else runner.run
        while True:
            future.attempts += 1
            try:
                result = run(future.config,
                             use_cache=future.use_cache)
            except Exception as exc:  # noqa: BLE001 - retried/surfaced
                if future.attempts <= self.max_retries:
                    self._emit(EVENT_RETRIED, future, error=str(exc))
                    continue
                failure = WorkerFailure(
                    f"{future.config.workload} ({future.key}) failed "
                    f"after {future.attempts} attempt(s): {exc}",
                    attempts=future.attempts)
                failure.__cause__ = exc
                self._emit(EVENT_FAILED, future, error=str(exc))
                future._set_exception(failure)
                return
            future._set_result(result)
            self._emit(EVENT_FINISHED, future, source=result.source,
                       wall_time_s=result.wall_time_s)
            return

    # -- legacy-compatible batch surface ---------------------------------
    def execute(self, session: "Session",
                items: List[WorkItem]) -> Iterator[Outcome]:
        """Iterator-protocol compatibility: submit, drive, yield tuples.

        Lets any futures executor keep satisfying the original
        :class:`~repro.api.backends.ExecutionBackend` protocol; failed
        items raise their :class:`WorkerFailure`, cancelled items are
        skipped.
        """
        self.bind(session)
        for item in items:
            self.submit(item)
        for future in self.as_completed():
            if future.cancelled():
                continue
            result = future.result()
            yield (future.index, result.stats, result.wall_time_s,
                   result.source)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(ExecutorBackend):
    """Run every submitted configuration in-process, submission order.

    Trace-identical runs of the queue are batched through one
    :class:`~repro.api.session.BatchRunner` (``batch_size=None``
    groups without bound; ``1`` restores strictly unbatched
    execution).  Results, lifecycle events and completion order are
    identical either way — a sweep's expansion is workload-major, so
    its batches are exactly the already-adjacent runs of points.
    """

    name = "serial"

    def as_completed(self) -> Iterator[SimFuture]:
        yield from self._drain_inline(self._require_session())


class PoolExecutor(ExecutorBackend):
    """Fan submitted configurations over a ``multiprocessing`` pool.

    ``jobs=None`` uses :func:`repro.harness.runner.default_jobs`
    (``REPRO_JOBS`` env var, else the CPU count).  Queues that would
    not benefit from a pool (one pending item, or one worker) degrade
    to in-process execution.  The unit of worker dispatch is the
    :class:`BatchWorkItem`: trace-identical queued futures travel
    together (capped by ``batch_size``), and the worker runs the whole
    group through one :class:`~repro.api.session.BatchRunner` — one
    trace generation, one predecode per dispatch.  The legacy
    ``chunksize`` knob survives as the batch cap when ``batch_size``
    is not given (its old heuristic is subsumed by batch sizing; see
    ``scripts/bench.py --tune-chunksize``).  Per-point failures come
    back in-band and are redispatched singly with per-point
    ``attempts``, so one bad point cannot re-fail a whole batch.

    Retry covers exceptions *raised by* a worker.  A worker process
    dying outright (SIGKILL, OOM) is a ``multiprocessing.Pool`` blind
    spot — the pool respawns the worker but the in-flight task's
    callbacks never fire, so the drive loop would wait on it
    indefinitely.  Killing the whole run is always safe: a bound
    :class:`~repro.api.store.ResultStore` resumes from everything
    that landed.  Detecting individual worker deaths needs a
    ``BrokenProcessPool``-style executor (see the ROADMAP's remote
    executor item).
    """

    name = "process-pool"

    #: in-flight chunks kept per worker; small enough that cancel_all
    #: leaves little to drain, large enough to keep workers busy
    BACKLOG_PER_WORKER = 2

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None,
                 chunksize: Optional[int] = None,
                 max_retries: int = 1,
                 batch_size: Optional[int] = None) -> None:
        super().__init__(max_retries=max_retries, batch_size=batch_size)
        self.jobs = jobs
        self.start_method = start_method
        self.chunksize = chunksize

    def _resolved_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, self.jobs)
        from repro.harness.runner import default_jobs
        return default_jobs()

    def _resolved_chunksize(self, items: int, workers: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        # deterministic: ~4 chunks per worker, capped so progress
        # events stay reasonably fine-grained
        return max(1, min(8, items // (workers * 4)))

    def _resolved_batch_size(self, items: int, workers: int) -> int:
        """The cap on one dispatched batch.

        An explicit ``batch_size`` wins; an explicit ``chunksize``
        keeps acting as the dispatch-granularity cap it always was;
        otherwise batches grow to :data:`DEFAULT_BATCH_SIZE` (bounded
        by a fair per-worker share of the queue).
        """
        if self.batch_size is not None:
            return max(1, self.batch_size)
        if self.chunksize is not None:
            return self._resolved_chunksize(items, workers)
        return max(1, min(DEFAULT_BATCH_SIZE, items // max(1, workers)))

    def as_completed(self) -> Iterator[SimFuture]:
        session = self._require_session()
        total = len(self._queue)
        if total == 0:
            return
        jobs = self._resolved_jobs()
        if jobs <= 1 or total == 1:
            yield from self._drain_inline(
                session, self._resolved_batch_size(total, 1))
            return
        yield from self._drive_pool(session, total, jobs)

    def _drive_pool(self, session: "Session", total: int,
                    jobs: int) -> Iterator[SimFuture]:
        import multiprocessing
        import queue as queue_mod

        self._cancelling = False
        cache_dir = str(session.results.directory)
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(jobs, total)
        batch_limit = self._resolved_batch_size(total, workers)
        max_inflight = workers * self.BACKLOG_PER_WORKER

        done_q: "queue_mod.SimpleQueue" = queue_mod.SimpleQueue()
        resolved: "Deque[SimFuture]" = deque()
        inflight = 0

        def dispatch(pool, futures: Sequence[SimFuture]) -> None:
            nonlocal inflight
            batch = tuple(futures)
            payload = [(f.index, f.config, f.use_cache, cache_dir)
                       for f in batch]
            worker = _chunk_worker  # module global: monkeypatchable
            pool.apply_async(
                worker, (payload,),
                callback=lambda outs, fs=batch:
                    done_q.put(("ok", fs, outs)),
                error_callback=lambda exc, fs=batch:
                    done_q.put(("err", fs, exc)))
            inflight += 1

        def fill_window(pool) -> None:
            while (inflight < max_inflight and self._queue
                   and not self._cancelling):
                group = self._next_batch(batch_limit)
                batch: List[SimFuture] = []
                for future in group.futures:
                    if future.cancelled():
                        resolved.append(future)
                        continue
                    future.attempts += 1
                    future._set_running()
                    self._emit(EVENT_STARTED, future)
                    batch.append(future)
                if batch:
                    dispatch(pool, batch)

        yielded = 0
        with ctx.Pool(processes=workers) as pool:
            fill_window(pool)
            while yielded < total:
                while resolved:
                    yield resolved.popleft()
                    yielded += 1
                if yielded >= total:
                    break
                if inflight == 0:
                    # nothing running: remaining futures are queued
                    # (cancelled, or the window closed) — resolve them
                    if not self._queue:
                        fill_window(pool)
                        if inflight == 0 and not resolved:
                            break  # defensive: nothing left to wait on
                        continue
                    future = self._queue.popleft()
                    if not future.done():
                        future.cancel()
                    resolved.append(future)
                    continue
                status, batch, payload = done_q.get()
                inflight -= 1
                if status == "ok":
                    for future, outcome in zip(batch, payload):
                        error = outcome[4] if len(outcome) > 4 else None
                        if error:
                            # in-band per-point failure from a batched
                            # chunk: retry just this point, singly
                            self._land_point_failure(pool, future, error,
                                                     resolved, dispatch)
                            continue
                        _, stats, wall, source = outcome[:4]
                        result = SimResult(
                            config=future.config, stats=stats,
                            key=future.key, source=source,
                            wall_time_s=wall, backend=self.name)
                        future._set_result(result)
                        self._emit(EVENT_FINISHED, future, source=source,
                                   wall_time_s=wall)
                        resolved.append(future)
                else:
                    self._handle_failed_chunk(pool, batch, payload,
                                              resolved, dispatch)
                fill_window(pool)
            while resolved:
                yield resolved.popleft()
                yielded += 1

    def _handle_failed_chunk(self, pool, batch, exc, resolved,
                             dispatch) -> None:
        """Retry each item of a failed chunk singly (bounded), unless
        cancelling — then the failure surfaces immediately."""
        for future in batch:
            self._land_point_failure(pool, future, exc, resolved, dispatch)

    def _land_point_failure(self, pool, future, exc, resolved,
                            dispatch) -> None:
        """One point's worker failure: bounded single-item retry, or
        surface the :class:`WorkerFailure` on its future."""
        if future.attempts <= self.max_retries and not self._cancelling:
            # emit before bumping attempts so the event carries the
            # attempt that failed, matching the serial executor
            self._emit(EVENT_RETRIED, future, error=str(exc))
            future.attempts += 1
            dispatch(pool, (future,))
        else:
            failure = WorkerFailure(
                f"{future.config.workload} ({future.key}) failed "
                f"after {future.attempts} attempt(s): {exc}",
                attempts=future.attempts)
            failure.__cause__ = (exc if isinstance(exc, BaseException)
                                 else None)
            self._emit(EVENT_FAILED, future, error=str(exc))
            future._set_exception(failure)
            resolved.append(future)

    def __repr__(self) -> str:
        return (f"PoolExecutor(jobs={self.jobs!r}, "
                f"chunksize={self.chunksize!r}, "
                f"batch_size={self.batch_size!r})")


@register_executor("coordinator",
                   options=("jobs", "chunksize", "max_retries",
                            "batch_size"))
class CoordinatorExecutor(PoolExecutor):
    """The worker pool a coordinated sweep drives (shard-tagged).

    Behaviourally a :class:`PoolExecutor`; registered under its own
    name so ``--executor coordinator`` selects coordinated execution
    by name, the conformance suite covers the coordinator's executor,
    and results record which mode produced them.
    """

    name = "coordinator"


class LegacyBackendAdapter(ExecutorBackend):
    """Drive an iterator-style backend through the submission surface.

    Wraps anything satisfying the original
    :class:`~repro.api.backends.ExecutionBackend` protocol
    (``execute(session, items) -> outcomes``) so pre-futures backends
    keep plugging into :meth:`Session.run_many`.  Construction emits a
    ``DeprecationWarning`` — new backends should subclass
    :class:`ExecutorBackend` instead.

    Limitations inherent to the wrapped protocol: ``started`` events
    fire for the whole batch when it is handed over (the iterator
    exposes no per-item start), retries are unavailable
    (``max_retries`` is forced to 0), and cancellation closes the
    iterator — items the backend never yielded resolve as cancelled.
    """

    def __init__(self, backend: Any) -> None:
        super().__init__(max_retries=0)
        self.backend = backend
        self.name = getattr(backend, "name", type(backend).__name__)
        warnings.warn(
            f"iterator-style execution backends are deprecated; "
            f"{type(backend).__name__} should implement the "
            f"repro.api.exec.ExecutorBackend submission protocol "
            f"(submit/as_completed) instead of execute()",
            DeprecationWarning, stacklevel=3)

    def as_completed(self) -> Iterator[SimFuture]:
        session = self._require_session()
        self._cancelling = False
        batch: List[SimFuture] = []
        while self._queue:
            future = self._queue.popleft()
            if future.cancelled():
                yield future
                continue
            batch.append(future)
        if not batch:
            return
        by_index = {future.index: future for future in batch}
        items: List[WorkItem] = [(f.index, f.config, f.use_cache)
                                 for f in batch]
        for future in batch:
            future.attempts = 1
            future._set_running()
            self._emit(EVENT_STARTED, future)
        iterator = self.backend.execute(session, items)
        try:
            for index, stats, wall, source in iterator:
                future = by_index.pop(index)
                result = SimResult(config=future.config, stats=stats,
                                   key=future.key, source=source,
                                   wall_time_s=wall, backend=self.name)
                future._set_result(result)
                self._emit(EVENT_FINISHED, future, source=source,
                           wall_time_s=wall)
                yield future
                if self._cancelling:
                    break
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
        for future in list(by_index.values()):
            future._cancel_running()
            yield future

    def __repr__(self) -> str:
        return f"LegacyBackendAdapter({self.backend!r})"


def as_executor(backend: Any) -> ExecutorBackend:
    """Coerce *backend* to the submission protocol.

    Futures executors pass through; iterator-style backends are
    wrapped in a :class:`LegacyBackendAdapter` (which warns); anything
    else raises ``TypeError``.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if callable(getattr(backend, "execute", None)):
        return LegacyBackendAdapter(backend)
    raise TypeError(
        f"{backend!r} is not an execution backend (need submit()/"
        f"as_completed(), or a legacy execute() method)")


# ----------------------------------------------------------------------
# the sharded-sweep coordinator
# ----------------------------------------------------------------------
class CoordinatorBackend:
    """Drive every shard of a sweep from one process.

    Expands a :class:`~repro.api.spec.SweepSpec`, partitions the
    product with :meth:`~repro.api.spec.SweepSpec.shard`'s key-stable
    rule (:func:`~repro.api.spec.shard_of` on each config's cache
    key), and submits all shards —
    tagged, shard-major — to one futures executor over a worker pool,
    streaming each landed outcome into the bound
    :class:`~repro.api.store.ResultStore` as it completes.  The
    replacement for *k* separate ``repro sweep --shard i/k``
    invocations: identical partitioning, identical results (the store
    is bit-for-bit what a serial run or a k-invocation shard union
    produces), one process, live progress, crash-resume preserved
    (stored points are served, never re-simulated).

    Parameters
    ----------
    shards:
        Partition count *k* (``None`` = the executor's worker count).
    jobs / chunksize / batch_size / max_retries:
        Forwarded to the default :class:`PoolExecutor` when no
        *executor* is supplied.  Sharding stays key-stable under
        batching: the partition is computed per config key first, and
        each shard's points then re-group into their own
        :class:`BatchWorkItem`\\ s (batches never span shards).
    executor:
        An explicit :class:`ExecutorBackend` to drive instead.
    """

    name = "coordinator"

    def __init__(self, shards: Optional[int] = None,
                 jobs: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 max_retries: int = 1,
                 executor: Optional[ExecutorBackend] = None,
                 batch_size: Optional[int] = None) -> None:
        if shards is not None and shards < 1:
            raise ValueError("shard count must be >= 1")
        self.shards = shards
        self.jobs = jobs
        self.chunksize = chunksize
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.executor = executor
        #: counts of the last run, for reporting ({"shards", "points",
        #: "per_shard"})
        self.last_report: Dict[str, Any] = {}

    def _build_executor(self) -> ExecutorBackend:
        if self.executor is not None:
            return self.executor
        from repro.api.executors import build_executor
        return build_executor("coordinator", jobs=self.jobs,
                              chunksize=self.chunksize,
                              batch_size=self.batch_size,
                              max_retries=self.max_retries)

    def run(self, session: "Session", spec: "SweepSpec",
            store: Optional["ResultStore"] = None,
            use_cache: bool = True,
            progress: Optional[ProgressCallback] = None,
            inspect: Any = None,
            ) -> List[SimResult]:
        """Run the whole sweep; results in :meth:`SweepSpec.expand` order.

        With a *store*, stored points are served without simulating
        (crash-resume) and every fresh outcome is appended as it lands;
        the store is bound to the spec's ``sweep_id`` up front so a
        resume against the wrong spec fails fast.  *inspect* enables
        online QA over the coordinated drive
        (:class:`~repro.api.inspect.SweepInspector`); shard tags on
        the lifecycle events give the inspector its per-shard
        throughput and dead-shard view.
        """
        executor = self._build_executor()
        resolved_jobs = getattr(executor, "_resolved_jobs", lambda: 1)()
        count = self.shards if self.shards is not None \
            else max(1, resolved_jobs)

        configs = spec.expand()
        if store is not None:
            store.bind(spec.sweep_id()).touch()

        # one expansion, partitioned with SweepSpec.shard's key-stable
        # rule (shard_of on each config's cache key): identical
        # membership and in-shard order to k spec.shard(i, k) calls,
        # without re-expanding (and re-hashing) the product k times
        from repro.api.spec import shard_of
        buckets: List[List[int]] = [[] for _ in range(count)]
        for index, config in enumerate(configs):
            buckets[shard_of(config.key(), count)].append(index)
        submission: List[Tuple[int, Optional[int]]] = [
            (index, shard_index)
            for shard_index, bucket in enumerate(buckets)
            for index in bucket]
        self.last_report = {"shards": count, "points": len(configs),
                            "per_shard": [len(bucket)
                                          for bucket in buckets]}
        from repro.api.inspect import as_inspector
        return session._drive(executor, configs, submission,
                              use_cache=use_cache, store=store,
                              progress=progress,
                              inspect=as_inspector(inspect, store))

    def __repr__(self) -> str:
        return (f"CoordinatorBackend(shards={self.shards!r}, "
                f"jobs={self.jobs!r})")
