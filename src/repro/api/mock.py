"""A scriptable in-process executor for tests: ``MockExecutor``.

The conformance suite's fault-injection vehicle and the sweep daemon's
scheduling test double: it implements the full
:class:`~repro.api.exec.ExecutorBackend` submission protocol —
lifecycle events, bounded retries, graceful cancellation — but never
simulates anything.  Results carry fabricated statistics derived from
the configuration, and a *script* injects latency, failures and
worker drops per item and per attempt, so retry/exhaustion paths and
multi-client scheduling can be exercised without real sockets or
subprocesses.

The script maps a submitted item's **batch index** to a sequence of
per-attempt directives (the last directive repeats for any further
attempts):

* ``"ok"`` — succeed;
* ``"fail"`` / ``("fail", "message")`` — raise a scripted worker
  error (retried until ``max_retries`` is exhausted, then surfaced
  as :class:`~repro.api.exec.WorkerFailure`);
* ``"drop"`` — like ``fail``, but labelled as a lost worker;
* a number / ``("delay", seconds)`` — sleep that long, then succeed.

Every dispatch is recorded in :attr:`MockExecutor.dispatched`
(``(index, workload)`` in dispatch order), which is what the daemon's
fair-scheduling tests assert on.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.api.exec import (EVENT_FAILED, EVENT_FINISHED, EVENT_RETRIED,
                            EVENT_STARTED, ExecutorBackend, SimFuture,
                            WorkerFailure)
from repro.api.executors import register_executor
from repro.api.result import SOURCE_SIMULATED, SimResult

#: one scripted attempt: a directive string, a delay, or a tagged pair
Directive = Any


@register_executor("mock",
                   options=("script", "max_retries", "latency"))
class MockExecutor(ExecutorBackend):
    """Scriptable test double: full executor semantics, no simulation."""

    name = "mock"

    def __init__(self, script: Optional[Mapping[int, Any]] = None,
                 max_retries: int = 1, latency: float = 0.0) -> None:
        super().__init__(max_retries=max_retries)
        #: batch index -> directive or sequence of per-attempt directives
        self.script: Dict[int, Any] = dict(script or {})
        #: default per-dispatch sleep (seconds) for unscripted items
        self.latency = latency
        #: every dispatch, in order: ``(batch index, workload name)``
        self.dispatched: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _directive(self, index: int, attempt: int) -> Directive:
        entry = self.script.get(index)
        if entry is None:
            return "ok"
        if isinstance(entry, (str, int, float)) or (
                isinstance(entry, tuple) and entry
                and isinstance(entry[0], str)):
            return entry  # a single directive applies to every attempt
        directives = list(entry)
        if not directives:
            return "ok"
        return directives[min(attempt - 1, len(directives) - 1)]

    @staticmethod
    def _interpret(directive: Directive) -> Tuple[str, float, str]:
        """Normalise a directive to ``(action, delay, error message)``."""
        if isinstance(directive, (int, float)) and not isinstance(
                directive, bool):
            return "ok", float(directive), ""
        if isinstance(directive, (tuple, list)):
            tag = str(directive[0])
            if tag == "delay":
                return "ok", float(directive[1]), ""
            if tag in ("fail", "drop"):
                message = (str(directive[1]) if len(directive) > 1
                           else f"scripted {tag}")
                return tag, 0.0, message
            raise ValueError(f"unknown mock directive {directive!r}")
        action = str(directive)
        if action == "ok":
            return "ok", 0.0, ""
        if action == "fail":
            return "fail", 0.0, "scripted failure"
        if action == "drop":
            return "drop", 0.0, "scripted worker drop"
        raise ValueError(f"unknown mock directive {directive!r}")

    def _fabricate(self, future: SimFuture) -> Dict[str, Any]:
        config = future.config
        committed = int(config.measure)
        return {"committed": committed, "cycles": committed,
                "cpi": 1.0, "ipc": 1.0, "workload": config.workload,
                "category": "mock"}

    # ------------------------------------------------------------------
    def as_completed(self) -> Iterator[SimFuture]:
        self._cancelling = False
        while self._queue:
            future = self._queue.popleft()
            if future.cancelled():
                yield future
                continue
            future._set_running()
            self._emit(EVENT_STARTED, future)
            self._resolve(future)
            yield future

    def _resolve(self, future: SimFuture) -> None:
        while True:
            future.attempts += 1
            self.dispatched.append((future.index,
                                    future.config.workload))
            action, delay, error = self._interpret(
                self._directive(future.index, future.attempts))
            delay = delay or self.latency
            if delay:
                time.sleep(delay)
            if action == "ok":
                result = SimResult(config=future.config,
                                   stats=self._fabricate(future),
                                   key=future.key,
                                   source=SOURCE_SIMULATED,
                                   wall_time_s=delay, backend=self.name)
                future._set_result(result)
                self._emit(EVENT_FINISHED, future, source=result.source,
                           wall_time_s=result.wall_time_s)
                return
            if future.attempts <= self.max_retries and \
                    not self._cancelling:
                self._emit(EVENT_RETRIED, future, error=error)
                continue
            failure = WorkerFailure(
                f"{future.config.workload} ({future.key}) failed "
                f"after {future.attempts} attempt(s): {error}",
                attempts=future.attempts)
            self._emit(EVENT_FAILED, future, error=error)
            future._set_exception(failure)
            return

    def __repr__(self) -> str:
        return (f"MockExecutor(script={self.script!r}, "
                f"max_retries={self.max_retries!r})")
