"""Sessions: explicit ownership of simulation state and execution.

A :class:`Session` owns everything that used to live as module-global
mutable state in :mod:`repro.harness.runner`:

* the bounded in-process **trace cache** (longest trace per workload,
  LRU beyond a cap),
* the bounded **oracle cache** (annotations keyed by workload, length,
  memory geometry and window),
* the **result cache** (memory + disk, directory configurable via
  ``Session(cache_dir=...)`` or the ``REPRO_CACHE_DIR`` env var),
* the **execution backend** used for batches
  (:class:`~repro.api.backends.SerialBackend` by default).

Sessions are context managers — leaving the ``with`` block drops the
in-memory caches — and independent sessions never share state, so tests
and services can isolate cache lifetimes explicitly.  A process-global
default session (:func:`default_session`) backs the legacy
``run_sim``/``run_sims`` entry points so existing call sites keep
working unchanged.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, List,
                    Optional, Tuple)

from repro.api.backends import ExecutionBackend, SerialBackend
from repro.api.exec import (ExecutionCancelled, ExecutorBackend,
                            ProgressCallback, as_executor)
from repro.api.result import (SOURCE_DISK, SOURCE_MEMORY, SOURCE_SIMULATED,
                              SOURCE_STORE, SimResult, cached_result)
from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams, cap
from repro.core.pipeline import Pipeline
from repro.harness.cachefile import ResultCache
from repro.harness.config import SimConfig
from repro.harness.runner import (ORACLE_CACHE_MAX, TRACE_CACHE_MAX,
                                  warm_branch_predictor, warm_hierarchy)
from repro.isa.trace import DynInst
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies import build_policy, policy_needs_oracle
from repro.workloads import get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.inspect import SweepInspector
    from repro.api.spec import SweepSpec
    from repro.api.store import ResultStore


def _as_backend(backend: Any) -> Any:
    """Resolve registered executor names to backend instances.

    Everywhere a backend is accepted, a string names one from
    :mod:`repro.api.executors` — ``Session(backend="process-pool")``
    and ``session.run_many(..., backend="serial")`` both work.
    """
    if isinstance(backend, str):
        from repro.api.executors import build_executor
        return build_executor(backend)
    return backend


class Session:
    """Owns simulation caches and executes configurations.

    Parameters
    ----------
    cache_dir:
        Directory for the disk result cache.  ``None`` falls back to
        ``REPRO_CACHE_DIR`` or the repo-root ``.simcache``.
    backend:
        Default :class:`ExecutionBackend` for :meth:`run_many` /
        :meth:`sweep` (``SerialBackend`` when omitted).  A string
        names a registered executor
        (:func:`repro.api.executors.build_executor`).
    trace_cache_size / oracle_cache_size:
        LRU caps of the in-process memoisation caches.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 backend: Optional[ExecutionBackend] = None,
                 trace_cache_size: int = TRACE_CACHE_MAX,
                 oracle_cache_size: int = ORACLE_CACHE_MAX) -> None:
        if trace_cache_size <= 0 or oracle_cache_size <= 0:
            raise ValueError("cache sizes must be positive")
        self.results = ResultCache(cache_dir)
        self.backend: ExecutionBackend = \
            _as_backend(backend) or SerialBackend()
        self.trace_cache_size = trace_cache_size
        self.oracle_cache_size = oracle_cache_size
        #: workload name -> (max length ever requested, longest trace);
        #: a trace shorter than its requested length means the workload
        #: halts early and the trace is complete (LRU, bounded)
        self._trace_cache: "OrderedDict[str, Tuple[int, List[DynInst]]]" = \
            OrderedDict()
        #: workload name -> columnar predecode of that workload's cached
        #: trace (kernel engine); keyed alongside ``_trace_cache`` and
        #: bounded by the same cap, so arrays never outlive their trace
        self._arrays_cache: "OrderedDict[str, Any]" = OrderedDict()
        #: (workload, length, mem key, window) -> oracle annotation
        self._oracle_cache: \
            "OrderedDict[Tuple[str, int, str, int], OracleInfo]" = \
            OrderedDict()
        self._workload_factory: Callable[[str], Any] = get_workload

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    @property
    def cache_dir(self) -> Path:
        """Directory of the disk result cache."""
        return self.results.directory

    def clear_memory_caches(self, results: bool = True) -> None:
        """Drop the in-process trace/oracle (and result) memoisation.

        The caches are cleared in place (never rebound) so references
        handed out earlier keep observing this session's state.  With
        ``results=False`` the in-memory result cache is kept (the
        legacy ``runner.clear_memory_caches`` semantics).
        """
        self._trace_cache.clear()
        self._arrays_cache.clear()
        self._oracle_cache.clear()
        if results:
            self.results._memory.clear()

    def close(self) -> None:
        """Release in-memory state (the disk cache persists)."""
        self.clear_memory_caches()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(cache_dir={str(self.cache_dir)!r}, "
                f"backend={self.backend!r})")

    # ------------------------------------------------------------------
    # memoised inputs
    # ------------------------------------------------------------------
    def get_trace(self, workload_name: str, length: int,
                  factory: Optional[Callable[[str], Any]] = None,
                  ) -> List[DynInst]:
        """Build (and memoise) the first *length* instructions.

        Only the longest trace per workload is retained; shorter
        requests return a slice of it, so distinct sweep lengths never
        pile up duplicate copies in memory.
        """
        factory = factory or self._workload_factory
        trace_cache = self._trace_cache
        cached = trace_cache.get(workload_name)
        if cached is not None:
            max_requested, full = cached
            # shorter than an earlier request => the workload halts
            # there and the trace is complete; never regenerate it
            complete = len(full) < max_requested
            if len(full) < length and not complete:
                full = factory(workload_name).trace(length)
            if length > max_requested or full is not cached[1]:
                trace_cache[workload_name] = (max(length, max_requested),
                                              full)
        else:
            full = factory(workload_name).trace(length)
            trace_cache[workload_name] = (length, full)
        trace_cache.move_to_end(workload_name)
        while len(trace_cache) > self.trace_cache_size:
            trace_cache.popitem(last=False)
        if len(full) <= length:
            return full
        return full[:length]

    def get_trace_arrays(self, workload_name: str, length: int,
                         factory: Optional[Callable[[str], Any]] = None):
        """Columnar predecode of the first *length* instructions.

        The kernel engine's :class:`~repro.core.kernel.TraceArrays` for
        a workload, memoised next to the trace itself: the predecode
        covers the session's cached (longest) trace, is invalidated
        whenever that trace object changes, and shorter requests get a
        columnar window over the shared arrays — so N configurations
        batched against one workload predecode exactly once.  Bounded
        by ``trace_cache_size`` like the trace cache it shadows.
        """
        from repro.core.kernel import predecode
        self.get_trace(workload_name, length, factory)
        full = self._trace_cache[workload_name][1]
        arrays_cache = self._arrays_cache
        arrays = arrays_cache.get(workload_name)
        if arrays is None or arrays.dyns is not full:
            arrays = predecode(full)
            arrays_cache[workload_name] = arrays
        arrays_cache.move_to_end(workload_name)
        while len(arrays_cache) > self.trace_cache_size:
            arrays_cache.popitem(last=False)
        if arrays.n <= length:
            return arrays
        return arrays.window(0, length)

    def get_oracle(self, workload_name: str, length: int, core: CoreParams,
                   trace: List[DynInst],
                   factory: Optional[Callable[[str], Any]] = None,
                   ) -> OracleInfo:
        """Oracle annotation over the full trace (cached, LRU-bounded)."""
        factory = factory or self._workload_factory
        window = min(cap(core.rob_size), 4096)
        mem = core.mem
        mem_key = (f"{mem.l1d_size}/{mem.l2_size}/{mem.l3_size}/"
                   f"{mem.prefetch_degree}")
        key = (workload_name, length, mem_key, window)
        oracle_cache = self._oracle_cache
        oracle = oracle_cache.get(key)
        if oracle is None:
            workload = factory(workload_name)
            oracle = annotate_trace(trace, mem, window=window,
                                    warm_regions=workload.warm_regions)
            oracle_cache[key] = oracle
        oracle_cache.move_to_end(key)
        while len(oracle_cache) > self.oracle_cache_size:
            oracle_cache.popitem(last=False)
        return oracle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, config: SimConfig, use_cache: bool = True) -> SimResult:
        """Run one configuration in-process; return a typed result."""
        config.validate()
        key = config.key()
        if use_cache:
            hit = self.results.lookup(key)
            if hit is not None:
                stats, where = hit
                source = SOURCE_MEMORY if where == "memory" else SOURCE_DISK
                return cached_result(config, key, stats, source,
                                     backend="cache")
        start = time.perf_counter()
        stats = self._execute(config)
        elapsed = time.perf_counter() - start
        if use_cache:
            self.results.put(key, stats)
        return SimResult(config=config, stats=stats, key=key,
                         source=SOURCE_SIMULATED, wall_time_s=elapsed)

    def batch_runner(self, workload: str, length: int) -> "BatchRunner":
        """A :class:`BatchRunner` for one trace identity.

        Executors hand every point of a ``(workload, warmup+measure)``
        batch to the returned runner; the trace is generated, the
        workload built, and (for kernel points) the columnar predecode
        done once for the whole batch instead of once per point.
        """
        return BatchRunner(self, workload, length)

    def run_batch(self, configs: List[SimConfig],
                  use_cache: bool = True) -> List[SimResult]:
        """Run a trace-homogeneous batch of configurations in order.

        Every config must share one workload and one total trace
        length (``warmup + measure``); a :class:`BatchRunner` amortizes
        trace generation and predecode across them.  Each point is
        otherwise identical to :meth:`run` — same cache lookups, same
        result shape — so the outputs are bit-identical to running the
        configs one at a time.
        """
        if not configs:
            return []
        first = configs[0]
        runner = self.batch_runner(first.workload,
                                   first.warmup + first.measure)
        return [runner.run(config, use_cache=use_cache)
                for config in configs]

    def _drive(self, backend: Any, config_list: List[SimConfig],
               submission: Iterable[Tuple[int, Optional[int]]],
               use_cache: bool = True,
               store: Optional["ResultStore"] = None,
               progress: Optional[ProgressCallback] = None,
               inspect: Optional["SweepInspector"] = None,
               ) -> List[SimResult]:
        """Resolve cache/store hits and drive the rest as futures.

        *submission* names the batch indices to cover, in submission
        order, each with an optional coordinator shard tag.  Cached
        configurations are resolved in-process; each distinct
        remaining configuration is submitted exactly once (duplicates
        share the primary's result object, so provenance — one
        simulation — stays truthful).  Completed outcomes land in the
        session caches (and *store*, if given) as they arrive, then a
        failure raises the first :class:`WorkerFailure`, and remaining
        cancellations raise :class:`ExecutionCancelled` — everything
        that completed first is preserved, which is what makes a
        cancelled sweep resumable.

        An *inspect*\\ or watches the drive: it joins the executor's
        progress callbacks (operational alarms) and every landed
        result — store and cache hits included, which seeds its
        baselines from history — passes through
        :meth:`~repro.api.inspect.SweepInspector.observe`.  Keys the
        store holds quarantined are treated as not-yet-simulated:
        their store rows are not served, and cache lookups are
        bypassed for them so the re-run regenerates the data instead
        of replaying a poisoned cache entry.
        """
        executor = as_executor(backend)
        executor.bind(self)
        if progress is not None:
            executor.add_progress_callback(progress)
        if inspect is not None:
            executor.add_progress_callback(inspect)
            if progress is not None:
                inspect.add_sink(progress)
        submission = list(submission)
        # validate everything before anything is submitted: a bad
        # config must not leave earlier items queued on the (shared)
        # executor for an unrelated later batch to execute
        for index, _ in submission:
            config_list[index].validate()
        try:
            results: Dict[int, SimResult] = {}
            primary: Dict[str, int] = {}  # key -> index that simulates it
            duplicates: List[Tuple[int, str]] = []
            for index, shard_tag in submission:
                config = config_list[index]
                key = config.key()
                quarantined = store is not None and store.quarantined(key)
                stored = (store.get(key)
                          if store is not None and not quarantined
                          else None)
                if stored is not None:
                    results[index] = SimResult(
                        config=config, stats=stored.stats, key=key,
                        source=SOURCE_STORE, wall_time_s=0.0,
                        backend="store")
                    if inspect is not None:
                        inspect.observe(results[index], index)
                    continue
                hit = (self.results.lookup(key)
                       if use_cache and not quarantined else None)
                if hit is not None:
                    stats, where = hit
                    source = (SOURCE_MEMORY if where == "memory"
                              else SOURCE_DISK)
                    results[index] = cached_result(config, key, stats,
                                                   source, backend="cache")
                    if store is not None:
                        store.add(results[index])
                    if inspect is not None:
                        inspect.observe(results[index], index)
                elif key in primary:  # simulate each distinct config once
                    duplicates.append((index, key))
                else:
                    primary[key] = index
                    executor.submit((index, config, use_cache),
                                    shard=shard_tag)

            failure: Optional[BaseException] = None
            cancelled = 0
            for future in executor.as_completed():
                if future.cancelled():
                    cancelled += 1
                    continue
                exc = future.exception()
                if exc is not None:
                    if failure is None:
                        failure = exc
                    continue
                outcome = future.result()
                result = SimResult(config=future.config,
                                   stats=outcome.stats, key=future.key,
                                   source=outcome.source,
                                   wall_time_s=outcome.wall_time_s,
                                   backend=executor.name)
                results[future.index] = result
                if use_cache:
                    # pool workers already wrote the disk cache; keep
                    # only the in-memory copy here
                    self.results.put(future.key, result.stats, disk=False)
                if store is not None:
                    # persist as each point lands, so an interrupted
                    # sweep keeps everything it finished
                    store.add(result)
                if inspect is not None:
                    # after store.add: a verdict annotation must follow
                    # the result row it judges in the store timeline
                    inspect.observe(result, future.index)

            for index, key in duplicates:
                if primary[key] in results:
                    results[index] = results[primary[key]]
            if failure is not None:
                raise failure
            if cancelled:
                raise ExecutionCancelled(
                    f"{cancelled} of {len(config_list)} configurations "
                    f"cancelled before execution "
                    f"({len(results)} completed)", completed=results)
            return [results[index] for index in range(len(config_list))]
        except BaseException:
            # never leave submitted futures queued on the (possibly
            # session-shared) executor: cancel whatever has not run
            # and drain, so the next batch starts from a clean queue
            executor.cancel_all()
            for _ in executor.as_completed():
                pass
            raise
        finally:
            if progress is not None:
                executor.remove_progress_callback(progress)
            if inspect is not None:
                executor.remove_progress_callback(inspect)
                if progress is not None:
                    inspect.remove_sink(progress)

    def run_many(self, configs: Iterable[SimConfig],
                 use_cache: bool = True,
                 backend: Optional[ExecutionBackend] = None,
                 store: Optional["ResultStore"] = None,
                 progress: Optional[ProgressCallback] = None,
                 inspect: Any = None,
                 ) -> List[SimResult]:
        """Run independent configurations through an execution backend.

        Results come back in the order of *configs* (deterministic
        aggregation regardless of backend scheduling).  Cached
        configurations are resolved in-process; each distinct remaining
        configuration is simulated exactly once and duplicates share the
        primary's statistics.  *backend* may be a futures-style
        :class:`~repro.api.exec.ExecutorBackend`, a registered executor
        name (``"serial"``, ``"process-pool"``, ``"remote"``, …), or a
        legacy iterator-style backend (adapted, with a
        ``DeprecationWarning``);
        *progress* receives every :class:`~repro.api.exec.ExecEvent`.

        With a :class:`~repro.api.store.ResultStore`, points whose keys
        the store already holds are served from it (``source ==
        "store"``) without simulating, and every other outcome is
        appended to the store as it lands — an interrupted batch keeps
        all completed points, so re-running resumes where it stopped.

        *inspect* turns on online QA: ``True`` builds a
        :class:`~repro.api.inspect.SweepInspector` bound to *store*,
        or pass a configured inspector.  Every landed result is
        validated as it arrives, confirmed anomalies become store
        annotations, and keys the store holds quarantined are
        re-simulated instead of served.
        """
        from repro.api.inspect import as_inspector
        config_list = list(configs)
        return self._drive(_as_backend(backend) or self.backend,
                           config_list,
                           [(index, None)
                            for index in range(len(config_list))],
                           use_cache=use_cache, store=store,
                           progress=progress,
                           inspect=as_inspector(inspect, store))

    def sweep(self, spec: "SweepSpec", use_cache: bool = True,
              backend: Optional[ExecutionBackend] = None,
              store: Optional["ResultStore"] = None,
              shard: Optional[Tuple[int, int]] = None,
              progress: Optional[ProgressCallback] = None,
              inspect: Any = None,
              ) -> List[SimResult]:
        """Expand a :class:`~repro.api.spec.SweepSpec` and run it.

        ``shard=(index, count)`` restricts execution to the spec's
        *index*-th key-stable partition
        (:meth:`~repro.api.spec.SweepSpec.shard`), so independent
        workers cover a sweep exactly once.  A ``store`` makes the run
        durable and resumable: stored points are skipped, fresh points
        are appended as they complete, and the store is bound to the
        spec's :meth:`~repro.api.spec.SweepSpec.sweep_id` so resuming
        with a different spec fails fast.  Keys the store holds
        *quarantined* (an inspector's annotation rows) count as
        not-yet-simulated: a resumed sweep re-runs exactly them, and
        the fresh rows lift the quarantine.  *inspect* enables the
        online QA itself (see :meth:`run_many`).
        """
        if backend is None and spec.executor is not None:
            # the spec's preference holds only when the caller did not
            # choose; resolved by name so specs stay JSON-serializable
            backend = spec.executor
        if shard is not None:
            index, count = shard
            configs = spec.shard(index, count)
        else:
            configs = spec.expand()
        if store is not None:
            # bind before running so a wrong spec fails fast, and
            # materialise the file so even an empty shard leaves a
            # mergeable artifact
            store.bind(spec.sweep_id()).touch()
        return self.run_many(configs, use_cache=use_cache,
                             backend=backend, store=store,
                             progress=progress, inspect=inspect)

    def coordinate(self, spec: "SweepSpec",
                   store: Optional["ResultStore"] = None,
                   shards: Optional[int] = None,
                   jobs: Optional[int] = None,
                   chunksize: Optional[int] = None,
                   batch_size: Optional[int] = None,
                   use_cache: bool = True,
                   progress: Optional[ProgressCallback] = None,
                   executor: Optional[ExecutorBackend] = None,
                   inspect: Any = None,
                   ) -> List[SimResult]:
        """Run every shard of *spec* from this one process.

        The :class:`~repro.api.exec.CoordinatorBackend` entry point:
        the sweep is partitioned with the same key-stable
        :meth:`~repro.api.spec.SweepSpec.shard` rule *k* separate
        ``--shard i/k`` invocations would use, all shards are driven
        over one worker pool, and each landed outcome streams into
        *store* (crash-resume preserved).  Results come back in
        :meth:`~repro.api.spec.SweepSpec.expand` order, identical to a
        serial run.
        """
        from repro.api.exec import CoordinatorBackend
        coordinator = CoordinatorBackend(shards=shards, jobs=jobs,
                                         chunksize=chunksize,
                                         batch_size=batch_size,
                                         executor=executor)
        return coordinator.run(self, spec, store=store,
                               use_cache=use_cache, progress=progress,
                               inspect=inspect)

    # ------------------------------------------------------------------
    # the simulation itself
    # ------------------------------------------------------------------
    def _execute(self, config: SimConfig) -> Dict[str, Any]:
        """Trace, warm, and run the timing pipeline for *config*."""
        total = config.warmup + config.measure
        trace = self.get_trace(config.workload, total)
        workload = self._workload_factory(config.workload)
        return self._simulate(config, trace, workload)

    def _simulate(self, config: SimConfig, trace: List[DynInst],
                  workload: Any,
                  arrays: Any = None) -> Dict[str, Any]:
        """Warm and run the timing pipeline over prepared inputs.

        The per-point half of :meth:`_execute`: *trace* and *workload*
        (and, for the kernel engine, optionally the predecoded
        *arrays*) are supplied by the caller so a
        :class:`BatchRunner` can share them across every point of a
        trace-identity batch while each point still warms and
        simulates independently.
        """
        total = config.warmup + config.measure
        oracle = (self.get_oracle(config.workload, total, config.core,
                                  trace)
                  if policy_needs_oracle(config.policy, config.ltp)
                  else None)

        warmup_slice = trace[:config.warmup]
        measured = trace[config.warmup:]

        hierarchy = MemoryHierarchy(config.core.mem)
        warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                       warm_regions=workload.warm_regions)
        bpred = GsharePredictor()
        warm_branch_predictor(bpred, warmup_slice)

        policy = build_policy(config.policy, config.ltp,
                              config.core.mem.dram_latency, oracle=oracle,
                              model=config.model)
        if config.warmup:
            policy.warm_from_trace(
                warmup_slice,
                oracle.long_latency[:config.warmup]
                if oracle is not None else None)

        if config.engine == "kernel":
            from repro.core.kernel import KernelPipeline
            if arrays is None:
                arrays = self.get_trace_arrays(config.workload, total)
            pipeline: Pipeline = KernelPipeline(
                measured, params=config.core, ltp=config.ltp,
                policy=policy, hierarchy=hierarchy,
                branch_predictor=bpred,
                arrays=arrays.window(config.warmup))
        else:
            pipeline = Pipeline(measured, params=config.core,
                                ltp=config.ltp, policy=policy,
                                hierarchy=hierarchy,
                                branch_predictor=bpred)
        stats = pipeline.run().as_dict()
        stats["workload"] = config.workload
        stats["category"] = workload.category
        return stats

    # ------------------------------------------------------------------
    # internal: shim support
    # ------------------------------------------------------------------
    def _with_result_cache(self, results: ResultCache) -> "Session":
        """A view of this session with a different result cache.

        Trace/oracle caches (and their bounds) are shared with the
        parent; only result caching is redirected.  Used by the legacy
        ``run_sim`` shims when tests override the module-level cache.
        """
        view = Session.__new__(Session)
        view.results = results
        view.backend = self.backend
        view.trace_cache_size = self.trace_cache_size
        view.oracle_cache_size = self.oracle_cache_size
        view._trace_cache = self._trace_cache
        view._arrays_cache = self._arrays_cache
        view._oracle_cache = self._oracle_cache
        view._workload_factory = self._workload_factory
        return view


class BatchRunner:
    """Execute one trace-identity batch with shared prepared inputs.

    Created by :meth:`Session.batch_runner` for a batch of
    configurations sharing a workload and a total trace length — the
    grouping rule behind the executor layer's
    :class:`~repro.api.exec.BatchWorkItem`.  The first :meth:`run`
    call that misses the result cache prepares the shared inputs —
    one trace generation, one workload build, and (for kernel-engine
    points) one columnar predecode — and every later call reuses
    them.  This lifts the amortization
    :func:`repro.core.kernel.simulate_batch` provides at the kernel
    level up to the session, where result caching, provenance and
    per-point isolation still apply.

    Each call is otherwise bit-identical to :meth:`Session.run`: the
    same cache lookup and fill, the same per-point warmup and
    simulation, the same :class:`~repro.api.result.SimResult` shape.
    Preparation failures surface on the *calling* point and are
    re-attempted on the next call, so a transient trace failure costs
    per-point retries and never poisons the runner.
    """

    def __init__(self, session: Session, workload: str, length: int):
        if length <= 0:
            raise ValueError("batch trace length must be positive")
        self.session = session
        self.workload = workload
        self.length = length
        self._trace: Optional[List[DynInst]] = None
        self._workload_obj: Any = None
        self._arrays: Any = None

    def _check_membership(self, config: SimConfig) -> None:
        total = config.warmup + config.measure
        if config.workload != self.workload or total != self.length:
            raise ValueError(
                f"config {config.workload!r} (trace length {total}) does "
                f"not belong to the {self.workload!r}/{self.length} batch")

    def run(self, config: SimConfig, use_cache: bool = True) -> SimResult:
        """Run one point of the batch; mirrors :meth:`Session.run`."""
        config.validate()
        self._check_membership(config)
        session = self.session
        key = config.key()
        if use_cache:
            hit = session.results.lookup(key)
            if hit is not None:
                stats, where = hit
                source = SOURCE_MEMORY if where == "memory" else SOURCE_DISK
                return cached_result(config, key, stats, source,
                                     backend="cache")
        start = time.perf_counter()
        if self._trace is None:
            self._trace = session.get_trace(self.workload, self.length)
        if self._workload_obj is None:
            self._workload_obj = session._workload_factory(self.workload)
        arrays = None
        if config.engine == "kernel":
            if self._arrays is None:
                self._arrays = session.get_trace_arrays(self.workload,
                                                        self.length)
            arrays = self._arrays
        stats = session._simulate(config, self._trace, self._workload_obj,
                                  arrays=arrays)
        elapsed = time.perf_counter() - start
        if use_cache:
            session.results.put(key, stats)
        return SimResult(config=config, stats=stats, key=key,
                         source=SOURCE_SIMULATED, wall_time_s=elapsed)


# ======================================================================
# process-global default session (backward compatibility)
# ======================================================================
_default_session: Optional[Session] = None


def default_session() -> Session:
    """The process-global session backing ``run_sim``/``run_sims``."""
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session


def set_default_session(session: Session) -> Optional[Session]:
    """Replace the process-global session; returns the previous one."""
    global _default_session
    previous = _default_session
    _default_session = session
    return previous
