"""Name-based registry of execution backends.

Executors self-register with the :func:`register_executor` decorator,
mirroring :mod:`repro.policies.registry`::

    @register_executor("remote", options=("workers", "max_retries"))
    class RemoteExecutor(ExecutorBackend):
        ...

A name then selects the executor end to end — ``Session(backend=
"serial")``, ``SweepSpec(executor="remote")``, ``repro sweep
--executor NAME`` — without any layer hard-coding the list.  The
built-ins (``serial``, ``process-pool``, ``coordinator``, ``remote``,
``mock``) are imported lazily the first time the registry is queried,
so module import order never matters.

Each registration names the constructor *options* it accepts;
:func:`executor_from_options` maps the CLI's ``--jobs`` /
``--chunksize`` / ``--workers`` flags onto them and rejects
contradictory combinations (``--executor serial --jobs 4``,
``--executor remote --jobs 2``, ``--workers`` on a local executor)
with a message naming what the executor does take.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.util import first_doc_line


@dataclass
class ExecutorInfo:
    """One registered executor: its factory plus registry metadata."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    #: constructor keyword options the factory accepts (the subset
    #: :func:`executor_from_options` is allowed to forward)
    options: Tuple[str, ...] = field(default_factory=tuple)


_REGISTRY: Dict[str, ExecutorInfo] = {}


def register_executor(name: str, description: Optional[str] = None,
                      options: Sequence[str] = ()) -> Callable:
    """Class decorator registering an executor under *name*.

    The decorated class must be constructible with the keyword
    *options* alone (every option optional); its instances must
    implement the :class:`repro.api.exec.ExecutorBackend` submission
    protocol.  ``description`` defaults to the class docstring's first
    line.
    """

    def decorate(cls):
        if name in _REGISTRY:
            raise ValueError(f"executor {name!r} is already registered")
        doc = description
        if doc is None:
            doc = first_doc_line(cls.__doc__)
        _REGISTRY[name] = ExecutorInfo(name=name, factory=cls,
                                       description=doc,
                                       options=tuple(options))
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the built-in executor definitions (registers them)."""
    import repro.api.backends  # noqa: F401  (import side effect)
    import repro.api.exec  # noqa: F401
    import repro.api.mock  # noqa: F401
    import repro.api.remote.executor  # noqa: F401


def executor_info(name: str) -> ExecutorInfo:
    """Look up a registered executor's metadata by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(
            f"unknown executor {name!r} (registered: {known})") from None


def check_executor_name(name: str) -> str:
    """Validate *name* against the registry (returns it unchanged)."""
    if not isinstance(name, str):
        raise ValueError(f"executor must be a string, got {type(name)}")
    executor_info(name)
    return name


def executor_names() -> List[str]:
    """Sorted names of every registered executor."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def executor_descriptions() -> Dict[str, str]:
    """Name -> one-line description for every registered executor."""
    _ensure_builtins()
    return {name: _REGISTRY[name].description
            for name in sorted(_REGISTRY)}


def build_executor(name: str, **options: Any):
    """Instantiate the executor registered as *name*.

    *options* must be a subset of the registration's declared options;
    unknown keywords raise ``ValueError`` naming what the executor
    does accept.
    """
    info = executor_info(name)
    unknown = sorted(set(options) - set(info.options))
    if unknown:
        accepted = ", ".join(info.options) or "none"
        raise ValueError(
            f"executor {name!r} does not take "
            f"{', '.join(unknown)} (accepted options: {accepted})")
    return info.factory(**options)


def executor_from_options(name: str,
                          jobs: Optional[int] = None,
                          chunksize: Optional[int] = None,
                          workers: Optional[Sequence[str]] = None,
                          max_retries: Optional[int] = None,
                          batch_size: Optional[int] = None):
    """Build the executor a ``--executor NAME`` style flag selects.

    Maps the CLI-level knobs onto the registration's declared options
    and rejects contradictory combinations: ``jobs`` on an executor
    that has no worker pool (``serial --jobs 4``), ``workers`` on a
    local executor, pool knobs on the remote executor.  ``jobs == 0``
    is the CLI spelling of "one worker per CPU" and maps to the pool
    default; ``jobs == 1`` composes with ``serial`` (it *is* one
    in-process worker).
    """
    info = executor_info(name)
    provided: Dict[str, Any] = {"jobs": jobs, "chunksize": chunksize,
                                "workers": workers,
                                "max_retries": max_retries,
                                "batch_size": batch_size}
    if name == "serial" and provided["jobs"] == 1:
        provided["jobs"] = None  # serial is exactly one worker
    options: Dict[str, Any] = {}
    for key, value in provided.items():
        if value is None:
            continue
        if key not in info.options:
            accepted = ", ".join(info.options) or "none"
            raise ValueError(
                f"--executor {name} does not take --{key} "
                f"(accepted: {accepted})")
        options[key] = value
    if options.get("jobs") == 0:
        options["jobs"] = None  # 0 = one worker per CPU (pool default)
    return info.factory(**options)
