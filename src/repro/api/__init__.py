"""repro.api — the supported programmatic surface of the reproduction.

The API layer is organised around four ideas:

* :class:`Session` — owns the trace/oracle/result caches and an
  execution backend; the one object services and tests hold on to.
  :func:`default_session` is the process-global instance behind the
  legacy ``run_sim``/``run_sims`` shims.
* Declarative specs — :class:`~repro.harness.config.SimConfig`
  round-trips through dicts, and :class:`SweepSpec` expands axis
  products into validated configuration lists.
* :class:`ExecutorBackend` — the futures-based execution layer
  (:mod:`repro.api.exec`): ``submit(item) -> SimFuture``,
  ``as_completed()``, lifecycle events, bounded retries, graceful
  cancellation.  Concrete executors live in a registry
  (:mod:`repro.api.executors`) and are selectable **by name** —
  ``"serial"``, ``"process-pool"``, ``"coordinator"``, ``"remote"``,
  ``"mock"`` — from :class:`Session`, :class:`SweepSpec` or the CLI's
  ``--executor`` flag; :func:`build_executor` constructs one.
  :class:`CoordinatorBackend` drives every shard of a sweep from one
  process (``Session.coordinate`` / ``repro sweep --coordinate``);
  legacy iterator-style backends are adapted via
  :class:`LegacyBackendAdapter` (with a ``DeprecationWarning``).
* Remote execution — :mod:`repro.api.remote`: ``repro worker``
  processes (:class:`WorkerServer`) simulate configs sent over
  length-prefixed JSON/TCP, :class:`RemoteExecutor` fans a batch over
  a worker fleet with heartbeats and bounded retries, and
  :class:`SweepDaemon` (``repro serve``) multiplexes whole sweeps
  from concurrent clients (:func:`submit_sweep`) over one fleet with
  durable per-sweep stores.
* :class:`SimResult` — typed results with cache provenance and wall
  time, JSON-ready via ``to_dict()``.
* :class:`ResultStore` — durable, append-only JSONL stores of sweep
  results; with :meth:`SweepSpec.shard` and ``Session.sweep(store=,
  shard=)`` they make sweeps shardable across machines and resumable
  (:func:`merge_stores` recombines shard artifacts).
* :class:`SweepInspector` — online sweep QA (:mod:`repro.api.inspect`):
  validates every landed result against hard stat invariants and
  per-workload outlier baselines, raises operational alarms from the
  lifecycle-event stream, and persists confirmed anomalies as
  :class:`Annotation` rows that quarantine their key — a resumed
  sweep re-simulates exactly the quarantined points.  Enabled with
  ``Session.run_many/sweep/coordinate(inspect=True)``.
* Allocation policies — :mod:`repro.policies` owns *when* resources
  are claimed; ``SimConfig(policy=...)`` / a ``"policy"`` sweep axis
  selects a registered policy (:func:`policy_names`).

Quick start::

    from repro.api import Session, SweepSpec

    with Session() as session:
        spec = SweepSpec(workloads=["lattice_milc"],
                         axes={"core.iq_size": [16, 32, 64]})
        for result in session.sweep(spec):
            print(result.config.core.iq_size, result.cpi)
"""

from repro.api.backends import (ExecutionBackend, ProcessPoolBackend,
                                SerialBackend, backend_for_jobs)
from repro.api.exec import (CoordinatorBackend, ExecEvent,
                            ExecutionCancelled, ExecutorBackend,
                            LegacyBackendAdapter, PoolExecutor,
                            SerialExecutor, SimFuture, WorkerFailure,
                            as_executor)
from repro.api.executors import (build_executor, executor_descriptions,
                                 executor_names)
from repro.api.inspect import (InspectorConfig, SweepInspector,
                               stat_invariants)
from repro.api.mock import MockExecutor
from repro.api.registry import (Experiment, experiment, experiment_names,
                                get_experiment, renderer)
from repro.api.remote import (RemoteExecutor, SweepDaemon, WorkerFleetError,
                              WorkerServer, submit_sweep)
from repro.api.result import SimResult
from repro.api.session import Session, default_session, set_default_session
from repro.api.spec import SweepSpec, parse_shard
from repro.api.store import (Annotation, ResultStore, merge_stores,
                             summarize)
from repro.harness.config import SimConfig
from repro.ltp.config import ltp_preset, ltp_preset_names
from repro.policies import (DEFAULT_POLICY, AllocationPolicy, build_policy,
                            policy_descriptions, policy_names)

__all__ = [
    "AllocationPolicy",
    "Annotation",
    "CoordinatorBackend",
    "DEFAULT_POLICY",
    "ExecEvent",
    "Experiment",
    "ExecutionBackend",
    "ExecutionCancelled",
    "ExecutorBackend",
    "InspectorConfig",
    "LegacyBackendAdapter",
    "MockExecutor",
    "PoolExecutor",
    "ProcessPoolBackend",
    "RemoteExecutor",
    "ResultStore",
    "SerialBackend",
    "SerialExecutor",
    "Session",
    "SimConfig",
    "SimFuture",
    "SimResult",
    "SweepDaemon",
    "SweepInspector",
    "SweepSpec",
    "WorkerFailure",
    "WorkerFleetError",
    "WorkerServer",
    "as_executor",
    "backend_for_jobs",
    "build_executor",
    "build_policy",
    "default_session",
    "executor_descriptions",
    "executor_names",
    "experiment",
    "experiment_names",
    "get_experiment",
    "ltp_preset",
    "ltp_preset_names",
    "merge_stores",
    "parse_shard",
    "policy_descriptions",
    "policy_names",
    "renderer",
    "set_default_session",
    "stat_invariants",
    "submit_sweep",
    "summarize",
]
