"""Persistent, append-only sweep result stores.

A :class:`ResultStore` is a JSONL file of
:meth:`repro.api.result.SimResult.to_dict` rows, headed by a record
naming the sweep it belongs to.  It is the durable complement of the
in-process result cache: shards of a sweep running on different
machines (or CI matrix jobs) each write their own store, the files are
merged with :func:`merge_stores`, and
:meth:`repro.api.session.Session.sweep` resumes a partially completed
sweep by skipping every point whose key the store already holds.

Properties the design leans on:

* **append-only** — rows are only ever added, one JSON object per
  line, flushed as each result lands, so a crashed or interrupted
  sweep keeps everything it finished (a torn trailing line is ignored
  on load);
* **dedupe by cache key** — :meth:`ResultStore.load` keeps the last
  row per :meth:`SimConfig.key`, so re-appends and merged overlaps are
  harmless;
* **sweep identity** — the header records a
  :meth:`~repro.api.spec.SweepSpec.sweep_id`; binding a store to a
  different sweep (or merging stores of different sweeps) raises
  instead of silently mixing results.

Besides result rows a store holds **annotation rows**
(:class:`Annotation`, ``"record": "annotation"``): structured anomaly
records the online :class:`~repro.api.inspect.SweepInspector` appends
when a landed result fails validation.  Row kinds share one last-wins
timeline per cache key — an annotation with ``quarantine=True`` marks
the key's result as suspect (``Session.sweep`` then treats it as
not-yet-simulated, so a resumed sweep re-runs exactly the quarantined
points), and a *later* result row for the same key lifts the
quarantine again.  Readers that predate the annotation row kind skip
the unknown rows; result rows have never carried a ``record`` tag, so
new readers parse old stores unchanged.

:func:`summarize` aggregates a store's rows into the per-workload
means (:mod:`repro.analysis.aggregate`) that
:func:`repro.harness.report.render_sweep_summary` prints.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (IO, Any, Dict, Iterable, List, Optional, Sequence,
                    Union)

from repro.analysis.aggregate import arithmetic_mean, geometric_mean
from repro.api.result import SimResult

#: store-file schema (bump on incompatible row/header changes)
STORE_SCHEMA = 1

#: the header record's discriminator value
_HEADER_RECORD = "header"
#: the annotation-row discriminator value (result rows carry no tag)
_ANNOTATION_RECORD = "annotation"

PathLike = Union[str, Path]


@dataclass
class Annotation:
    """One structured anomaly record attached to a sweep point.

    Written by the :class:`~repro.api.inspect.SweepInspector` as its
    durable verdict on a landed result: *which* point (cache ``key``),
    *what* failed (``check`` — e.g. ``"invariant"``, ``"outlier"``,
    ``"straggler"``), human-readable ``detail``, and whether the point
    is ``quarantine``\\ d (its stored result is suspect and must be
    re-simulated on resume) or merely noted (operational alarms).
    ``values`` carries the measurements behind the verdict.
    """

    key: str
    check: str
    detail: str
    workload: str = ""
    #: expansion index of the point, when known (``None`` otherwise)
    index: Optional[int] = None
    quarantine: bool = True
    values: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready store row (tagged with the annotation kind)."""
        payload: Dict[str, Any] = {
            "record": _ANNOTATION_RECORD,
            "schema": STORE_SCHEMA,
            "key": self.key,
            "check": self.check,
            "detail": self.detail,
            "workload": self.workload,
            "quarantine": self.quarantine,
        }
        if self.index is not None:
            payload["index"] = self.index
        if self.values:
            payload["values"] = dict(self.values)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Annotation":
        """Rebuild an annotation from a :meth:`to_dict` row."""
        index = data.get("index")
        return cls(key=str(data["key"]), check=str(data["check"]),
                   detail=str(data.get("detail", "")),
                   workload=str(data.get("workload", "")),
                   index=None if index is None else int(index),
                   quarantine=bool(data.get("quarantine", True)),
                   values=dict(data.get("values") or {}))


class ResultStore:
    """An append-only JSONL store of simulation results for one sweep.

    Parameters
    ----------
    path:
        The JSONL file.  Created (with its parent directory) on the
        first append; an existing file is picked up where it left off.
    sweep_id:
        The owning sweep's identity.  ``None`` adopts whatever an
        existing header declares (or leaves the store unbound); a
        value that contradicts an existing header raises
        ``ValueError``.
    """

    def __init__(self, path: PathLike,
                 sweep_id: Optional[str] = None) -> None:
        self.path = Path(path)
        self.sweep_id = sweep_id
        #: keys present in the file (insertion order, last-write wins)
        self._results: Dict[str, SimResult] = {}
        #: annotation rows, latest per key (insertion order)
        self._annotations: Dict[str, Annotation] = {}
        #: keys whose stored result is currently quarantined
        self._quarantined: set = set()
        #: rows dropped on load (torn/corrupt lines)
        self.skipped_rows = 0
        self._handle: Optional[IO[str]] = None
        self._header_written = False
        if self.path.is_file():
            self._load_existing()

    @classmethod
    def for_sweep(cls, directory: PathLike,
                  sweep_id: str) -> "ResultStore":
        """The canonical per-sweep store inside *directory*.

        One file per sweep — ``sweep-<id>.jsonl`` — which is how the
        ``repro serve`` daemon lays out its store directory: any
        process that knows a spec can derive its
        :meth:`~repro.api.spec.SweepSpec.sweep_id` and find (or
        resume) the matching store without coordination.
        """
        return cls(Path(directory) / f"sweep-{sweep_id}.jsonl",
                   sweep_id=sweep_id)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    # torn trailing write from an interrupted run
                    self.skipped_rows += 1
                    continue
                if not isinstance(payload, dict):
                    self.skipped_rows += 1
                    continue
                if payload.get("record") == _HEADER_RECORD:
                    self._header_written = True
                    self._adopt_sweep_id(payload.get("sweep_id"))
                    continue
                if payload.get("record") == _ANNOTATION_RECORD:
                    try:
                        annotation = Annotation.from_dict(payload)
                    except (KeyError, ValueError, TypeError):
                        self.skipped_rows += 1
                        continue
                    self._absorb_annotation(annotation)
                    continue
                try:
                    result = SimResult.from_dict(payload)
                except (KeyError, ValueError, TypeError):
                    self.skipped_rows += 1
                    continue
                self._results[result.key] = result
                # a result row AFTER a quarantine annotation is the
                # re-run that replaces the suspect data: lifts it
                self._quarantined.discard(result.key)

    def _adopt_sweep_id(self, header_id: Optional[str]) -> None:
        if header_id is None:
            return
        if self.sweep_id is None:
            self.sweep_id = header_id
        elif self.sweep_id != header_id:
            raise ValueError(
                f"store {self.path} belongs to sweep {header_id!r}, "
                f"not {self.sweep_id!r}")

    def bind(self, sweep_id: str) -> "ResultStore":
        """Attach the store to a sweep; mismatches raise.

        ``Session.sweep`` binds the spec's id before running so a
        resume against the wrong spec fails fast instead of merging
        unrelated results.
        """
        if self.sweep_id is None:
            self.sweep_id = sweep_id
        elif self.sweep_id != sweep_id:
            raise ValueError(
                f"store {self.path} belongs to sweep "
                f"{self.sweep_id!r}, not {sweep_id!r}")
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        """Cache keys present, in first-seen order."""
        return list(self._results)

    def get(self, key: str) -> Optional[SimResult]:
        """The stored result for *key* (last write wins), or ``None``."""
        return self._results.get(key)

    def results(self) -> List[SimResult]:
        """Deduped results, one per key, in first-seen order."""
        return list(self._results.values())

    def load(self) -> Dict[str, SimResult]:
        """Key -> result mapping (deduped, last write per key wins)."""
        return dict(self._results)

    def annotations(self) -> List[Annotation]:
        """Latest annotation per key, in first-annotated order."""
        return list(self._annotations.values())

    def annotation(self, key: str) -> Optional[Annotation]:
        """The latest annotation for *key*, or ``None``."""
        return self._annotations.get(key)

    def quarantined(self, key: str) -> bool:
        """Whether *key*'s stored result is currently quarantined."""
        return key in self._quarantined

    def quarantined_keys(self) -> List[str]:
        """Keys whose stored result is suspect, in annotation order."""
        return [key for key in self._annotations
                if key in self._quarantined]

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:
        return (f"ResultStore({str(self.path)!r}, "
                f"sweep_id={self.sweep_id!r}, rows={len(self)})")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # a torn trailing write (no final newline) must not corrupt
            # the next row: start appends on a fresh line
            needs_newline = False
            if self.path.is_file() and self.path.stat().st_size > 0:
                with open(self.path, "rb") as peek:
                    peek.seek(-1, os.SEEK_END)
                    needs_newline = peek.read(1) != b"\n"
            self._handle = open(self.path, "a")
            if needs_newline:
                self._handle.write("\n")
        return self._handle

    def _write_row(self, payload: Dict[str, Any]) -> None:
        handle = self._open()
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def _ensure_header(self) -> None:
        if self._header_written:
            return
        self._write_row({"record": _HEADER_RECORD,
                         "schema": STORE_SCHEMA,
                         "sweep_id": self.sweep_id})
        self._header_written = True

    def touch(self) -> "ResultStore":
        """Materialise the file (header included) even with zero rows.

        An empty shard of a sweep must still leave a mergeable store
        artifact behind, so ``Session.sweep`` touches its store up
        front.
        """
        self._ensure_header()
        return self

    def append(self, result: SimResult) -> None:
        """Append one result row (flushed immediately, crash-safe).

        A fresh result row is the last word on its key: any standing
        quarantine is lifted, matching the load-time timeline.
        """
        self._ensure_header()
        self._write_row(result.to_dict())
        self._results[result.key] = result
        self._quarantined.discard(result.key)

    def add(self, result: SimResult) -> bool:
        """Append *result* unless its key is already stored.

        Returns ``True`` when a row was written — the idempotent
        variant sweeps use so resumed runs never bloat the log.  A
        quarantined key accepts the append (the re-run replaces the
        suspect row and lifts the quarantine).
        """
        if result.key in self._results and \
                result.key not in self._quarantined:
            return False
        self.append(result)
        return True

    def _absorb_annotation(self, annotation: Annotation) -> None:
        self._annotations[annotation.key] = annotation
        if annotation.quarantine:
            self._quarantined.add(annotation.key)

    def annotate(self, annotation: Annotation) -> None:
        """Append one annotation row (flushed, last-wins by key).

        With ``quarantine=True`` the key's stored result becomes
        suspect: :meth:`quarantined` reports it, resume-aware callers
        re-simulate the point, and the next :meth:`append` for the key
        lifts the quarantine again.
        """
        self._ensure_header()
        self._write_row(annotation.to_dict())
        self._absorb_annotation(annotation)

    def extend(self, results: Iterable[SimResult]) -> int:
        """``add`` each result; returns how many rows were written."""
        return sum(1 for result in results if self.add(result))

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def merge_stores(destination: PathLike, sources: Sequence[PathLike],
                 sweep_id: Optional[str] = None) -> ResultStore:
    """Merge *sources* into one store at *destination* (returned open).

    Rows are deduped by cache key — the first source holding a key
    wins, matching shard semantics where any duplicate row carries
    identical statistics.  Sweep ids must agree across every source
    (and *destination*, if it already exists); ``None`` headers are
    tolerated and adopt the first concrete id seen.  A source path
    that does not exist raises ``FileNotFoundError`` — a typo or an
    unmatched glob must not silently merge into an empty store.
    """
    missing = [str(source) for source in sources
               if not Path(source).is_file()]
    if missing:
        raise FileNotFoundError(
            f"result store(s) not found: {', '.join(missing)}")
    merged = ResultStore(destination, sweep_id=sweep_id)
    for source in sources:
        store = ResultStore(source)
        if store.sweep_id is not None:
            merged._adopt_sweep_id(store.sweep_id)
        merged.extend(store.results())
        # carry only annotations still standing in their source: a
        # quarantine a later result row already lifted stays lifted
        for annotation in store.annotations():
            if annotation.quarantine and \
                    not store.quarantined(annotation.key):
                continue
            if annotation.key not in merged._annotations:
                merged.annotate(annotation)
        store.close()
    return merged


def _aggregate(rows: List[SimResult]) -> Dict[str, Any]:
    return {
        "points": len(rows),
        "mean_cpi": arithmetic_mean([r.cpi for r in rows]),
        "geomean_ipc": geometric_mean([r.ipc for r in rows]),
        "mean_cycles": arithmetic_mean(
            [float(r.stats["cycles"]) for r in rows]),
    }


def summarize(results: Iterable[SimResult]) -> Dict[str, Any]:
    """Aggregate results into the per-workload summary the CLI prints.

    Returns ``{"points", "simulated", "workloads": {name: {"points",
    "mean_cpi", "geomean_ipc", "mean_cycles"}}}`` — the means come from
    :mod:`repro.analysis.aggregate`, and
    :func:`repro.harness.report.render_sweep_summary` turns the payload
    into a table.  When the results span more than one allocation
    policy (a ``policy-compare`` style sweep) a ``"policies"`` section
    with the same per-group aggregates is included — each policy's
    entry additionally carrying a per-workload ``"workloads"``
    breakdown, which the renderer turns into a grouped bar chart
    (:func:`repro.harness.charts.grouped_bar_chart`) keyed by the
    ``policy`` axis — so policy sweeps render a policy breakdown
    without any special-casing upstream.  When the results include the
    default (``ltp``) policy as a baseline, each other policy's entry
    also carries ``"ed2p_pct"`` — the mean energy-delay-squared delta
    against the ltp rows of the same workloads, through the
    policy-aware energy model (:mod:`repro.energy.model`).
    """
    by_workload: Dict[str, List[SimResult]] = {}
    by_policy: Dict[str, List[SimResult]] = {}
    total = simulated = 0
    for result in results:
        total += 1
        if not result.cached:
            simulated += 1
        by_workload.setdefault(result.config.workload, []).append(result)
        by_policy.setdefault(result.config.policy, []).append(result)
    workloads = {name: _aggregate(rows)
                 for name, rows in sorted(by_workload.items())}
    summary: Dict[str, Any] = {"points": total, "simulated": simulated,
                               "workloads": workloads}
    if len(by_policy) > 1:
        baselines = _policy_energy_baselines(by_policy)
        policies: Dict[str, Any] = {}
        for name, rows in sorted(by_policy.items()):
            per_workload: Dict[str, List[SimResult]] = {}
            for row in rows:
                per_workload.setdefault(row.config.workload,
                                        []).append(row)
            entry = _aggregate(rows)
            entry["workloads"] = {
                workload: _aggregate(group)
                for workload, group in sorted(per_workload.items())}
            ed2p = _policy_ed2p(name, rows, baselines)
            if ed2p is not None:
                entry["ed2p_pct"] = ed2p
            policies[name] = entry
        summary["policies"] = policies
    return summary


def _policy_energy_baselines(by_policy: Dict[str, List[SimResult]],
                             ) -> Dict[str, Any]:
    """workload -> ltp-policy :class:`EnergyBreakdown` baseline."""
    from repro.energy.model import compute_energy
    from repro.policies import DEFAULT_POLICY
    baselines: Dict[str, Any] = {}
    for row in by_policy.get(DEFAULT_POLICY, []):
        workload = row.config.workload
        if workload not in baselines:
            baselines[workload] = compute_energy(
                row.config.core, row.config.ltp, row.stats,
                policy=DEFAULT_POLICY)
    return baselines


def _policy_ed2p(name: str, rows: List[SimResult],
                 baselines: Dict[str, Any]) -> Optional[float]:
    """Mean ED2P delta (percent) of *name* vs the ltp baselines.

    ``None`` when *name* is the baseline itself or no workload of
    *rows* has a baseline row to compare against.
    """
    from repro.energy.model import compute_energy, relative_ed2p
    from repro.policies import DEFAULT_POLICY
    if name == DEFAULT_POLICY or not baselines:
        return None
    deltas = []
    for row in rows:
        base = baselines.get(row.config.workload)
        if base is None:
            continue
        test = compute_energy(row.config.core, row.config.ltp,
                              row.stats, policy=name)
        deltas.append(relative_ed2p(test, base))
    if not deltas:
        return None
    return sum(deltas) / len(deltas)
