"""``RemoteExecutor``: dispatch submitted configs over a worker fleet.

Registered as ``"remote"``.  A static list of ``HOST:PORT`` worker
addresses becomes one :class:`~repro.api.exec.ExecutorBackend`: each
drive (`as_completed`) connects one link per reachable worker, runs a
dispatcher thread per link that pops queued futures and round-trips
them as framed ``run`` requests, and funnels every dispatcher
observation through a single message queue back to the driving thread
— so lifecycle events keep their exactly-once guarantees and are
delivered on the thread iterating ``as_completed()``, exactly like
the local executors.

Failure semantics:

* a worker answering ``ok: false`` (the simulation raised) costs a
  bounded retry (``max_retries``), re-queued so any healthy worker —
  not necessarily the failing one — picks it up;
* a worker going silent longer than ``heartbeat_timeout`` (workers
  heartbeat every couple of seconds while simulating) or dropping the
  connection marks the *link* dead: its in-flight item is retried on
  the surviving links and the dead link dispatches nothing more this
  drive (the next drive reconnects from scratch);
* when retries are exhausted — or no links survive — the item's
  future resolves with :class:`~repro.api.exec.WorkerFailure`; a
  drive that cannot reach *any* worker raises
  :class:`WorkerFleetError` instead of failing items one by one.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.exec import (EVENT_FAILED, EVENT_FINISHED, EVENT_RETRIED,
                            EVENT_STARTED, ExecutorBackend, SimFuture,
                            WorkerFailure)
from repro.api.executors import register_executor
from repro.api.remote.protocol import (ProtocolError, connect,
                                       format_address, parse_address,
                                       recv_frame, send_frame)
from repro.api.result import SimResult

WorkerAddress = Union[str, Tuple[str, int]]


class WorkerFleetError(RuntimeError):
    """No worker of the configured fleet is reachable."""


class _WorkerLink:
    """One live connection to one worker."""

    def __init__(self, address: Tuple[str, int],
                 connect_timeout: float,
                 heartbeat_timeout: float) -> None:
        self.address = address
        self.label = format_address(address)
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self._sock: Optional[socket.socket] = None

    def open(self) -> bool:
        """Connect and ping; ``False`` when the worker is unreachable."""
        try:
            sock = connect(self.address, timeout=self.connect_timeout)
            sock.settimeout(self.heartbeat_timeout)
            send_frame(sock, {"op": "ping"})
            reply = recv_frame(sock)
            if reply is None or not reply.get("ok"):
                sock.close()
                return False
        except (OSError, ProtocolError):
            return False
        self._sock = sock
        return True

    def run(self, future: SimFuture) -> dict:
        """Round-trip one config; heartbeats reset the silence clock."""
        assert self._sock is not None
        send_frame(self._sock, {
            "op": "run", "id": future.key,
            "config": future.config.to_dict(),
            "use_cache": future.use_cache})
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ProtocolError(
                    f"worker {self.label} closed the connection "
                    f"mid-run")
            if frame.get("op") == "heartbeat":
                continue  # still simulating; the timeout restarts
            return frame

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


@register_executor("remote",
                   options=("workers", "max_retries", "connect_timeout",
                            "heartbeat_timeout"))
class RemoteExecutor(ExecutorBackend):
    """Fan submitted configurations over TCP simulation workers."""

    name = "remote"

    def __init__(self, workers: Sequence[WorkerAddress] = (),
                 max_retries: int = 1,
                 connect_timeout: float = 5.0,
                 heartbeat_timeout: float = 15.0) -> None:
        super().__init__(max_retries=max_retries)
        if isinstance(workers, str):
            workers = [part for part in workers.split(",") if part]
        self.addresses: List[Tuple[str, int]] = []
        for worker in workers:
            if isinstance(worker, str):
                self.addresses.append(parse_address(worker))
            else:
                host, port = worker
                self.addresses.append((str(host), int(port)))
        if not self.addresses:
            raise ValueError(
                "the remote executor needs at least one worker "
                "address (workers=[\"HOST:PORT\", ...]; start them "
                "with `repro worker --listen HOST:PORT`)")
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout

    # ------------------------------------------------------------------
    def as_completed(self) -> Iterator[SimFuture]:
        total = len(self._queue)
        if total == 0:
            return
        self._cancelling = False
        if all(future.cancelled() for future in self._queue):
            # nothing left to execute (Session._drive's failure path
            # re-drains after cancel_all): no sockets needed
            while self._queue:
                yield self._queue.popleft()
            return
        yield from self._drive(total)

    def _drive(self, total: int) -> Iterator[SimFuture]:
        links = [_WorkerLink(address, self.connect_timeout,
                             self.heartbeat_timeout)
                 for address in self.addresses]
        links = [link for link in links if link.open()]
        if not links:
            fleet = ", ".join(format_address(a) for a in self.addresses)
            raise WorkerFleetError(
                f"none of the {len(self.addresses)} configured "
                f"worker(s) are reachable: {fleet}")

        messages: "queue.SimpleQueue" = queue.SimpleQueue()
        work = threading.Condition()
        stop = threading.Event()
        alive = len(links)
        threads = [threading.Thread(
            target=self._serve_link, args=(link, messages, work, stop),
            name=f"repro-remote-{link.label}", daemon=True)
            for link in links]
        for thread in threads:
            thread.start()

        yielded = 0
        try:
            while yielded < total:
                kind, future, payload = messages.get()
                if kind == "dispatch":
                    # first dispatch = the item started; redispatches
                    # already emitted their `retried` event
                    if future.attempts == 0 and not future.cancelled():
                        future.attempts = 1
                        future._set_running()
                        self._emit(EVENT_STARTED, future)
                    continue
                if kind == "drop":  # cancelled before dispatch
                    yield future
                    yielded += 1
                    continue
                if kind == "lost":
                    alive -= 1
                if future.cancelled():
                    # cancelled between the dispatcher's pop and now:
                    # the `cancelled` event already fired, so discard
                    # the outcome rather than double-resolving
                    yield future
                    yielded += 1
                elif kind == "done":
                    stats, wall, source = payload
                    result = SimResult(
                        config=future.config, stats=stats,
                        key=future.key, source=source,
                        wall_time_s=wall, backend=self.name)
                    future._set_result(result)
                    self._emit(EVENT_FINISHED, future, source=source,
                               wall_time_s=wall)
                    yield future
                    yielded += 1
                else:  # "error" or "lost": retry or surface
                    if (future.attempts <= self.max_retries
                            and alive > 0 and not self._cancelling):
                        self._emit(EVENT_RETRIED, future, error=payload)
                        future.attempts += 1
                        with work:
                            self._queue.append(future)
                            work.notify()
                    else:
                        yield self._fail(future, payload)
                        yielded += 1
                if alive == 0 and yielded < total:
                    # fleet collapsed: nothing queued can ever run
                    for pending in self._collapse():
                        yield pending
                        yielded += 1
        finally:
            stop.set()
            with work:
                work.notify_all()
            for link in links:
                link.close()
            for thread in threads:
                thread.join(timeout=2.0)

    def _fail(self, future: SimFuture, error: str) -> SimFuture:
        failure = WorkerFailure(
            f"{future.config.workload} ({future.key}) failed after "
            f"{future.attempts} attempt(s): {error}",
            attempts=future.attempts)
        self._emit(EVENT_FAILED, future, error=error)
        future._set_exception(failure)
        return future

    def _collapse(self) -> Iterator[SimFuture]:
        """Resolve everything still queued once no links survive."""
        while self._queue:
            pending = self._queue.popleft()
            if pending.cancelled() or pending.done():
                yield pending
                continue
            yield self._fail(pending, "no reachable workers left")

    def _serve_link(self, link: _WorkerLink, messages, work,
                    stop: threading.Event) -> None:
        """Dispatcher thread: pop queued futures, round-trip them."""
        while not stop.is_set():
            with work:
                try:
                    future = self._queue.popleft()
                except IndexError:
                    work.wait(timeout=0.05)
                    continue
            if future.cancelled():
                messages.put(("drop", future, None))
                continue
            messages.put(("dispatch", future, None))
            try:
                frame = link.run(future)
            except (OSError, ProtocolError) as exc:
                link.close()
                messages.put((
                    "lost", future,
                    f"worker {link.label} lost: {exc}"))
                return  # this link is done for the drive
            if frame.get("op") != "done":
                link.close()
                messages.put((
                    "lost", future,
                    f"worker {link.label} sent unexpected "
                    f"{frame.get('op')!r} frame"))
                return
            if frame.get("ok"):
                messages.put(("done", future, (
                    frame.get("stats") or {},
                    float(frame.get("wall_time_s", 0.0)),
                    str(frame.get("source", "simulated")))))
            else:
                messages.put(("error", future,
                              str(frame.get("error", "worker error"))))

    def __repr__(self) -> str:
        fleet = ",".join(format_address(a) for a in self.addresses)
        return f"RemoteExecutor(workers=[{fleet}])"
