"""``RemoteExecutor``: dispatch submitted configs over a worker fleet.

Registered as ``"remote"``.  A static list of ``HOST:PORT`` worker
addresses becomes one :class:`~repro.api.exec.ExecutorBackend`: each
drive (`as_completed`) connects one link per reachable worker, runs a
dispatcher thread per link that pops queued futures and round-trips
them, and funnels every dispatcher observation through a single
message queue back to the driving thread — so lifecycle events keep
their exactly-once guarantees and are delivered on the thread
iterating ``as_completed()``, exactly like the local executors.

Dispatch is batched: each pop takes a whole
:class:`~repro.api.exec.BatchWorkItem` (trace-identical futures, up
to ``batch_size``), shipped as one ``run_batch`` frame so the worker
pays one trace generation and predecode for the group.  Results come
back as streamed ``point_done`` sub-frames, so every point still
starts, finishes, fails and retries individually; a single-future
batch uses the original ``run`` frame unchanged.

Failure semantics:

* a worker answering ``ok: false`` (the simulation raised) costs a
  bounded retry (``max_retries``), re-queued so any healthy worker —
  not necessarily the failing one — picks it up;
* a worker going silent longer than ``heartbeat_timeout`` (workers
  heartbeat every couple of seconds while simulating) or dropping the
  connection marks the *link* dead: its in-flight items are retried on
  the surviving links and the dead link dispatches nothing more this
  drive (the next drive reconnects from scratch).  A worker dying
  mid-batch loses only the batch's *unfinished* points — every
  ``point_done`` already streamed stays resolved, so the retry
  re-dispatches (and the store re-simulates) nothing that completed;
* when retries are exhausted — or no links survive — the item's
  future resolves with :class:`~repro.api.exec.WorkerFailure`; a
  drive that cannot reach *any* worker raises
  :class:`WorkerFleetError` instead of failing items one by one.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.exec import (DEFAULT_BATCH_SIZE, EVENT_FAILED,
                            EVENT_FINISHED, EVENT_RETRIED, EVENT_STARTED,
                            ExecutorBackend, SimFuture, WorkerFailure)
from repro.api.executors import register_executor
from repro.api.remote.protocol import (ProtocolError, connect,
                                       format_address, parse_address,
                                       recv_frame, send_frame)
from repro.api.result import SimResult

WorkerAddress = Union[str, Tuple[str, int]]


class WorkerFleetError(RuntimeError):
    """No worker of the configured fleet is reachable."""


class _WorkerLink:
    """One live connection to one worker."""

    def __init__(self, address: Tuple[str, int],
                 connect_timeout: float,
                 heartbeat_timeout: float) -> None:
        self.address = address
        self.label = format_address(address)
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self._sock: Optional[socket.socket] = None

    def open(self) -> bool:
        """Connect and ping; ``False`` when the worker is unreachable."""
        try:
            sock = connect(self.address, timeout=self.connect_timeout)
            sock.settimeout(self.heartbeat_timeout)
            send_frame(sock, {"op": "ping"})
            reply = recv_frame(sock)
            if reply is None or not reply.get("ok"):
                sock.close()
                return False
        except (OSError, ProtocolError):
            return False
        self._sock = sock
        return True

    def run(self, future: SimFuture) -> dict:
        """Round-trip one config; heartbeats reset the silence clock."""
        assert self._sock is not None
        send_frame(self._sock, {
            "op": "run", "id": future.key,
            "config": future.config.to_dict(),
            "use_cache": future.use_cache})
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ProtocolError(
                    f"worker {self.label} closed the connection "
                    f"mid-run")
            if frame.get("op") == "heartbeat":
                continue  # still simulating; the timeout restarts
            return frame

    def run_batch(self, futures: Sequence[SimFuture]):
        """Round-trip one trace-identity batch as a ``run_batch`` frame.

        Yields ``(position, frame)`` for each streamed ``point_done``
        (``position`` indexes into *futures*), returning after the
        trailing ``done`` frame.  Heartbeats and point completions
        both reset the silence clock, so stragglers are judged per
        point, not per batch.
        """
        assert self._sock is not None
        send_frame(self._sock, {
            "op": "run_batch", "id": futures[0].key,
            "items": [{"config": future.config.to_dict(),
                       "use_cache": future.use_cache}
                      for future in futures]})
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ProtocolError(
                    f"worker {self.label} closed the connection "
                    f"mid-batch")
            op = frame.get("op")
            if op == "heartbeat":
                continue  # still simulating; the timeout restarts
            if op == "point_done":
                yield int(frame.get("index", -1)), frame
                continue
            if op == "done":
                return  # caller resolves any unfinished leftovers
            raise ProtocolError(
                f"worker {self.label} sent unexpected {op!r} frame "
                f"mid-batch")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


@register_executor("remote",
                   options=("workers", "max_retries", "connect_timeout",
                            "heartbeat_timeout", "batch_size"))
class RemoteExecutor(ExecutorBackend):
    """Fan submitted configurations over TCP simulation workers."""

    name = "remote"

    def __init__(self, workers: Sequence[WorkerAddress] = (),
                 max_retries: int = 1,
                 connect_timeout: float = 5.0,
                 heartbeat_timeout: float = 15.0,
                 batch_size: Optional[int] = None) -> None:
        super().__init__(max_retries=max_retries, batch_size=batch_size)
        if isinstance(workers, str):
            workers = [part for part in workers.split(",") if part]
        self.addresses: List[Tuple[str, int]] = []
        for worker in workers:
            if isinstance(worker, str):
                self.addresses.append(parse_address(worker))
            else:
                host, port = worker
                self.addresses.append((str(host), int(port)))
        if not self.addresses:
            raise ValueError(
                "the remote executor needs at least one worker "
                "address (workers=[\"HOST:PORT\", ...]; start them "
                "with `repro worker --listen HOST:PORT`)")
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout

    # ------------------------------------------------------------------
    def as_completed(self) -> Iterator[SimFuture]:
        total = len(self._queue)
        if total == 0:
            return
        self._cancelling = False
        if all(future.cancelled() for future in self._queue):
            # nothing left to execute (Session._drive's failure path
            # re-drains after cancel_all): no sockets needed
            while self._queue:
                yield self._queue.popleft()
            return
        yield from self._drive(total)

    def _drive(self, total: int) -> Iterator[SimFuture]:
        links = [_WorkerLink(address, self.connect_timeout,
                             self.heartbeat_timeout)
                 for address in self.addresses]
        links = [link for link in links if link.open()]
        if not links:
            fleet = ", ".join(format_address(a) for a in self.addresses)
            raise WorkerFleetError(
                f"none of the {len(self.addresses)} configured "
                f"worker(s) are reachable: {fleet}")

        messages: "queue.SimpleQueue" = queue.SimpleQueue()
        work = threading.Condition()
        stop = threading.Event()
        alive = len(links)
        threads = [threading.Thread(
            target=self._serve_link, args=(link, messages, work, stop),
            name=f"repro-remote-{link.label}", daemon=True)
            for link in links]
        for thread in threads:
            thread.start()

        yielded = 0
        try:
            while yielded < total:
                kind, future, payload = messages.get()
                if kind == "dispatch":
                    # first dispatch = the item started; redispatches
                    # already emitted their `retried` event
                    if future.attempts == 0 and not future.cancelled():
                        future.attempts = 1
                        future._set_running()
                        self._emit(EVENT_STARTED, future)
                    continue
                if kind == "drop":  # cancelled before dispatch
                    yield future
                    yielded += 1
                    continue
                if kind == "lost":
                    # a dead link surfaces once, carrying every future
                    # it still had in flight (a batch loses only its
                    # unfinished points — streamed point_done results
                    # already resolved through "done"/"error")
                    alive -= 1
                    for item in future:
                        if item.cancelled():
                            yield item
                            yielded += 1
                        else:
                            landed = self._retry_or_fail(
                                item, payload, alive, work)
                            if landed is not None:
                                yield landed
                                yielded += 1
                elif future.cancelled():
                    # cancelled between the dispatcher's pop and now:
                    # the `cancelled` event already fired, so discard
                    # the outcome rather than double-resolving
                    yield future
                    yielded += 1
                elif kind == "done":
                    stats, wall, source = payload
                    result = SimResult(
                        config=future.config, stats=stats,
                        key=future.key, source=source,
                        wall_time_s=wall, backend=self.name)
                    future._set_result(result)
                    self._emit(EVENT_FINISHED, future, source=source,
                               wall_time_s=wall)
                    yield future
                    yielded += 1
                else:  # "error": retry or surface
                    landed = self._retry_or_fail(future, payload,
                                                 alive, work)
                    if landed is not None:
                        yield landed
                        yielded += 1
                if alive == 0 and yielded < total:
                    # fleet collapsed: nothing queued can ever run
                    for pending in self._collapse():
                        yield pending
                        yielded += 1
        finally:
            stop.set()
            with work:
                work.notify_all()
            for link in links:
                link.close()
            for thread in threads:
                thread.join(timeout=2.0)

    def _retry_or_fail(self, future: SimFuture, error: str, alive: int,
                       work) -> Optional[SimFuture]:
        """Re-queue a failed point (bounded) or surface its failure.

        Returns the resolved future when it failed terminally, or
        ``None`` when it went back on the queue for another worker.
        """
        if (future.attempts <= self.max_retries
                and alive > 0 and not self._cancelling):
            self._emit(EVENT_RETRIED, future, error=error)
            future.attempts += 1
            with work:
                self._queue.append(future)
                work.notify()
            return None
        return self._fail(future, error)

    def _fail(self, future: SimFuture, error: str) -> SimFuture:
        failure = WorkerFailure(
            f"{future.config.workload} ({future.key}) failed after "
            f"{future.attempts} attempt(s): {error}",
            attempts=future.attempts)
        self._emit(EVENT_FAILED, future, error=error)
        future._set_exception(failure)
        return future

    def _collapse(self) -> Iterator[SimFuture]:
        """Resolve everything still queued once no links survive."""
        while self._queue:
            pending = self._queue.popleft()
            if pending.cancelled() or pending.done():
                yield pending
                continue
            yield self._fail(pending, "no reachable workers left")

    def _serve_link(self, link: _WorkerLink, messages, work,
                    stop: threading.Event) -> None:
        """Dispatcher thread: pop queued batches, round-trip them.

        Singleton batches ride the original ``run`` frame; larger ones
        ship as ``run_batch`` and resolve point by point from the
        streamed ``point_done`` frames, so a link dying mid-batch
        reports only the points that had not finished.
        """
        limit = (self.batch_size if self.batch_size is not None
                 else DEFAULT_BATCH_SIZE)
        while not stop.is_set():
            with work:
                batch = self._next_batch(limit)
                if batch is None:
                    work.wait(timeout=0.05)
                    continue
            futures = batch.futures
            if len(futures) == 1:
                if not self._serve_single(link, futures[0], messages):
                    return  # this link is done for the drive
                continue
            for future in futures:
                messages.put(("dispatch", future, None))
            unresolved = dict(enumerate(futures))
            try:
                for position, frame in link.run_batch(futures):
                    future = unresolved.pop(position, None)
                    if future is None:
                        raise ProtocolError(
                            f"worker {link.label} answered for "
                            f"unknown batch point {position}")
                    if frame.get("ok"):
                        messages.put(("done", future, (
                            frame.get("stats") or {},
                            float(frame.get("wall_time_s", 0.0)),
                            str(frame.get("source", "simulated")))))
                    else:
                        messages.put((
                            "error", future,
                            str(frame.get("error", "worker error"))))
            except (OSError, ProtocolError) as exc:
                link.close()
                messages.put((
                    "lost", [unresolved[pos] for pos in sorted(unresolved)],
                    f"worker {link.label} lost mid-batch: {exc}"))
                return
            if unresolved:
                # the worker ended the batch early (defensive): treat
                # the unanswered points exactly like a lost link
                link.close()
                messages.put((
                    "lost", [unresolved[pos] for pos in sorted(unresolved)],
                    f"worker {link.label} ended a batch with "
                    f"{len(unresolved)} point(s) unanswered"))
                return

    def _serve_single(self, link: _WorkerLink, future: SimFuture,
                      messages) -> bool:
        """One future over the legacy ``run`` frame; ``False`` when the
        link died and must stop dispatching."""
        if future.cancelled():
            messages.put(("drop", future, None))
            return True
        messages.put(("dispatch", future, None))
        try:
            frame = link.run(future)
        except (OSError, ProtocolError) as exc:
            link.close()
            messages.put((
                "lost", [future],
                f"worker {link.label} lost: {exc}"))
            return False
        if frame.get("op") != "done":
            link.close()
            messages.put((
                "lost", [future],
                f"worker {link.label} sent unexpected "
                f"{frame.get('op')!r} frame"))
            return False
        if frame.get("ok"):
            messages.put(("done", future, (
                frame.get("stats") or {},
                float(frame.get("wall_time_s", 0.0)),
                str(frame.get("source", "simulated")))))
        else:
            messages.put(("error", future,
                          str(frame.get("error", "worker error"))))
        return True

    def __repr__(self) -> str:
        fleet = ",".join(format_address(a) for a in self.addresses)
        return f"RemoteExecutor(workers=[{fleet}])"
