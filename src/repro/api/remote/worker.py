"""The ``repro worker`` process: simulate configs sent over TCP.

A :class:`WorkerServer` accepts connections from
:class:`~repro.api.remote.executor.RemoteExecutor` (or the daemon's
fleet), reads framed ``run`` requests carrying a serialized
:class:`~repro.harness.config.SimConfig`, simulates through an
ordinary :class:`~repro.api.session.Session`, and answers with a
``done`` frame holding the statistics, wall time and cache provenance
— or ``ok: false`` plus the stringified error, which the dispatching
executor turns into a bounded retry.

``run_batch`` requests carry a whole trace-identity batch of configs;
the worker drives them through one
:class:`~repro.api.session.BatchRunner` (one trace generation, one
predecode) and streams a ``point_done`` frame per point as it
finishes, then a trailing ``done``.  The server's session is
persistent across frames and its workload objects are cached in a
bounded LRU, so sequential runs/batches of the same workload reuse the
already-built program and predecoded ``TraceArrays`` instead of
rebuilding per frame.

While a simulation is running the connection emits ``heartbeat``
frames every ``heartbeat_interval`` seconds, so a dispatcher with a
receive timeout can tell a *slow* worker (heartbeats keep arriving)
from a *dead or wedged* one (silence) without guessing how long a
simulation should take.

Concurrency model: one thread per connection, but simulations are
serialized behind a lock — a worker is one simulation slot
(parallelism comes from running more workers), and the session's
trace/oracle caches are not thread-safe.  ``port=0`` binds an
ephemeral port; the CLI prints the resolved address as
``worker listening on HOST:PORT`` so spawners can discover it.
"""

from __future__ import annotations

import queue as queue_mod
import socket
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.api.remote.protocol import (ProtocolError, recv_frame,
                                       send_frame)
from repro.api.session import Session
from repro.harness.config import SimConfig


class WorkerServer:
    """One TCP simulation worker (one simulation at a time)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 session: Optional[Session] = None,
                 heartbeat_interval: float = 2.0) -> None:
        self._session = session or Session()
        self._install_workload_cache()
        self.heartbeat_interval = heartbeat_interval
        self._run_lock = threading.Lock()
        self._closed = threading.Event()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()
        #: the resolved ``(host, port)`` (meaningful with ``port=0``)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    def _install_workload_cache(self) -> None:
        """Cache built workload objects across run/batch frames.

        The session's trace and ``TraceArrays`` LRUs already persist
        across frames, but every simulation used to rebuild its
        workload object (program assembly + memory-image generation)
        from scratch.  Wrapping the session's workload factory in a
        bounded LRU — sized with the trace LRU it shadows — removes
        that per-frame redundancy; workload objects are safe to reuse
        because ``Workload.trace`` builds a fresh interpreter per
        call.
        """
        session = self._session
        base = session._workload_factory
        cache: "OrderedDict[str, Any]" = OrderedDict()

        def factory(name: str) -> Any:
            workload = cache.get(name)
            if workload is None:
                workload = base(name)
                cache[name] = workload
            cache.move_to_end(name)
            while len(cache) > session.trace_cache_size:
                cache.popitem(last=False)
            return workload

        session._workload_factory = factory
        self._workload_cache = cache

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def start(self) -> "WorkerServer":
        """Serve in a daemon thread (the in-process test entry point)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="repro-worker-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close` (blocking)."""
        while not self._closed.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listening socket closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-worker-conn", daemon=True)
            thread.start()

    def close(self) -> None:
        """Stop accepting and unblock :meth:`serve_forever`."""
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WorkerServer(address="
                f"{self.address[0]}:{self.address[1]})")

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._closed.is_set():
                try:
                    frame = recv_frame(conn)
                except (ProtocolError, OSError):
                    return
                if frame is None:
                    return  # orderly disconnect
                try:
                    if not self._handle_frame(conn, frame):
                        return
                except OSError:
                    return  # peer went away mid-reply

    def _handle_frame(self, conn: socket.socket,
                      frame: Dict[str, Any]) -> bool:
        """Process one request; ``False`` ends the connection."""
        op = frame.get("op")
        if op == "ping":
            send_frame(conn, {"op": "pong", "ok": True})
            return True
        if op == "shutdown":
            send_frame(conn, {"op": "bye", "ok": True})
            self.close()
            return False
        if op == "run":
            self._handle_run(conn, frame)
            return True
        if op == "run_batch":
            self._handle_run_batch(conn, frame)
            return True
        send_frame(conn, {"op": "error", "ok": False,
                          "error": f"unknown op {op!r}"})
        return True

    def _handle_run(self, conn: socket.socket,
                    frame: Dict[str, Any]) -> None:
        request_id = frame.get("id")
        outcome: Dict[str, Any] = {}

        def simulate() -> None:
            try:
                config = SimConfig.from_dict(frame["config"])
                use_cache = bool(frame.get("use_cache", True))
                with self._run_lock:
                    outcome["result"] = self._session.run(
                        config, use_cache=use_cache)
            except Exception as exc:  # noqa: BLE001 - reported to peer
                outcome["error"] = f"{type(exc).__name__}: {exc}"

        thread = threading.Thread(target=simulate,
                                  name="repro-worker-sim", daemon=True)
        thread.start()
        # heartbeat while the simulation runs so the dispatcher's
        # receive timeout distinguishes slow from dead
        while True:
            thread.join(self.heartbeat_interval)
            if not thread.is_alive():
                break
            send_frame(conn, {"op": "heartbeat", "id": request_id})
        if "error" in outcome:
            send_frame(conn, {"op": "done", "id": request_id,
                              "ok": False, "error": outcome["error"]})
            return
        result = outcome["result"]
        send_frame(conn, {"op": "done", "id": request_id, "ok": True,
                          "stats": result.stats,
                          "wall_time_s": result.wall_time_s,
                          "source": result.source})

    def _send_point_done(self, conn: socket.socket,
                         payload: Dict[str, Any]) -> None:
        """Stream one per-point batch result (a test seam: failure
        injection overrides this to tear the connection mid-batch)."""
        send_frame(conn, payload)

    def _handle_run_batch(self, conn: socket.socket,
                          frame: Dict[str, Any]) -> None:
        """One trace-identity batch: stream ``point_done`` per item.

        The simulation thread drives every item through one session
        :class:`~repro.api.session.BatchRunner`; per-item outcomes
        (success or error, never an exception) flow back through a
        queue so the connection thread can interleave heartbeats with
        ``point_done`` frames while later points still simulate.
        """
        request_id = frame.get("id")
        items = frame.get("items") or []
        outcomes: "queue_mod.SimpleQueue" = queue_mod.SimpleQueue()

        def simulate() -> None:
            with self._run_lock:
                runner = None
                for position, item in enumerate(items):
                    payload: Dict[str, Any] = {
                        "op": "point_done", "id": request_id,
                        "index": position}
                    try:
                        config = SimConfig.from_dict(item["config"])
                        use_cache = bool(item.get("use_cache", True))
                        if runner is None:
                            runner = self._session.batch_runner(
                                config.workload,
                                config.warmup + config.measure)
                        result = runner.run(config, use_cache=use_cache)
                    except Exception as exc:  # noqa: BLE001 - to peer
                        payload.update(
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}")
                    else:
                        payload.update(ok=True, stats=result.stats,
                                       wall_time_s=result.wall_time_s,
                                       source=result.source)
                    outcomes.put(payload)

        thread = threading.Thread(target=simulate,
                                  name="repro-worker-sim", daemon=True)
        thread.start()
        completed = 0
        while completed < len(items):
            try:
                payload = outcomes.get(timeout=self.heartbeat_interval)
            except queue_mod.Empty:
                if not thread.is_alive():
                    break  # defensive: sim thread died unreported
                send_frame(conn, {"op": "heartbeat", "id": request_id})
                continue
            self._send_point_done(conn, payload)
            completed += 1
        send_frame(conn, {"op": "done", "id": request_id, "ok": True,
                          "completed": completed})
