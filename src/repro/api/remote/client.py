"""The thin client side of the sweep daemon protocol.

:func:`submit_sweep` is what ``repro sweep --daemon HOST:PORT`` runs:
connect, send one framed ``sweep`` request, then consume the streamed
reply — ``accepted``, any number of ``event`` / ``result`` frames,
and a final ``done`` — reconstructing
:class:`~repro.api.exec.ExecEvent` / :class:`~repro.api.result.
SimResult` objects from their wire payloads.  The results come back
in the spec's expansion order, exactly like
:meth:`Session.sweep <repro.api.session.Session.sweep>`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.api.exec import ExecEvent, WorkerFailure
from repro.api.remote.protocol import (ProtocolError, connect,
                                       parse_address, recv_frame,
                                       send_frame)
from repro.api.result import SimResult
from repro.api.spec import SweepSpec


def submit_sweep(address: Union[str, tuple], spec: SweepSpec,
                 use_cache: bool = True,
                 on_event: Optional[Callable[[ExecEvent], None]] = None,
                 timeout: Optional[float] = None) -> List[SimResult]:
    """Run *spec* on the daemon at *address*; return ordered results.

    ``on_event`` receives every streamed lifecycle event (the same
    :class:`~repro.api.exec.ExecEvent` objects a local progress
    callback sees).  Raises :class:`~repro.api.exec.WorkerFailure`
    when the daemon reports failed points, :exc:`RuntimeError` when it
    rejects the submission, and :exc:`ProtocolError` when the
    connection drops mid-sweep.
    """
    if isinstance(address, str):
        address = parse_address(address)
    results: Dict[int, SimResult] = {}
    sock = connect(address, timeout=timeout)
    try:
        send_frame(sock, {"op": "sweep", "spec": spec.to_dict(),
                          "use_cache": use_cache})
        points: Optional[int] = None
        while True:
            frame = recv_frame(sock)
            if frame is None:
                raise ProtocolError(
                    "daemon closed the connection before the sweep "
                    "finished")
            op = frame.get("op")
            if op == "accepted":
                points = int(frame["points"])
            elif op == "event":
                if on_event is not None:
                    on_event(ExecEvent(**frame["event"]))
            elif op == "result":
                result = SimResult.from_dict(frame["result"])
                results[int(frame["index"])] = result
            elif op == "done":
                failures = int(frame.get("failures", 0))
                if failures:
                    raise WorkerFailure(
                        f"sweep {frame.get('sweep_id')}: {failures} "
                        f"of {frame.get('points')} point(s) failed "
                        f"on the daemon")
                break
            elif op == "error":
                raise RuntimeError(
                    f"daemon rejected the sweep: "
                    f"{frame.get('error', 'unknown error')}")
            else:
                raise ProtocolError(f"unexpected {op!r} frame from "
                                    f"the daemon")
    finally:
        sock.close()
    if points is None:
        raise ProtocolError("daemon never acknowledged the sweep")
    missing = [i for i in range(points) if i not in results]
    if missing:
        raise ProtocolError(
            f"daemon reported success but {len(missing)} point(s) "
            f"never arrived (first missing index {missing[0]})")
    return [results[i] for i in range(points)]
