"""repro.api.remote — cross-machine execution over JSON/TCP.

The remote execution subsystem, layered on the futures submission
protocol (:mod:`repro.api.exec`):

* :mod:`~repro.api.remote.protocol` — the wire format every endpoint
  shares: length-prefixed JSON frames over TCP.
* :mod:`~repro.api.remote.worker` — :class:`WorkerServer`, the
  ``repro worker`` process: accepts serialized
  :class:`~repro.harness.config.SimConfig` work items and returns
  result/error outcomes, heartbeating during long simulations.
* :mod:`~repro.api.remote.executor` — :class:`RemoteExecutor`,
  registered as ``"remote"``: dispatches submitted items across a
  static worker list with heartbeat timeouts and bounded retries that
  reassign failed items to healthy workers.
* :mod:`~repro.api.remote.daemon` — :class:`SweepDaemon`, the
  ``repro serve`` process: accepts
  :class:`~repro.api.spec.SweepSpec` submissions from concurrent
  clients, multiplexes them over one worker fleet with fair
  round-robin scheduling, streams lifecycle events back, and persists
  landed points through append-only
  :class:`~repro.api.store.ResultStore` files (crash-resumable).
* :mod:`~repro.api.remote.client` — :func:`submit_sweep`, the thin
  client the CLI's ``repro sweep --daemon HOST:PORT`` uses.
"""

from repro.api.remote.client import submit_sweep
from repro.api.remote.daemon import SweepDaemon
from repro.api.remote.executor import RemoteExecutor, WorkerFleetError
from repro.api.remote.protocol import (ProtocolError, format_address,
                                       parse_address)
from repro.api.remote.worker import WorkerServer

__all__ = [
    "ProtocolError",
    "RemoteExecutor",
    "SweepDaemon",
    "WorkerFleetError",
    "WorkerServer",
    "format_address",
    "parse_address",
    "submit_sweep",
]
