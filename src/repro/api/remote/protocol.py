"""The remote subsystem's wire format: length-prefixed JSON frames.

Every endpoint — worker, remote executor, sweep daemon, client —
speaks the same framing over a plain TCP stream: a 4-byte big-endian
unsigned length, then that many bytes of UTF-8 JSON encoding one
object.  JSON keeps the payloads debuggable and reuses the key-stable
``to_dict`` round-trips :class:`~repro.harness.config.SimConfig` /
:class:`~repro.api.spec.SweepSpec` / :class:`~repro.api.result.
SimResult` already guarantee; the length prefix makes message
boundaries explicit, so a reader never depends on TCP segmentation.

Frame payloads are dicts with an ``"op"`` discriminator.  The worker
dialect: ``run`` (config + use_cache) answered by zero or more
``heartbeat`` frames and exactly one ``done`` (``ok`` true with
stats/wall time/source, or false with an error string); ``run_batch``
(``items``: a list of ``{config, use_cache}`` objects sharing one
trace identity) answered by heartbeats interleaved with exactly one
``point_done`` per item (``index`` = the item's position in the
batch, plus the same ok/stats/wall time/source-or-error payload a
single ``done`` carries) and then one trailing ``done`` with the
``completed`` count — per-point results stream as they finish, so
retry granularity and straggler detection stay per point even though
the batch shares one trace generation and predecode; ``ping`` /
``pong``; ``shutdown``.  The daemon dialect: ``sweep`` (spec +
use_cache) answered by ``accepted``, then streamed ``event`` /
``result`` frames, then one ``done`` — or an ``error`` frame if the
submission is rejected.

:exc:`ProtocolError` covers everything malformed: torn frames,
oversized lengths, non-JSON payloads.  A clean EOF *between* frames is
not an error — :func:`recv_frame` returns ``None`` so accept loops can
distinguish an orderly disconnect from a mid-message failure.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

#: refuse frames larger than this (a corrupt length prefix must not
#: look like a 4 GiB allocation request)
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """A malformed, torn or oversized frame on a remote connection."""


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` string into ``(host, port)``."""
    host, sep, port_text = text.rpartition(":")
    try:
        if not sep or not host:
            raise ValueError
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {text!r}: expected HOST:PORT, "
            f"e.g. 127.0.0.1:7777") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad address {text!r}: port out of range")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    """Render ``(host, port)`` back to the ``HOST:PORT`` spelling."""
    host, port = address
    return f"{host}:{port}"


def connect(address: Tuple[str, int],
            timeout: Optional[float] = None) -> socket.socket:
    """Open a TCP connection to *address* (Nagle disabled)."""
    sock = socket.create_connection(address, timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize *payload* and write one framed message."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; ``None`` on EOF before the first."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if remaining == count:
                return None  # clean EOF at a message boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` on a clean EOF between frames.

    Raises :exc:`ProtocolError` on torn frames, oversized lengths or
    payloads that are not a JSON object; ``socket.timeout`` (an
    ``OSError``) propagates, which is how heartbeat timeouts surface.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}")
    data = _recv_exact(sock, length) if length else b""
    if data is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be an object, got "
            f"{type(payload).__name__}")
    return payload
