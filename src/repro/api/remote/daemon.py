"""The ``repro serve`` sweep daemon: one fleet, many clients.

A :class:`SweepDaemon` is a long-lived server that accepts
:class:`~repro.api.spec.SweepSpec` submissions from any number of
concurrent clients and multiplexes them over **one** executor — by
default a :class:`~repro.api.remote.executor.RemoteExecutor` over a
static worker fleet, but any registered executor works (the tests
inject a :class:`~repro.api.mock.MockExecutor`).

Scheduling is fair round-robin: a single scheduler thread repeatedly
collects a mini-batch by taking one pending point from each active
sweep in rotation (the rotation origin advances between batches, so
no sweep is systematically first), drives the batch through the
executor, and streams every lifecycle event and landed result back
over the submitting client's connection as framed ``event`` /
``result`` messages.  A client disconnecting mid-sweep does not stop
its sweep — the points keep landing in the store (submit-and-forget).

Durability: with a ``store_dir``, each sweep persists into the
append-only ``sweep-<id>.jsonl`` the directory's
:meth:`~repro.api.store.ResultStore.for_sweep` names.  Points are
appended as they land, and a submission first serves everything the
store already holds — so killing the daemon and restarting it against
the same directory resumes every sweep from whatever landed
(re-submitting a completed sweep simulates nothing).
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import replace as dc_replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.api.exec import ExecutorBackend
from repro.api.inspect import SweepInspector
from repro.api.remote.protocol import (ProtocolError, recv_frame,
                                       send_frame)
from repro.api.result import SOURCE_STORE, SimResult
from repro.api.spec import SweepSpec
from repro.api.store import ResultStore
from repro.harness.config import SimConfig

#: a client-facing frame sink (``None`` = submit-and-forget)
FrameSink = Callable[[Dict[str, Any]], None]


class _SweepJob:
    """One submitted sweep's scheduling state inside the daemon."""

    def __init__(self, spec: SweepSpec, configs: List[SimConfig],
                 use_cache: bool, sink: Optional[FrameSink],
                 store: Optional[ResultStore],
                 inspector: Optional[SweepInspector] = None) -> None:
        self.spec = spec
        self.sweep_id = spec.sweep_id()
        self.configs = configs
        self.use_cache = use_cache
        self.store = store
        #: per-sweep online QA; anomaly events stream to the client
        self.inspector = inspector
        if inspector is not None:
            inspector.add_sink(
                lambda event: self.emit({"op": "event",
                                         "event": event.to_dict()}))
        #: results served straight from the store at submission
        self.stored: List[Tuple[int, SimResult]] = []
        #: (expansion index, config) not yet handed to the executor
        self.pending: "Deque[Tuple[int, SimConfig]]" = deque()
        self.inflight = 0
        self.completed = 0
        self.failures = 0
        self.done = threading.Event()
        self._sink = sink
        self._sink_lock = threading.Lock()

    def emit(self, frame: Dict[str, Any]) -> None:
        """Stream one frame to the client (dropped once it is gone)."""
        with self._sink_lock:
            if self._sink is None:
                return
            try:
                self._sink(frame)
            except (OSError, ProtocolError):
                # the client went away; the sweep keeps running and
                # persisting — submit-and-forget semantics
                self._sink = None


class SweepDaemon:
    """Serve sweeps over one worker fleet with fair scheduling."""

    def __init__(self, workers: Any = (),
                 host: str = "127.0.0.1", port: int = 0,
                 store_dir: Optional[str] = None,
                 executor: Optional[ExecutorBackend] = None,
                 batch_size: int = 8, max_retries: int = 1,
                 listen: bool = True, inspect: bool = False) -> None:
        if executor is None:
            from repro.api.remote.executor import RemoteExecutor
            executor = RemoteExecutor(workers, max_retries=max_retries)
        self.executor = executor
        #: build a per-sweep SweepInspector for every submission
        self.inspect = inspect
        self.batch_size = max(1, batch_size)
        self.store_dir = store_dir
        self._stores: Dict[str, ResultStore] = {}
        self._store_lock = threading.Lock()
        #: active jobs, in submission order; guarded by ``_wake``
        self._jobs: List[_SweepJob] = []
        self._rotation = 0
        self._wake = threading.Condition()
        self._stopping = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._sock: Optional[socket.socket] = None
        self.address: Optional[Tuple[str, int]] = None
        if listen:
            self._sock = socket.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
            self._sock.bind((host, port))
            self._sock.listen()
            self.address = self._sock.getsockname()[:2]

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def start(self) -> "SweepDaemon":
        """Run the scheduler (and accept loop) in daemon threads."""
        self._start_scheduler()
        if self._sock is not None:
            threading.Thread(target=self._accept_loop,
                             name="repro-serve-accept",
                             daemon=True).start()
        return self

    def serve_forever(self) -> None:
        """Blocking entry point for the ``repro serve`` CLI."""
        self._start_scheduler()
        self._accept_loop()

    def _start_scheduler(self) -> None:
        if self._scheduler is None:
            self._scheduler = threading.Thread(
                target=self._schedule_loop, name="repro-serve-scheduler",
                daemon=True)
            self._scheduler.start()

    def close(self) -> None:
        """Stop serving; unfinished jobs finish as failed."""
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        with self._wake:
            jobs, self._jobs = list(self._jobs), []
            self._wake.notify_all()
        for job in jobs:
            job.failures += len(job.pending) + job.inflight
            self._finish(job)
        with self._store_lock:
            for store in self._stores.values():
                store.close()

    def __enter__(self) -> "SweepDaemon":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission (embedded API; the socket handler calls these too)
    # ------------------------------------------------------------------
    def _store_for(self, spec: SweepSpec) -> Optional[ResultStore]:
        if self.store_dir is None:
            return None
        sweep_id = spec.sweep_id()
        with self._store_lock:
            store = self._stores.get(sweep_id)
            if store is None:
                store = ResultStore.for_sweep(self.store_dir, sweep_id)
                store.bind(sweep_id).touch()
                self._stores[sweep_id] = store
            return store

    def prepare(self, spec: SweepSpec, use_cache: bool = True,
                sink: Optional[FrameSink] = None) -> _SweepJob:
        """Validate and expand a submission; serve stored points.

        Returns the job *without* scheduling it — the caller streams
        ``accepted``/stored-result frames first, then calls
        :meth:`activate` (frame order on the client connection stays
        deterministic: accepted, stored results, then live events).
        """
        spec.validate()
        configs = spec.expand()
        store = self._store_for(spec)
        inspector = (SweepInspector(store=store)
                     if self.inspect else None)
        job = _SweepJob(spec, configs, use_cache, sink, store,
                        inspector=inspector)
        for index, config in enumerate(configs):
            key = config.key()
            # a quarantined key's stored row is suspect: treat it as
            # not yet simulated, so the submission re-runs it
            stored = (store.get(key)
                      if store is not None
                      and not store.quarantined(key) else None)
            if stored is not None:
                result = SimResult(
                    config=config, stats=stored.stats, key=key,
                    source=SOURCE_STORE, wall_time_s=0.0,
                    backend="store")
                job.stored.append((index, result))
                # seed the inspector's baselines from history
                self._observe(job, result, index)
            else:
                job.pending.append((index, config))
        return job

    def activate(self, job: _SweepJob) -> _SweepJob:
        """Hand a prepared job to the scheduler (or finish it)."""
        with self._wake:
            if job.pending:
                self._jobs.append(job)
                self._wake.notify_all()
                return job
        self._finish(job)
        return job

    def submit(self, spec: SweepSpec, use_cache: bool = True,
               sink: Optional[FrameSink] = None) -> _SweepJob:
        """Submit a sweep (embedded entry point); returns its job.

        Stored points stream as ``result`` frames immediately; wait on
        ``job.done`` for completion.
        """
        job = self.prepare(spec, use_cache=use_cache, sink=sink)
        for index, result in job.stored:
            job.emit({"op": "result", "index": index,
                      "result": result.to_dict()})
        return self.activate(job)

    def _observe(self, job: _SweepJob, result: SimResult,
                 index: int) -> None:
        """Validate one landed result through the job's inspector.

        Store-bound inspectors write annotation rows, so the store
        lock serialises them against concurrent ``add`` calls (one
        sweep's store can be shared by several submissions).
        """
        if job.inspector is None:
            return
        if job.store is not None:
            with self._store_lock:
                job.inspector.observe(result, index)
        else:
            job.inspector.observe(result, index)

    def _finish(self, job: _SweepJob) -> None:
        done = {"op": "done", "sweep_id": job.sweep_id,
                "points": len(job.configs),
                "completed": job.completed + len(job.stored),
                "failures": job.failures}
        if job.inspector is not None:
            done["anomalies"] = len(job.inspector.anomalies)
            done["quarantined"] = len(job.inspector.quarantined)
        job.emit(done)
        job.done.set()

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------
    def _schedule_loop(self) -> None:
        while not self._stopping.is_set():
            batch = self._collect_batch()
            if not batch:
                with self._wake:
                    if not any(job.pending for job in self._jobs):
                        self._wake.wait(timeout=0.1)
                continue
            self._run_batch(batch)

    def _collect_batch(self) -> List[Tuple[_SweepJob, int, SimConfig]]:
        """Take up to ``batch_size`` points, one per job per round.

        Strict round-robin across the active jobs: each pass of the
        inner loop takes at most one point from every job with pending
        work, so a 90-point sweep cannot starve a 4-point one.  The
        rotation origin advances between batches.
        """
        batch: List[Tuple[_SweepJob, int, SimConfig]] = []
        with self._wake:
            active = [job for job in self._jobs if job.pending]
            if not active:
                return batch
            origin = self._rotation % len(active)
            order = active[origin:] + active[:origin]
            self._rotation += 1
            while len(batch) < self.batch_size and \
                    any(job.pending for job in order):
                for job in order:
                    if not job.pending:
                        continue
                    index, config = job.pending.popleft()
                    job.inflight += 1
                    batch.append((job, index, config))
                    if len(batch) >= self.batch_size:
                        break
        return batch

    def _run_batch(self,
                   batch: List[Tuple[_SweepJob, int, SimConfig]]) -> None:
        """Drive one mini-batch through the shared executor."""
        executor = self.executor
        index_map: Dict[int, Tuple[_SweepJob, int]] = {}
        landed: set = set()

        def relay(event) -> None:
            target = index_map.get(event.index)
            if target is None:
                return
            job, sweep_index = target
            if job.inspector is not None:
                # feed operational checks the expansion-order view;
                # alarms may annotate the store, so take its lock
                remapped = dc_replace(event, index=sweep_index)
                if job.store is not None:
                    with self._store_lock:
                        job.inspector(remapped)
                else:
                    job.inspector(remapped)
            payload = event.to_dict()
            payload["index"] = sweep_index  # the job's expansion index
            job.emit({"op": "event", "event": payload})

        executor.add_progress_callback(relay)
        try:
            for n, (job, index, config) in enumerate(batch):
                index_map[n] = (job, index)
                executor.submit((n, config, job.use_cache))
            for future in executor.as_completed():
                job, index = index_map[future.index]
                landed.add(future.index)
                self._land(job, index, future)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            # e.g. the whole fleet is unreachable: fail this batch's
            # remaining items, keep serving (the next batch retries
            # the connections from scratch)
            executor.cancel_all()
            for _ in executor.as_completed():
                pass
            for n, (job, index, config) in enumerate(batch):
                if n not in landed:
                    job.failures += 1
                    job.emit({"op": "event", "event": {
                        "kind": "failed", "index": index,
                        "key": config.key(),
                        "workload": config.workload, "attempt": 0,
                        "error": str(exc)}})
                    self._account(job)
        finally:
            executor.remove_progress_callback(relay)

    def _land(self, job: _SweepJob, index: int, future) -> None:
        if future.cancelled() or future.exception() is not None:
            job.failures += 1
        else:
            result = future.result()
            if job.store is not None:
                with self._store_lock:
                    job.store.add(result)
            # after the result row: a verdict annotation must follow
            # the row it judges in the store timeline
            self._observe(job, result, index)
            job.completed += 1
            job.emit({"op": "result", "index": index,
                      "result": result.to_dict()})
        self._account(job)

    def _account(self, job: _SweepJob) -> None:
        finished = False
        with self._wake:
            job.inflight -= 1
            if not job.pending and job.inflight == 0:
                if job in self._jobs:
                    self._jobs.remove(job)
                finished = True
        if finished:
            self._finish(job)

    # ------------------------------------------------------------------
    # the socket surface
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._serve_connection,
                             args=(conn,), name="repro-serve-conn",
                             daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            try:
                frame = recv_frame(conn)
            except (ProtocolError, OSError):
                return
            if frame is None:
                return
            op = frame.get("op")
            try:
                if op == "ping":
                    send_frame(conn, {"op": "pong", "ok": True})
                    return
                if op != "sweep":
                    send_frame(conn, {"op": "error", "ok": False,
                                      "error": f"unknown op {op!r}"})
                    return
                self._serve_sweep(conn, frame)
            except OSError:
                return  # client went away; the job keeps running

    def _serve_sweep(self, conn: socket.socket,
                     frame: Dict[str, Any]) -> None:
        try:
            spec = SweepSpec.from_dict(frame.get("spec") or {})
        except (ValueError, TypeError, KeyError) as exc:
            send_frame(conn, {"op": "error", "ok": False,
                              "error": f"bad sweep spec: {exc}"})
            return
        job = self.prepare(spec,
                           use_cache=bool(frame.get("use_cache", True)),
                           sink=lambda payload:
                               send_frame(conn, payload))
        # deterministic client-side order: accepted, stored results,
        # then live event/result frames once the scheduler has the job
        send_frame(conn, {"op": "accepted", "ok": True,
                          "sweep_id": job.sweep_id,
                          "points": len(job.configs),
                          "stored": len(job.stored)})
        for index, result in job.stored:
            send_frame(conn, {"op": "result", "index": index,
                              "result": result.to_dict()})
        self.activate(job)
        job.done.wait()
