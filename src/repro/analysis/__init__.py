"""Analysis utilities: MLP-sensitivity rule and aggregation helpers."""

from repro.analysis.aggregate import (arithmetic_mean, average_dicts,
                                      geometric_mean,
                                      mean_relative_performance)
from repro.analysis.mlp_class import (SensitivityInputs, SensitivityVerdict,
                                      classify)

__all__ = [
    "SensitivityInputs",
    "SensitivityVerdict",
    "arithmetic_mean",
    "average_dicts",
    "classify",
    "geometric_mean",
    "mean_relative_performance",
]
