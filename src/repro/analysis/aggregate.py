"""Aggregation helpers for experiment results."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean_relative_performance(test_cycles: Sequence[int],
                              base_cycles: Sequence[int]) -> float:
    """Geomean speedup over paired runs, as a percent delta vs. base.

    This is how the paper's per-suite averages are computed: each
    simulation point is normalised to its own baseline first.
    """
    if len(test_cycles) != len(base_cycles):
        raise ValueError("paired sequences must have equal length")
    ratios = [b / t for t, b in zip(test_cycles, base_cycles)]
    return (geometric_mean(ratios) - 1.0) * 100.0


def average_dicts(dicts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Key-wise arithmetic mean over dictionaries with identical keys."""
    dicts = list(dicts)
    if not dicts:
        raise ValueError("no dicts to average")
    keys = dicts[0].keys()
    for d in dicts:
        if d.keys() != keys:
            raise ValueError("dict keys differ")
    return {k: arithmetic_mean([d[k] for d in dicts]) for k in keys}
