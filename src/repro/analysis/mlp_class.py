"""MLP-sensitivity classification (the Section 4.1 rule).

"MLP" here is **memory-level parallelism** — this module is the
paper's workload-sensitivity rule, not a multi-layer perceptron.  It
contains no machine learning; the learned parking policies (and their
trained model) live in :mod:`repro.policies.learned`.

A simulation point is MLP-sensitive when, comparing an IQ-32 core to an
IQ-256 core (prefetcher on):

* its average cache (load) latency exceeds the L2 latency — it actually
  touches the L3/DRAM,
* it speeds up by more than 5% with the larger IQ, and
* its outstanding memory requests grow by more than 10%.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SensitivityInputs:
    """The measurements the rule consumes, for one simulation point."""

    cycles_small_iq: int
    cycles_large_iq: int
    outstanding_small_iq: float
    outstanding_large_iq: float
    avg_load_latency: float
    l2_latency: int = 12


@dataclass
class SensitivityVerdict:
    sensitive: bool
    speedup_pct: float
    outstanding_growth_pct: float
    latency_beyond_l2: bool


def classify(inputs: SensitivityInputs,
             speedup_threshold: float = 5.0,
             outstanding_threshold: float = 10.0) -> SensitivityVerdict:
    """Apply the paper's rule; thresholds in percent."""
    if inputs.cycles_large_iq <= 0 or inputs.cycles_small_iq <= 0:
        raise ValueError("cycle counts must be positive")
    speedup = (inputs.cycles_small_iq / inputs.cycles_large_iq - 1.0) * 100.0
    if inputs.outstanding_small_iq > 0:
        growth = (inputs.outstanding_large_iq
                  / inputs.outstanding_small_iq - 1.0) * 100.0
    else:
        growth = 100.0 if inputs.outstanding_large_iq > 0 else 0.0
    beyond_l2 = inputs.avg_load_latency > inputs.l2_latency
    sensitive = (beyond_l2 and speedup > speedup_threshold
                 and growth > outstanding_threshold)
    return SensitivityVerdict(sensitive=sensitive, speedup_pct=speedup,
                              outstanding_growth_pct=growth,
                              latency_beyond_l2=beyond_l2)
