"""The synthetic kernel zoo.

MLP-sensitive kernels (stand-ins for the paper's sensitive SimPoints):

* :func:`indirect_fig2` — the paper's Figure 2 loop, ``C[i] = B[A[j]]+5``
  with prefetch-friendly ``A``/``C`` and a cache-missing indirect ``B``.
* :func:`ptrchase_astar` — twelve interleaved pointer chases over
  DRAM-resident rings (astar-like: loads that are both Urgent and
  Non-Ready).
* :func:`sparse_gather` — random gather accumulated into a scalar
  (independent misses, maximal window-limited MLP).
* :func:`hash_probe` — hashed table probes with address computation
  slices feeding each miss.
* :func:`lattice_milc` — milc-like FP kernel: one gather miss per site,
  two prefetchable operand streams consumed only by a Non-Urgent FP
  slice, two streaming stores.

MLP-insensitive kernels:

* :func:`stream_triad` — prefetch-covered streaming FP triad.
* :func:`compute_fp` — L1-resident FP compute.
* :func:`compute_int` — pure ALU mixing/hash rounds.
* :func:`small_ws_ring` — L1-resident pointer ring (latency-bound but
  never missing).
* :func:`stencil_small` — L2-resident 3-point stencil.
* :func:`branchy_compute` — periodic data-dependent branches over
  in-cache data.

Every kernel masks its index registers so a trace of any length can be
drawn; loop-control branches use a separate monotonic counter so they
stay (correctly) predictable, like SPEC loop branches.
"""

from __future__ import annotations

from repro.workloads.base import MLP_INSENSITIVE, MLP_SENSITIVE, Workload
from repro.workloads.builders import (index_array, linked_ring, region_base,
                                      sequential_array)

IDX_LEN = 16384
IDX_MASK = IDX_LEN - 1
BIG_LIMIT = 1 << 40

#: big-array sizes in words: 8 MB spans, far beyond the 1 MB L3
GATHER_WORDS = 1 << 20


def indirect_fig2(seed: int = 11) -> Workload:
    """The Figure 2 loop: ``d = B[A[j--]]; C[i++] = d + 5``."""
    base_a = region_base(0)
    base_b = region_base(1)
    base_c = region_base(2)
    asm = """
    loop:
        ldx  r4, r1, r3        # A: t1 = A[j]            (hit, urgent)
        addi r3, r3, -1        # E: j--                  (urgent)
        andi r3, r3, 16383     #    wrap j               (urgent)
        fldx f1, r2, r4        # D: d = B[t1]            (miss, long latency)
        fadd f2, f1, f0        # F: d = d + 5            (NU + NR)
        slli r9, r6, 3         # G: byte offset of C[i]  (NU + R)
        add  r9, r5, r9        # G: addrC = baseC + off  (NU + R)
        fst  f2, r9, 0         # H: store d -> C[i]      (NU + NR)
        addi r6, r6, 1         # I: i++                  (NU + R)
        andi r6, r6, 16383     #    wrap i               (NU + R)
        addi r20, r20, 1       # J: loop counter         (NU + R)
        blt  r20, r21, loop    # K: backedge             (NU + R)
        halt
    """
    return Workload(
        name="indirect_fig2",
        category=MLP_SENSITIVE,
        description="Figure 2 indirect-access loop C[i] = B[A[j]] + 5",
        asm=asm,
        int_regs={"r1": base_a, "r2": base_b, "r5": base_c,
                  "r3": IDX_MASK, "r6": 0, "r20": 0, "r21": BIG_LIMIT},
        fp_regs={"f0": 5},
        memory_words=index_array(base_a, IDX_LEN, GATHER_WORDS, seed),
        alias="fig2 loop",
        warm_regions=[(base_a, IDX_LEN)],
    )


def ptrchase_astar(seed: int = 23) -> Workload:
    """Twelve interleaved pointer chases (astar-like).

    Every chain's next-pointer load is Urgent *and* Non-Ready — the
    class the paper singles out for astar: with a small IQ the waiting
    chase loads and their payload clutter fill the queue and throttle
    MLP below the twelve chains the ROB could sustain.  Parking
    Non-Ready instructions (tickets) recovers it; parking only
    Non-Urgent instructions leaves the chase loads in the IQ and helps
    less, reproducing Figure 6's astar row.
    """
    n_chains = 12
    ring_nodes = 8192  # 512 kB per ring, 6 MB total: misses to DRAM
    memory = {}
    heads = []
    for chain in range(n_chains):
        ring, head = linked_ring(region_base(3) + chain * (8 << 20),
                                 ring_nodes, ring_nodes, seed + chain)
        memory.update(ring)
        heads.append(head)
    lines = ["loop:"]
    for chain in range(n_chains):
        ptr = f"r{chain + 1}"
        payload = f"r{chain + 13}"
        # the chase load touches the node block first (it takes the
        # miss); the payload load reads the same node via a saved
        # pointer and merges with the chase's fill
        lines.append(f"    mov  r25, {ptr}        # save node ptr  (NU)")
        lines.append(f"    ld   {ptr}, {ptr}, 0"
                     f"      # chase{chain}     (miss, urgent + non-ready)")
        lines.append(f"    ld   {payload}, r25, 8"
                     f"      # payload{chain}   (NU + NR)")
        lines.append(f"    add  r26, r26, {payload}   # accumulate (NU + NR)")
    for group in range(4):
        # independent neighbour-cost gathers: the window-limited MLP
        # component that a clutter-filled small IQ throttles
        lines.append("    ldx  r24, r27, r29     # neighbour id   (hit, urgent)")
        lines.append("    fldx f1, r28, r24      # neighbour cost (miss)")
        lines.append("    fadd f2, f2, f1        # accumulate     (NU + NR)")
        lines.append("    addi r29, r29, 1       # next           (urgent)")
        lines.append("    andi r29, r29, 16383   # wrap           (urgent)")
    lines.append("    addi r30, r30, 1")
    lines.append("    blt  r30, r31, loop")
    lines.append("    halt")
    asm = "\n".join(lines)
    base_idx = region_base(22)
    base_n = region_base(23)
    memory.update(index_array(base_idx, IDX_LEN, GATHER_WORDS, seed + 99))
    int_regs = {f"r{chain + 1}": heads[chain] for chain in range(n_chains)}
    int_regs.update({"r26": 0, "r27": base_idx, "r28": base_n, "r29": 0,
                     "r30": 0, "r31": BIG_LIMIT})
    return Workload(
        name="ptrchase_astar",
        category=MLP_SENSITIVE,
        description="twelve parallel pointer chases over DRAM-resident "
                    "rings (astar/rivers-like: urgent non-ready loads)",
        asm=asm,
        int_regs=int_regs,
        memory_words=memory,
        alias="astar/rivers [cpt:176B]",
        warm_regions=[(base_idx, IDX_LEN)],
    )


def sparse_gather(seed: int = 37) -> Workload:
    """Random gather with a scalar reduction (independent misses)."""
    base_idx = region_base(5)
    base_b = region_base(6)
    asm = """
    loop:
        ldx  r4, r1, r3        # idx = IDX[i]        (hit, urgent)
        fldx f1, r2, r4        # B[idx]              (miss, long latency)
        fadd f5, f5, f1        # accumulate          (NU + NR)
        addi r3, r3, 1         # i++                 (urgent)
        andi r3, r3, 16383     # wrap                (urgent)
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="sparse_gather",
        category=MLP_SENSITIVE,
        description="random gather + reduction over an 8 MB table",
        asm=asm,
        int_regs={"r1": base_idx, "r2": base_b, "r3": 0,
                  "r20": 0, "r21": BIG_LIMIT},
        fp_regs={"f5": 0},
        memory_words=index_array(base_idx, IDX_LEN, GATHER_WORDS, seed),
        warm_regions=[(base_idx, IDX_LEN)],
    )


def hash_probe(seed: int = 41) -> Workload:
    """Hashed probes into a 16 MB table; hash slice feeds each miss."""
    del seed  # key stream is arithmetic; kept for interface symmetry
    base_t = region_base(7)
    asm = """
    loop:
        mul  r4, r3, r9        # hash multiply       (urgent, 3 cycles)
        srli r5, r4, 7         # hash shift          (urgent)
        xor  r4, r4, r5        # hash mix            (urgent)
        and  r4, r4, r10       # mask to table       (urgent)
        ldx  r5, r2, r4        # probe               (miss, long latency)
        and  r5, r5, r11       # extract tag bit     (NU + NR)
        add  r12, r12, r5      # count matches       (NU + NR)
        addi r3, r3, 1         # next key            (urgent)
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="hash_probe",
        category=MLP_SENSITIVE,
        description="hash-table probing: an ALU slice feeds every miss",
        asm=asm,
        int_regs={"r2": base_t, "r3": 1, "r9": 2654435761,
                  "r10": (1 << 21) - 1, "r11": 1, "r12": 0,
                  "r20": 0, "r21": BIG_LIMIT},
    )


def lattice_milc(seed: int = 53) -> Workload:
    """milc-like site update: one gather miss, NU streams, FP slice."""
    base_perm = region_base(8)
    base_u = region_base(9)
    base_v = region_base(10)
    base_w = region_base(11)
    base_out = region_base(12)
    asm = """
    loop:
        ldx  r4, r1, r3        # site = PERM[i]      (hit, urgent)
        fldx f1, r2, r4        # u = U[site]         (miss, long latency)
        fldx f2, r13, r3       # v = V[i] stream     (prefetched, NU + R)
        fldx f3, r14, r3       # w = W[i] stream     (prefetched, NU + R)
        fmul f4, f1, f2        # FP slice            (NU + NR)
        fadd f5, f4, f3        #                     (NU + NR)
        fmul f6, f5, f5        #                     (NU + NR)
        fadd f7, f6, f2        #                     (NU + NR)
        slli r9, r3, 4         # out offset (16 B)   (NU + R)
        add  r9, r15, r9       # out address         (NU + R)
        fst  f5, r9, 0         # store result        (NU + NR)
        fst  f7, r9, 8         # store result        (NU + NR)
        addi r3, r3, 1         # i++                 (urgent)
        andi r3, r3, 16383     # wrap                (urgent)
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="lattice_milc",
        category=MLP_SENSITIVE,
        description="lattice site updates: gather miss + non-urgent FP "
                    "slice, streams and stores (milc-like)",
        asm=asm,
        int_regs={"r1": base_perm, "r2": base_u, "r13": base_v,
                  "r14": base_w, "r15": base_out, "r3": 0,
                  "r20": 0, "r21": BIG_LIMIT},
        memory_words=index_array(base_perm, IDX_LEN, GATHER_WORDS, seed),
        alias="milc [cpt:961B]",
        warm_regions=[(base_perm, IDX_LEN)],
    )


def stream_triad() -> Workload:
    """STREAM triad ``C[i] = A[i] + s * B[i]`` — prefetch covered."""
    base_a = region_base(13)
    base_b = region_base(14)
    base_c = region_base(15)
    asm = """
    loop:
        fldx f1, r1, r3        # A[i]                (prefetched)
        fldx f2, r2, r3        # B[i]                (prefetched)
        fmul f3, f2, f0        # s * B[i]
        fadd f4, f1, f3        # A[i] + s*B[i]
        slli r9, r3, 3
        add  r9, r5, r9
        fst  f4, r9, 0         # C[i] = ...
        addi r3, r3, 1
        andi r3, r3, 16383
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="stream_triad",
        category=MLP_INSENSITIVE,
        description="streaming FP triad; stride prefetcher covers misses",
        asm=asm,
        int_regs={"r1": base_a, "r2": base_b, "r5": base_c, "r3": 0,
                  "r20": 0, "r21": BIG_LIMIT},
        fp_regs={"f0": 3},
    )


def compute_fp() -> Workload:
    """L1-resident FP compute over a 8 KB array."""
    base = region_base(16)
    asm = """
    loop:
        and  r4, r3, r10       # idx = i & 1023
        fldx f1, r1, r4        # x = data[idx]       (L1 hit)
        fmul f2, f1, f0
        fadd f3, f2, f8
        fmul f4, f3, f1
        fadd f9, f9, f4        # accumulate
        slli r5, r4, 3
        add  r5, r1, r5
        fst  f4, r5, 0         # data[idx] = ...
        addi r3, r3, 1
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="compute_fp",
        category=MLP_INSENSITIVE,
        description="cache-resident FP kernel (dense compute)",
        asm=asm,
        int_regs={"r1": base, "r3": 0, "r10": 1023,
                  "r20": 0, "r21": BIG_LIMIT},
        fp_regs={"f0": 3, "f8": 7, "f9": 0},
        memory_words=sequential_array(base, 1024, start=1),
    )


def compute_int() -> Workload:
    """Pure ALU hash/mix rounds — no memory at all."""
    asm = """
    loop:
        xor  r4, r4, r9
        mul  r5, r4, r10
        add  r4, r5, r11
        srli r5, r4, 13
        xor  r4, r4, r5
        slli r5, r4, 7
        add  r4, r4, r5
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="compute_int",
        category=MLP_INSENSITIVE,
        description="integer mixing rounds (crypto-like, memory-free)",
        asm=asm,
        int_regs={"r4": 0x12345678, "r9": 0x9E3779B9, "r10": 0x85EBCA6B,
                  "r11": 0xC2B2AE35, "r20": 0, "r21": BIG_LIMIT},
    )


def small_ws_ring(seed: int = 67) -> Workload:
    """Pointer ring inside the L1: latency-bound but never missing."""
    base = region_base(17)
    memory, head = linked_ring(base, 256, 256, seed)
    asm = """
    loop:
        ld   r1, r1, 0         # next (L1 hit, dependent chain)
        ld   r3, r1, 8         # payload
        add  r10, r10, r3
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="small_ws_ring",
        category=MLP_INSENSITIVE,
        description="L1-resident pointer ring (dependent loads, no misses)",
        asm=asm,
        int_regs={"r1": head, "r10": 0, "r20": 0, "r21": BIG_LIMIT},
        memory_words=memory,
        warm_regions=[(base, 256 * 8)],
    )


def stencil_small() -> Workload:
    """3-point stencil over an L2-resident array."""
    base_in = region_base(18)
    base_out = region_base(19)
    asm = """
    loop:
        and  r4, r3, r10       # i & 8191
        fldx f1, r1, r4        # a[i]
        addi r5, r4, 1
        fldx f2, r1, r5        # a[i+1]
        addi r5, r4, 2
        fldx f3, r1, r5        # a[i+2]
        fadd f4, f1, f2
        fadd f5, f4, f3
        fmul f6, f5, f0
        slli r9, r4, 3
        add  r9, r2, r9
        fst  f6, r9, 0         # out[i]
        addi r3, r3, 1
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="stencil_small",
        category=MLP_INSENSITIVE,
        description="1-D stencil over an L2-resident array",
        asm=asm,
        int_regs={"r1": base_in, "r2": base_out, "r3": 0, "r10": 8191,
                  "r20": 0, "r21": BIG_LIMIT},
        fp_regs={"f0": 3},
        memory_words=sequential_array(base_in, 8192, start=2, step=3),
    )


def branchy_compute() -> Workload:
    """Periodic data-dependent branch over in-cache data."""
    asm = """
    loop:
        and  r4, r3, r9        # i & 7
        beqz r4, skip          # taken every 8th iteration
        add  r10, r10, r3
        mul  r11, r10, r12
    skip:
        addi r3, r3, 1
        addi r20, r20, 1
        blt  r20, r21, loop
        halt
    """
    return Workload(
        name="branchy_compute",
        category=MLP_INSENSITIVE,
        description="periodic branches + ALU work (branch-path exercise)",
        asm=asm,
        int_regs={"r3": 0, "r9": 7, "r10": 0, "r12": 3,
                  "r20": 0, "r21": BIG_LIMIT},
    )


def btree_probe(seed: int = 71) -> Workload:
    """Three-level tree probes (B-tree / index-join style).

    Each lookup walks root -> internal -> leaf.  The root level is hot
    (cache-resident), the internal level is L3-scale, and the leaf
    level misses to DRAM.  Lookups are independent, so the achievable
    MLP scales with the window, while each lookup is a short Urgent
    dependence chain of depth three — a denser version of the pointer
    dependence structure the paper's Urgent analysis targets.
    """
    base_root = region_base(24)
    base_internal = region_base(25)
    base_leaf = region_base(26)
    internal_words = 1 << 16          # 512 kB
    memory = index_array(base_root, IDX_LEN, internal_words, seed)
    memory.update(index_array(base_internal, internal_words,
                              GATHER_WORDS, seed + 1))
    asm = """
    loop:
        ldx  r4, r1, r3        # root lookup        (hit, urgent)
        ldx  r5, r2, r4        # internal lookup    (L3-ish, urgent)
        ldx  r6, r7, r5        # leaf lookup        (miss, urgent+NR)
        add  r12, r12, r6      # consume            (NU + NR)
        addi r3, r3, 1         # next key           (urgent)
        andi r3, r3, 16383     # wrap               (urgent)
        addi r30, r30, 1
        blt  r30, r31, loop
        halt
    """
    return Workload(
        name="btree_probe",
        category=MLP_SENSITIVE,
        description="independent 3-level tree probes (root hot, leaf "
                    "DRAM): window-scaled MLP over short urgent chains",
        asm=asm,
        int_regs={"r1": base_root, "r2": base_internal, "r7": base_leaf,
                  "r3": 0, "r12": 0, "r30": 0, "r31": BIG_LIMIT},
        memory_words=memory,
        warm_regions=[(base_root, IDX_LEN)],
    )


def spmv_csr(seed: int = 83) -> Workload:
    """Sparse matrix-vector product, CSR-style with 4 nonzeros per row.

    Column indices and matrix values stream sequentially (prefetched);
    the ``x[col]`` gathers miss.  Each row reduces into one result that
    is stored — a mix of Urgent gathers, Non-Urgent FP reduction and
    Non-Urgent stores, like the paper's FP-heavy sensitive SimPoints.
    """
    base_cols = region_base(27)
    base_vals = region_base(28)
    base_x = region_base(29)
    base_y = region_base(30)
    memory = index_array(base_cols, IDX_LEN, GATHER_WORDS, seed)
    asm = """
    loop:
        ldx  r4, r1, r3        # col[k]             (hit, urgent)
        fldx f1, r2, r3        # val[k] stream      (prefetched, NU)
        fldx f2, r5, r4        # x[col]             (miss, long latency)
        fmul f3, f1, f2        # val * x            (NU + NR)
        fadd f4, f4, f3        # row accumulate     (NU + NR)
        addi r3, r3, 1
        andi r3, r3, 16383
        andi r6, r3, 3         # end of row every 4 nonzeros
        bnez r6, skip
        slli r8, r9, 3
        add  r8, r7, r8
        fst  f4, r8, 0         # y[row] store       (NU + NR)
        fli  f4, 0             # reset accumulator  (NU)
        addi r9, r9, 1         # next row
        andi r9, r9, 16383
    skip:
        addi r30, r30, 1
        blt  r30, r31, loop
        halt
    """
    return Workload(
        name="spmv_csr",
        category=MLP_SENSITIVE,
        description="CSR SpMV with 4 nonzeros/row: urgent gathers, "
                    "non-urgent FP reduction and stores",
        asm=asm,
        int_regs={"r1": base_cols, "r2": base_vals, "r5": base_x,
                  "r7": base_y, "r3": 0, "r9": 0,
                  "r30": 0, "r31": BIG_LIMIT},
        fp_regs={"f4": 0},
        memory_words=memory,
        warm_regions=[(base_cols, IDX_LEN)],
    )


def memset_stream() -> Workload:
    """Pure store stream (memset-like) — write-allocate, no stalls."""
    base = region_base(31)
    asm = """
    loop:
        slli r4, r3, 3
        add  r4, r1, r4
        st   r2, r4, 0
        st   r2, r4, 8
        st   r2, r4, 16
        st   r2, r4, 24
        addi r3, r3, 4
        andi r3, r3, 65535
        addi r30, r30, 1
        blt  r30, r31, loop
        halt
    """
    return Workload(
        name="memset_stream",
        category=MLP_INSENSITIVE,
        description="store streaming (memset): stores retire through "
                    "the SQ without exposing MLP",
        asm=asm,
        int_regs={"r1": base, "r2": 0x5A5A5A5A, "r3": 0,
                  "r30": 0, "r31": BIG_LIMIT},
    )


def blocked_mm() -> Workload:
    """L1-resident blocked matrix-multiply inner product (8-wide)."""
    base_a = region_base(32)
    base_b = region_base(33)
    asm = """
    loop:
        and  r4, r3, r10       # i & 511
        fldx f1, r1, r4        # a[i]    (L1 hit)
        fldx f2, r2, r4        # b[i]    (L1 hit)
        fmul f3, f1, f2
        fadd f8, f8, f3        # dot-product chain
        addi r4, r4, 1
        fldx f4, r1, r4
        fldx f5, r2, r4
        fmul f6, f4, f5
        fadd f9, f9, f6        # second independent chain
        addi r3, r3, 2
        addi r30, r30, 1
        blt  r30, r31, loop
        halt
    """
    return Workload(
        name="blocked_mm",
        category=MLP_INSENSITIVE,
        description="cache-blocked matrix-multiply inner loop: dense "
                    "FP with two reduction chains, no misses",
        asm=asm,
        int_regs={"r1": base_a, "r2": base_b, "r3": 0, "r10": 511,
                  "r30": 0, "r31": BIG_LIMIT},
        fp_regs={"f8": 0, "f9": 0},
        memory_words={**sequential_array(base_a, 512, start=1),
                      **sequential_array(base_b, 512, start=3, step=2)},
    )
