"""Initial-memory builders for the synthetic kernels.

All builders are deterministic given a seed so traces — and therefore
every experiment — are exactly reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

WORD = 8
BLOCK = 64

#: disjoint 64 MB data regions; kernels index regions by slot
REGION_BYTES = 64 * 1024 * 1024


def region_base(slot: int) -> int:
    """Byte base address of data region *slot* (slot 0 starts at 256 MB)."""
    if slot < 0:
        raise ValueError("slot must be >= 0")
    return (4 + slot) * REGION_BYTES


def index_array(base: int, length: int, max_index: int,
                seed: int) -> Dict[int, int]:
    """An array of *length* random word indices in [0, max_index)."""
    rng = random.Random(seed)
    return {base + i * WORD: rng.randrange(max_index)
            for i in range(length)}


def sequential_array(base: int, length: int, start: int = 0,
                     step: int = 1) -> Dict[int, int]:
    """An array of *length* words holding an arithmetic sequence."""
    return {base + i * WORD: start + i * step for i in range(length)}


def linked_ring(base: int, nodes: int, region_blocks: int,
                seed: int) -> Tuple[Dict[int, int], int]:
    """A circular linked list of *nodes* nodes at random block addresses.

    Each node occupies its own cache block inside a region of
    *region_blocks* blocks: word 0 holds the byte address of the next
    node, word 1 holds a payload value.  Returns (memory, head_address).
    Traversal therefore produces one irregular block access per node —
    the pointer-chasing pattern of astar-like code.
    """
    if nodes > region_blocks:
        raise ValueError("need at least one block per node")
    rng = random.Random(seed)
    block_ids = rng.sample(range(region_blocks), nodes)
    addresses = [base + b * BLOCK for b in block_ids]
    memory: Dict[int, int] = {}
    for i, addr in enumerate(addresses):
        nxt = addresses[(i + 1) % nodes]
        memory[addr] = nxt
        memory[addr + WORD] = i * 3 + 1
    return memory, addresses[0]
