"""Workload abstraction: an assembly kernel plus initial state.

A :class:`Workload` bundles a kernel written in the repro ISA with its
initial register and memory state and a category label (MLP-sensitive or
MLP-insensitive).  Kernels are steady-state loops sized so the index
registers wrap with an ``andi`` mask, letting traces of any length be
drawn from them.

Kernels are written so their *dependence structure* reproduces a named
behaviour from the paper (pointer chasing, the Figure 2 indirect loop,
milc-like FP slices, prefetch-friendly streams...), which is what the
LTP mechanism keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.executor import Executor, Memory
from repro.isa.program import Program
from repro.isa.trace import DynInst

MLP_SENSITIVE = "mlp_sensitive"
MLP_INSENSITIVE = "mlp_insensitive"
CATEGORIES = (MLP_SENSITIVE, MLP_INSENSITIVE)


@dataclass
class Workload:
    """One benchmark kernel with its initial architectural state."""

    name: str
    category: str
    description: str
    asm: str
    int_regs: Dict[str, int] = field(default_factory=dict)
    fp_regs: Dict[str, int] = field(default_factory=dict)
    memory_words: Dict[int, int] = field(default_factory=dict)
    #: paper checkpoint this kernel stands in for (e.g. "astar/rivers")
    alias: Optional[str] = None
    #: (byte base, word count) regions that a paper-scale warmup (250 M
    #: instructions) would leave cache-resident — small hot arrays the
    #: kernel re-walks with a period far longer than any measured slice.
    #: The runner pre-installs these blocks in the L2/L3.
    warm_regions: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        self._program: Optional[Program] = None

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = assemble(self.asm, name=self.name)
        return self._program

    def executor(self) -> Executor:
        """A fresh functional executor positioned at the kernel entry."""
        return Executor(self.program,
                        memory=Memory(dict(self.memory_words)),
                        int_regs=dict(self.int_regs),
                        fp_regs=dict(self.fp_regs))

    def trace(self, max_insts: int) -> List[DynInst]:
        """Execute and return the first *max_insts* dynamic instructions."""
        if max_insts <= 0:
            raise ValueError("max_insts must be positive")
        return list(self.executor().run(max_insts))
