"""Workload registry and the two evaluation suites.

The paper evaluates SPEC CPU2006 SimPoints split into MLP-sensitive and
MLP-insensitive groups (Section 4.1); the registry below provides the
synthetic stand-ins and the same two groupings.  ``astar`` and ``milc``
map to the two individually-plotted checkpoints.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads import kernels
from repro.workloads.base import MLP_INSENSITIVE, MLP_SENSITIVE, Workload

_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "indirect_fig2": kernels.indirect_fig2,
    "ptrchase_astar": kernels.ptrchase_astar,
    "sparse_gather": kernels.sparse_gather,
    "hash_probe": kernels.hash_probe,
    "lattice_milc": kernels.lattice_milc,
    "stream_triad": kernels.stream_triad,
    "compute_fp": kernels.compute_fp,
    "compute_int": kernels.compute_int,
    "small_ws_ring": kernels.small_ws_ring,
    "stencil_small": kernels.stencil_small,
    "branchy_compute": kernels.branchy_compute,
    "btree_probe": kernels.btree_probe,
    "spmv_csr": kernels.spmv_csr,
    "memset_stream": kernels.memset_stream,
    "blocked_mm": kernels.blocked_mm,
}

#: aliases matching the paper's individually-reported checkpoints
ALIASES = {
    "astar": "ptrchase_astar",
    "milc": "lattice_milc",
}


def workload_names() -> List[str]:
    return sorted(_FACTORIES)


def get_workload(name: str) -> Workload:
    """Build the named workload (accepts paper aliases)."""
    name = ALIASES.get(name, name)
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None


def mlp_sensitive_suite() -> List[Workload]:
    suite = [factory() for factory in _FACTORIES.values()]
    return [w for w in suite if w.category == MLP_SENSITIVE]


def mlp_insensitive_suite() -> List[Workload]:
    suite = [factory() for factory in _FACTORIES.values()]
    return [w for w in suite if w.category == MLP_INSENSITIVE]


def full_suite() -> List[Workload]:
    return [factory() for factory in _FACTORIES.values()]
