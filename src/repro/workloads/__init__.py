"""Synthetic SPEC-like workloads and the MLP-sensitive/-insensitive suites."""

from repro.workloads.base import (CATEGORIES, MLP_INSENSITIVE, MLP_SENSITIVE,
                                  Workload)
from repro.workloads.mixes import (ALIASES, full_suite, get_workload,
                                   mlp_insensitive_suite,
                                   mlp_sensitive_suite, workload_names)

__all__ = [
    "ALIASES",
    "CATEGORIES",
    "MLP_INSENSITIVE",
    "MLP_SENSITIVE",
    "Workload",
    "full_suite",
    "get_workload",
    "mlp_insensitive_suite",
    "mlp_sensitive_suite",
    "workload_names",
]
