"""Memory-system substrate: caches, MSHRs, prefetcher, DRAM, hierarchy."""

from repro.memory.cache import BLOCK_BYTES, Cache, block_of
from repro.memory.dram import DRAMChannel, DRAMTiming
from repro.memory.hierarchy import (AccessResult, HierarchyStats, MemParams,
                                    MemoryHierarchy)
from repro.memory.mshr import Fill, MSHRFile
from repro.memory.prefetcher import StridePrefetcher

__all__ = [
    "AccessResult",
    "BLOCK_BYTES",
    "Cache",
    "DRAMChannel",
    "DRAMTiming",
    "Fill",
    "HierarchyStats",
    "MemParams",
    "MemoryHierarchy",
    "MSHRFile",
    "StridePrefetcher",
    "block_of",
]
