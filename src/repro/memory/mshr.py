"""Miss status holding registers (MSHRs) with same-block merging.

One MSHR tracks one outstanding fill (block address, completion time,
the level that will supply the data and the early tag-known time).  A
demand access that misses on a block with an outstanding fill *merges*:
it completes when the fill completes and consumes no extra MSHR.

``capacity=None`` models the limit study's unlimited MSHRs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class Fill:
    """An outstanding fill for one block."""

    block: int
    complete_cycle: int
    tag_known_cycle: int
    level: str              # "l2" / "l3" / "dram" — where the data comes from
    is_prefetch: bool = False


class MSHRFile:
    """Outstanding-fill tracking with optional capacity limit.

    Prefetch fills are tracked for merging but never count against the
    demand capacity (the model gives the prefetcher its own queue).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("MSHR capacity must be positive or None")
        self.capacity = capacity
        self._fills: Dict[int, Fill] = {}
        self._expiry: List[tuple] = []  # heap of (complete_cycle, block)
        self.demand_in_flight = 0
        self.merges = 0
        self.allocations = 0
        self.full_rejections = 0

    def expire(self, now: int) -> None:
        """Release every fill that has completed by *now*."""
        while self._expiry and self._expiry[0][0] <= now:
            _, block = heapq.heappop(self._expiry)
            fill = self._fills.get(block)
            if fill is not None and fill.complete_cycle <= now:
                del self._fills[block]
                if not fill.is_prefetch:
                    self.demand_in_flight -= 1

    def outstanding(self, block: int) -> Optional[Fill]:
        """Return the outstanding fill for *block*, if any (after expiry)."""
        return self._fills.get(block)

    def can_allocate(self) -> bool:
        return self.capacity is None or self.demand_in_flight < self.capacity

    def merge(self, block: int) -> Optional[Fill]:
        """Record a merged access to an outstanding fill, if one exists."""
        fill = self._fills.get(block)
        if fill is not None:
            self.merges += 1
        return fill

    def allocate(self, fill: Fill) -> None:
        """Track a new outstanding fill.

        Demand fills require a free MSHR (call :meth:`can_allocate` first);
        violating that raises, because silently dropping a fill would break
        the timing model.
        """
        if fill.block in self._fills:
            existing = self._fills[fill.block]
            # Keep the earlier completion; this only happens when a demand
            # miss races a prefetch to the same block.
            if fill.complete_cycle >= existing.complete_cycle:
                return
            if not existing.is_prefetch and fill.is_prefetch:
                fill = Fill(fill.block, fill.complete_cycle,
                            fill.tag_known_cycle, fill.level,
                            is_prefetch=False)
        if not fill.is_prefetch:
            if not self.can_allocate():
                raise RuntimeError("MSHR allocation with no free entry")
            self.demand_in_flight += 1
        self._fills[fill.block] = fill
        self.allocations += 1
        heapq.heappush(self._expiry, (fill.complete_cycle, fill.block))

    def note_rejection(self) -> None:
        self.full_rejections += 1

    def __len__(self) -> int:
        return len(self._fills)
