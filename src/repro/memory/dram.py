"""DRAM channel model: fixed access latency plus bounded issue bandwidth.

The paper's DIMM is DDR3-1600 11-11-11; at the 3.4 GHz core clock a row
access lands around 55-60 ns, i.e. roughly 190 core cycles.  The limit
study only needs "DRAM is ~200 cycles and misses can overlap", so the
model is a single channel that can *start* one burst every
``issue_interval`` cycles and completes each burst ``latency`` cycles
after it starts.  Queueing beyond the issue rate shows up naturally as a
later start time.

The controller also produces an early "data incoming" signal
``wakeup_lead`` cycles before completion — the hook Section 3.2 uses to
wake Non-Ready instructions in time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMTiming:
    """One scheduled DRAM access."""

    start_cycle: int
    complete_cycle: int
    tag_known_cycle: int


class DRAMChannel:
    """Single-channel DRAM with a minimum interval between burst starts."""

    def __init__(self, latency: int = 190, issue_interval: int = 6,
                 wakeup_lead: int = 8) -> None:
        if latency <= 0 or issue_interval <= 0:
            raise ValueError("latency and issue_interval must be positive")
        if wakeup_lead < 0 or wakeup_lead > latency:
            raise ValueError("wakeup_lead must be within [0, latency]")
        self.latency = latency
        self.issue_interval = issue_interval
        self.wakeup_lead = wakeup_lead
        self._next_free = 0
        self.accesses = 0
        self.total_queue_delay = 0

    def schedule(self, request_cycle: int) -> DRAMTiming:
        """Schedule an access arriving at *request_cycle*."""
        start = max(request_cycle, self._next_free)
        self._next_free = start + self.issue_interval
        complete = start + self.latency
        self.accesses += 1
        self.total_queue_delay += start - request_cycle
        return DRAMTiming(start_cycle=start, complete_cycle=complete,
                          tag_known_cycle=complete - self.wakeup_lead)

    @property
    def average_queue_delay(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_queue_delay / self.accesses
