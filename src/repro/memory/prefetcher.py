"""L2 stride/stream prefetcher (per-PC, configurable degree).

This is the "stride prefetcher, degree 4" of Table 1.  It observes the
demand-access stream arriving at the L2 (i.e., L1 misses), detects a
per-PC stride *direction* at cache-block granularity, and keeps a
prefetch frontier ``degree`` blocks ahead of the furthest demand block.

Working at block granularity with direction voting makes the detector
robust to the reordering an out-of-order core applies to the miss
stream — with a large window, the L1-miss addresses of a streaming load
arrive scrambled, which would defeat a naive exact-stride matcher (and
starve exactly the workloads the paper's prefetcher is meant to cover).

The prefetcher only *proposes* block addresses; the hierarchy decides
fill latencies and installs the lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.memory.cache import BLOCK_BYTES


@dataclass
class _StreamEntry:
    last_block: int
    direction_votes: int    # saturating: positive = ascending stream
    frontier: int           # furthest block prefetched so far
    confidence: int


class StridePrefetcher:
    """Per-PC stream detector issuing ``degree`` prefetches when confident."""

    VOTE_LIMIT = 4

    def __init__(self, degree: int = 4, table_size: int = 256,
                 confidence_threshold: int = 2) -> None:
        if degree < 0:
            raise ValueError("degree must be >= 0")
        if confidence_threshold < 1:
            raise ValueError("confidence_threshold must be >= 1")
        self.degree = degree
        self.table_size = table_size
        self.confidence_threshold = confidence_threshold
        self._table: Dict[int, _StreamEntry] = {}
        self.trains = 0
        self.issued = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        """Train on a demand access; return block addresses to prefetch."""
        self.trains += 1
        if self.degree == 0:
            return []
        block = addr // BLOCK_BYTES
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StreamEntry(last_block=block,
                                           direction_votes=0,
                                           frontier=block, confidence=0)
            return []

        delta = block - entry.last_block
        entry.last_block = block
        if delta > 0:
            entry.direction_votes = min(entry.direction_votes + 1,
                                        self.VOTE_LIMIT)
        elif delta < 0:
            entry.direction_votes = max(entry.direction_votes - 1,
                                        -self.VOTE_LIMIT)
        if delta != 0 and abs(delta) <= self.degree:
            entry.confidence = min(entry.confidence + 1, 7)
        elif delta != 0:
            entry.confidence = max(entry.confidence - 1, 0)

        if entry.confidence < self.confidence_threshold:
            entry.frontier = block
            return []
        if entry.direction_votes > 0:
            direction = 1
        elif entry.direction_votes < 0:
            direction = -1
        else:
            return []

        # advance the frontier to `degree` blocks beyond the demand block
        target = block + direction * self.degree
        if direction > 0:
            start = max(entry.frontier + 1, block + 1)
            candidates = range(start, target + 1)
            entry.frontier = max(entry.frontier, target)
        else:
            start = min(entry.frontier - 1, block - 1)
            candidates = range(start, target - 1, -1)
            entry.frontier = min(entry.frontier, target)

        prefetches = [b for b in candidates if b >= 0]
        prefetches = prefetches[:self.degree]
        self.issued += len(prefetches)
        return prefetches
