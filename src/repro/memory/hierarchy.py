"""Three-level cache hierarchy with MSHRs, stride prefetching and DRAM.

This composes the tag-only caches, the MSHR file, the L2 stride
prefetcher and the DRAM channel into the memory system of Table 1:

====  =======================  ========
L1    32 kB, 8-way, 64 B       4 cycles
L2    256 kB, 8-way, 64 B      12 cycles (+ stride prefetcher, degree 4)
L3    1 MB, 16-way, 64 B       36 cycles
DRAM  DDR3-1600-ish            ~190 cycles, bounded issue bandwidth
====  =======================  ========

Latencies are *load-to-use* totals (an L2 hit costs 12 cycles from the
data-cache access, matching how Table 1 quotes them).

The hierarchy also produces the two signals LTP consumes:

* ``tag_known_cycle`` — the early wakeup signal from the phased L2/L3 tag
  arrays or the DRAM controller (Section 3.2),
* ``long_latency`` — True when the access is serviced beyond the L2,
  which is the paper's working definition of a long-latency load.

Outstanding-request accounting integrates the number of in-flight
past-L2 demand requests over time so Figure 1b's "average outstanding
requests" can be reported exactly even when the pipeline skips idle
cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory.cache import Cache, block_of
from repro.memory.dram import DRAMChannel
from repro.memory.mshr import Fill, MSHRFile
from repro.memory.prefetcher import StridePrefetcher

#: level ordering for comparisons
LEVELS = ("l1", "l2", "l3", "dram")


@dataclass
class MemParams:
    """Memory-system configuration (defaults reproduce Table 1)."""

    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l1d_size: int = 32 * 1024
    l1d_ways: int = 8
    l1_latency: int = 4
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    l2_latency: int = 12
    l3_size: int = 1024 * 1024
    l3_ways: int = 16
    l3_latency: int = 36
    dram_latency: int = 190
    dram_issue_interval: int = 6
    dram_wakeup_lead: int = 8
    #: early tag-hit signal arrives this many cycles before the data for
    #: L2/L3 hits (phased tag/data arrays, Section 3.2)
    tag_lead: int = 4
    mshrs: Optional[int] = 16
    prefetch_degree: int = 4
    prefetch_table: int = 256

    def validate(self) -> "MemParams":
        if self.l1_latency <= 0 or self.l2_latency <= self.l1_latency:
            raise ValueError("latencies must increase with level")
        if self.l3_latency <= self.l2_latency:
            raise ValueError("latencies must increase with level")
        return self


@dataclass
class AccessResult:
    """Timing outcome of one data access."""

    complete_cycle: int
    tag_known_cycle: int
    level: str
    merged: bool = False

    @property
    def long_latency(self) -> bool:
        """True when serviced beyond the L2 (the paper's LL definition)."""
        return self.level in ("l3", "dram")


@dataclass
class HierarchyStats:
    """Aggregated hierarchy statistics."""

    demand_accesses: int = 0
    level_hits: dict = field(default_factory=lambda: {lv: 0 for lv in LEVELS})
    mshr_merges: int = 0
    mshr_rejections: int = 0
    prefetches_issued: int = 0
    load_latency_sum: int = 0
    load_count: int = 0

    @property
    def average_load_latency(self) -> float:
        if self.load_count == 0:
            return 0.0
        return self.load_latency_sum / self.load_count


class MemoryHierarchy:
    """The full cache/DRAM stack used by the timing pipeline."""

    def __init__(self, params: Optional[MemParams] = None) -> None:
        self.params = (params or MemParams()).validate()
        p = self.params
        self.l1i = Cache("l1i", p.l1i_size, p.l1i_ways)
        self.l1d = Cache("l1d", p.l1d_size, p.l1d_ways)
        self.l2 = Cache("l2", p.l2_size, p.l2_ways)
        self.l3 = Cache("l3", p.l3_size, p.l3_ways)
        self.mshrs = MSHRFile(p.mshrs)
        self.prefetcher = StridePrefetcher(degree=p.prefetch_degree,
                                           table_size=p.prefetch_table)
        self.dram = DRAMChannel(latency=p.dram_latency,
                                issue_interval=p.dram_issue_interval,
                                wakeup_lead=p.dram_wakeup_lead)
        self.stats = HierarchyStats()
        # outstanding past-L2 demand requests: count + completion heap +
        # exact time integral
        self._outstanding = 0
        self._outstanding_events: List[int] = []
        self._outstanding_integral = 0
        self._last_advance_cycle = 0

    # ------------------------------------------------------------------
    # outstanding-request accounting
    # ------------------------------------------------------------------
    def advance(self, now: int) -> None:
        """Advance the outstanding-request integral to cycle *now*.

        Must be called with non-decreasing *now*; the pipeline calls it
        once per simulated cycle (including jumps over idle spans).
        """
        t = self._last_advance_cycle
        if now <= t:
            return
        events = self._outstanding_events
        while events and events[0] <= now:
            event_cycle = heapq.heappop(events)
            if event_cycle > t:
                self._outstanding_integral += self._outstanding * (event_cycle - t)
                t = event_cycle
            self._outstanding -= 1
        self._outstanding_integral += self._outstanding * (now - t)
        self._last_advance_cycle = now
        expiry = self.mshrs._expiry
        if expiry and expiry[0][0] <= now:
            self.mshrs.expire(now)

    def _track_outstanding(self, start: int, complete: int) -> None:
        self._outstanding += 1
        heapq.heappush(self._outstanding_events, complete)
        # `start` is always >= the last advance cycle because accesses are
        # issued at the current pipeline cycle.

    def outstanding_now(self) -> int:
        return self._outstanding

    def average_outstanding(self, total_cycles: Optional[int] = None) -> float:
        cycles = total_cycles if total_cycles else self._last_advance_cycle
        if cycles <= 0:
            return 0.0
        return self._outstanding_integral / cycles

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def can_accept_miss(self, addr: int) -> bool:
        """True if a miss to *addr* can be tracked right now."""
        block = block_of(addr)
        if self.l1d.probe(block):
            return True
        if self.mshrs.outstanding(block) is not None:
            return True
        return self.mshrs.can_allocate()

    def access_data(self, addr: int, now: int, is_store: bool = False,
                    pc: int = 0) -> Optional[AccessResult]:
        """Access the data path at cycle *now*.

        Returns the timing result, or ``None`` when every MSHR is busy
        (the caller must retry the access on a later cycle).
        """
        p = self.params
        block = block_of(addr)
        self.stats.demand_accesses += 1

        # An outstanding fill wins over a tag "hit": blocks are inserted
        # at request time, so the tag array can claim a block whose data
        # is still in flight — such accesses must merge with the fill.
        fill = self.mshrs.merge(block)
        if fill is not None:
            self.stats.mshr_merges += 1
            self.stats.level_hits[fill.level] += 1
            self.l1d.insert(block)
            complete = max(fill.complete_cycle, now + p.l1_latency)
            tag_known = min(fill.tag_known_cycle, complete)
            result = AccessResult(complete, tag_known, fill.level,
                                  merged=True)
            return self._finish_load_stat(result, now)

        if self.l1d.lookup(block):
            self.stats.level_hits["l1"] += 1
            complete = now + p.l1_latency
            return self._finish_load_stat(
                AccessResult(complete, complete, "l1"), now)

        if not self.mshrs.can_allocate():
            self.stats.mshr_rejections += 1
            self.mshrs.note_rejection()
            return None

        # L1 miss path: train the prefetcher on the L1-miss stream.
        self._issue_prefetches(pc, addr, now)

        if self.l2.lookup(block):
            self.stats.level_hits["l2"] += 1
            complete = now + p.l2_latency
            tag_known = complete - min(p.tag_lead, p.l2_latency - 1)
            level = "l2"
        elif self.l3.lookup(block):
            self.stats.level_hits["l3"] += 1
            complete = now + p.l3_latency
            tag_known = complete - min(p.tag_lead, p.l3_latency - 1)
            level = "l3"
            self.l2.insert(block)
        else:
            self.stats.level_hits["dram"] += 1
            timing = self.dram.schedule(now + p.l3_latency)
            complete = timing.complete_cycle
            tag_known = timing.tag_known_cycle
            level = "dram"
            self.l3.insert(block)
            self.l2.insert(block)

        self.l1d.insert(block)
        self.mshrs.allocate(Fill(block, complete, tag_known, level))
        if level in ("l3", "dram"):
            self._track_outstanding(now, complete)
        return self._finish_load_stat(
            AccessResult(complete, tag_known, level), now)

    def _finish_load_stat(self, result: AccessResult,
                          now: int) -> AccessResult:
        self.stats.load_latency_sum += result.complete_cycle - now
        self.stats.load_count += 1
        return result

    def _issue_prefetches(self, pc: int, addr: int, now: int) -> None:
        blocks = self.prefetcher.observe(pc, addr)
        if not blocks:
            return
        p = self.params
        for block in blocks:
            if self.l2.probe(block) or self.mshrs.outstanding(block):
                continue
            if self.l3.probe(block):
                complete = now + p.l3_latency
                level = "l3"
            else:
                timing = self.dram.schedule(now + p.l3_latency)
                complete = timing.complete_cycle
                level = "dram"
                self.l3.insert(block)
            self.l2.insert(block)
            self.mshrs.allocate(Fill(block, complete, complete, level,
                                     is_prefetch=True))
            self.stats.prefetches_issued += 1

    def commit_store(self, addr: int) -> None:
        """Architectural store commit: install the block (write-allocate).

        Store fill timing does not stall commit in this model; the store
        buffer hides it (documented simplification).
        """
        block = block_of(addr)
        if not self.l1d.probe(block):
            self.l1d.insert(block)
            if not self.l2.probe(block):
                self.l2.insert(block)
                if not self.l3.probe(block):
                    self.l3.insert(block)

    # ------------------------------------------------------------------
    # instruction path
    # ------------------------------------------------------------------
    def access_inst(self, addr: int, now: int) -> AccessResult:
        """Fetch-side access; misses bypass the MSHR limit (own buffer)."""
        p = self.params
        block = block_of(addr)
        if self.l1i.lookup(block):
            complete = now + 1  # fetch pipeline already covers L1I latency
            return AccessResult(complete, complete, "l1")
        if self.l2.lookup(block):
            complete = now + p.l2_latency
            level = "l2"
        elif self.l3.lookup(block):
            complete = now + p.l3_latency
            level = "l3"
            self.l2.insert(block)
        else:
            timing = self.dram.schedule(now + p.l3_latency)
            complete = timing.complete_cycle
            level = "dram"
            self.l3.insert(block)
            self.l2.insert(block)
        self.l1i.insert(block)
        return AccessResult(complete, complete, level)

    # ------------------------------------------------------------------
    # functional (timing-free) mode for oracle pre-passes
    # ------------------------------------------------------------------
    def functional_access(self, addr: int, is_store: bool = False,
                          pc: int = 0) -> str:
        """Touch the hierarchy with no timing; return the hit level.

        Used by the oracle pre-pass to label each dynamic load with the
        level that services it, including prefetcher effects.
        """
        block = block_of(addr)
        if self.l1d.lookup(block):
            return "l1"
        blocks = self.prefetcher.observe(pc, addr)
        for pf_block in blocks:
            if not self.l2.probe(pf_block):
                self.l2.insert(pf_block)
                if not self.l3.probe(pf_block):
                    self.l3.insert(pf_block)
        if self.l2.lookup(block):
            level = "l2"
        elif self.l3.lookup(block):
            level = "l3"
            self.l2.insert(block)
        else:
            level = "dram"
            self.l3.insert(block)
            self.l2.insert(block)
        self.l1d.insert(block)
        return level
