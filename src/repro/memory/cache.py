"""Set-associative cache model with true-LRU replacement.

The cache tracks *presence* only (tags, no data) — the functional executor
owns values.  Lookups and insertions operate on 64-byte block addresses.
Timing (hit latencies, fill completion) is owned by
:class:`repro.memory.hierarchy.MemoryHierarchy`; this class is purely the
tag/replacement state, which keeps it independently testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

BLOCK_BYTES = 64
BLOCK_SHIFT = 6


def block_of(addr: int) -> int:
    """Return the block address (block number) for a byte address."""
    return addr >> BLOCK_SHIFT


class Cache:
    """A set-associative, true-LRU, tag-only cache.

    Args:
        name: label for stats ("l1d", "l2", ...).
        size_bytes: total capacity.
        ways: associativity.
        block_bytes: line size (64 in all configurations used here).
    """

    def __init__(self, name: str, size_bytes: int, ways: int,
                 block_bytes: int = BLOCK_BYTES) -> None:
        if size_bytes % (ways * block_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"ways*block ({ways}*{block_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.block_bytes = block_bytes
        self.num_sets = size_bytes // (ways * block_bytes)
        # per set: dict block -> last-use stamp (monotonic counter)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _set_index(self, block: int) -> int:
        return block % self.num_sets

    def lookup(self, block: int, update_lru: bool = True) -> bool:
        """Return True on hit.  Updates LRU state and hit/miss counters."""
        entry = self._sets[self._set_index(block)]
        if block in entry:
            self.hits += 1
            if update_lru:
                self._stamp += 1
                entry[block] = self._stamp
            return True
        self.misses += 1
        return False

    def probe(self, block: int) -> bool:
        """Presence check with no LRU update and no stat counting."""
        return block in self._sets[self._set_index(block)]

    def insert(self, block: int) -> Optional[int]:
        """Insert *block*; return the evicted block, if any."""
        entry = self._sets[self._set_index(block)]
        self._stamp += 1
        if block in entry:
            entry[block] = self._stamp
            return None
        victim: Optional[int] = None
        if len(entry) >= self.ways:
            victim = min(entry, key=entry.get)
            del entry[victim]
        entry[block] = self._stamp
        return victim

    def invalidate(self, block: int) -> bool:
        """Remove *block* if present; return True if it was present."""
        entry = self._sets[self._set_index(block)]
        return entry.pop(block, None) is not None

    def occupancy(self) -> int:
        """Total number of valid blocks."""
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
