"""A tiny text assembler for the repro ISA.

Syntax, one instruction per line::

    loop:                     # labels end with ':'
        ld   r2, r1, 0        # r2 <- mem[r1 + 0]
        addi r1, r2, 8
        bnez r2, loop         # branch to label
        halt

Comments start with ``#`` or ``;``.  Operands are comma separated.
Memory operations use ``op dst, base, disp`` (or ``st data, base, disp``
-- the *data* register is written first to match common RISC practice of
listing the value being stored first).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.isa import registers
from repro.isa.instructions import Instruction, InstructionError, OPCODES
from repro.isa.program import Program, ProgramError, resolve_labels


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with line information."""


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_IMM_OPS = frozenset(
    ["li", "fli", "addi", "andi", "slli", "srli",
     "ld", "fld", "st", "fst"]
)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {lineno}: bad immediate {token!r}") from exc


def _build(opcode: str, operands: List[str], lineno: int) -> Instruction:
    op_class, n_srcs, has_dst = OPCODES[opcode]
    dst = None
    srcs: List[str] = []
    imm = 0
    label = None
    rest = list(operands)

    if has_dst:
        if not rest:
            raise AssemblerError(f"line {lineno}: {opcode} missing destination")
        dst = rest.pop(0)

    if opcode in ("st", "fst"):
        # st data, base, disp  ->  srcs = (base, data); imm = disp
        if len(rest) not in (2, 3):
            raise AssemblerError(f"line {lineno}: {opcode} expects data, base[, disp]")
        data = rest.pop(0)
        base = rest.pop(0)
        imm = _parse_int(rest.pop(0), lineno) if rest else 0
        srcs = [base, data]
    elif op_class.is_control:
        if not rest:
            raise AssemblerError(f"line {lineno}: {opcode} missing target label")
        label = rest.pop(-1)
        srcs = rest
    else:
        while rest and registers.is_register(rest[0]) and len(srcs) < n_srcs:
            srcs.append(rest.pop(0))
        if rest:
            if opcode in _IMM_OPS or opcode in ("ldx", "fldx"):
                imm = _parse_int(rest.pop(0), lineno)
            if rest:
                raise AssemblerError(
                    f"line {lineno}: trailing operands for {opcode}: {rest!r}"
                )
        if len(srcs) != n_srcs:
            raise AssemblerError(
                f"line {lineno}: {opcode} expects {n_srcs} register sources"
            )

    try:
        return Instruction(opcode=opcode, dst=dst, srcs=tuple(srcs),
                           imm=imm, label=label)
    except InstructionError as exc:
        raise AssemblerError(f"line {lineno}: {exc}") from exc


def assemble(text: str, name: str = "program") -> Program:
    """Assemble *text* into a :class:`Program`.

    Raises :class:`AssemblerError` with a line number on any syntax error.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        if opcode not in OPCODES:
            raise AssemblerError(f"line {lineno}: unknown opcode {opcode!r}")
        operands = []
        if len(parts) > 1:
            operands = [tok.strip() for tok in parts[1].split(",") if tok.strip()]
        instructions.append(_build(opcode, operands, lineno))

    if not instructions:
        raise AssemblerError("empty program")

    try:
        return resolve_labels(instructions, labels, name=name)
    except ProgramError as exc:
        raise AssemblerError(str(exc)) from exc
