"""Instruction definitions for the repro ISA.

The ISA is a small RISC-like instruction set rich enough to express the
kernels the LTP paper reasons about (pointer chasing, indirect array
accesses, floating-point lattice updates, streaming stores) while staying
simple enough to interpret functionally at trace-generation speed.

Each static :class:`Instruction` carries its operation class
(:class:`OpClass`), destination/source registers, an immediate, and an
optional branch target.  Dynamic (per-execution) information lives in
:class:`repro.isa.trace.DynInst`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa import registers


class OpClass(enum.Enum):
    """Functional classes; these drive latency and FU selection."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"

    @property
    def is_mem(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def is_long_fixed_latency(self) -> bool:
        """Classes the paper treats as intrinsically long latency."""
        return self in (OpClass.INT_DIV, OpClass.FP_DIV)


#: opcode mnemonic -> (OpClass, number of register sources, has destination)
OPCODES = {
    "add": (OpClass.INT_ALU, 2, True),
    "sub": (OpClass.INT_ALU, 2, True),
    "and": (OpClass.INT_ALU, 2, True),
    "or": (OpClass.INT_ALU, 2, True),
    "xor": (OpClass.INT_ALU, 2, True),
    "sll": (OpClass.INT_ALU, 2, True),
    "srl": (OpClass.INT_ALU, 2, True),
    "addi": (OpClass.INT_ALU, 1, True),
    "andi": (OpClass.INT_ALU, 1, True),
    "slli": (OpClass.INT_ALU, 1, True),
    "srli": (OpClass.INT_ALU, 1, True),
    "li": (OpClass.INT_ALU, 0, True),
    "mov": (OpClass.INT_ALU, 1, True),
    "mul": (OpClass.INT_MUL, 2, True),
    "div": (OpClass.INT_DIV, 2, True),
    "rem": (OpClass.INT_DIV, 2, True),
    "fadd": (OpClass.FP_ADD, 2, True),
    "fsub": (OpClass.FP_ADD, 2, True),
    "fmul": (OpClass.FP_MUL, 2, True),
    "fdiv": (OpClass.FP_DIV, 2, True),
    "fsqrt": (OpClass.FP_DIV, 1, True),
    "fmov": (OpClass.FP_ADD, 1, True),
    "fli": (OpClass.FP_ADD, 0, True),
    "cvt": (OpClass.FP_ADD, 1, True),  # int <-> fp move/convert
    # ld  rd, rs1, imm      : rd  <- mem[rs1 + imm]
    # ldx rd, rs1, rs2      : rd  <- mem[rs1 + rs2*8]
    "ld": (OpClass.LOAD, 1, True),
    "ldx": (OpClass.LOAD, 2, True),
    "fld": (OpClass.LOAD, 1, True),
    "fldx": (OpClass.LOAD, 2, True),
    # st  rs2, rs1, imm     : mem[rs1 + imm] <- rs2
    "st": (OpClass.STORE, 2, False),
    "fst": (OpClass.STORE, 2, False),
    # branches: beq rs1, rs2, label
    "beq": (OpClass.BRANCH, 2, False),
    "bne": (OpClass.BRANCH, 2, False),
    "blt": (OpClass.BRANCH, 2, False),
    "bge": (OpClass.BRANCH, 2, False),
    "bltz": (OpClass.BRANCH, 1, False),
    "bgez": (OpClass.BRANCH, 1, False),
    "bnez": (OpClass.BRANCH, 1, False),
    "beqz": (OpClass.BRANCH, 1, False),
    "j": (OpClass.JUMP, 0, False),
    "halt": (OpClass.NOP, 0, False),
    "nop": (OpClass.NOP, 0, False),
}


#: functional-unit pool serving each class (drives issue-port contention)
FU_GROUP = {
    OpClass.INT_ALU: "alu",
    OpClass.INT_MUL: "muldiv",
    OpClass.INT_DIV: "muldiv",
    OpClass.FP_ADD: "fp",
    OpClass.FP_MUL: "fp",
    OpClass.FP_DIV: "fp",
    OpClass.LOAD: "mem",
    OpClass.STORE: "mem",
    OpClass.BRANCH: "alu",
    OpClass.JUMP: "alu",
    OpClass.NOP: "alu",
}

#: classes that occupy their (non-pipelined) functional unit exclusively
NONPIPELINED_CLASSES = frozenset((OpClass.INT_DIV, OpClass.FP_DIV))


class InstructionError(ValueError):
    """Raised when an instruction is malformed."""


@dataclass(frozen=True)
class Instruction:
    """A single static instruction.

    Attributes:
        opcode: mnemonic, e.g. ``"ld"``.
        dst: destination register name or ``None``.
        srcs: tuple of source register names (address registers first for
            memory operations; store data register last).
        imm: immediate operand (displacement for memory ops, literal for
            ``li``/``addi`` style ops).
        target: branch/jump target as a static instruction index; resolved
            by the assembler from labels.
        label: unresolved label text (kept for round-tripping/debugging).
    """

    opcode: str
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise InstructionError(f"unknown opcode {self.opcode!r}")
        op_class, n_srcs, has_dst = OPCODES[self.opcode]
        if len(self.srcs) != n_srcs:
            raise InstructionError(
                f"{self.opcode} expects {n_srcs} register sources, "
                f"got {len(self.srcs)}: {self.srcs!r}"
            )
        if has_dst and self.dst is None:
            raise InstructionError(f"{self.opcode} requires a destination")
        if not has_dst and self.dst is not None:
            raise InstructionError(f"{self.opcode} takes no destination")
        for reg in self.srcs:
            registers.validate(reg)
        if self.dst is not None:
            registers.validate(self.dst)
        if op_class.is_control and self.target is None and self.label is None:
            raise InstructionError(f"{self.opcode} requires a target or label")

    @property
    def op_class(self) -> OpClass:
        return OPCODES[self.opcode][0]

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op_class.is_mem

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.op_class.is_control

    @property
    def is_halt(self) -> bool:
        return self.opcode == "halt"

    @property
    def writes_fp(self) -> bool:
        return self.dst is not None and registers.is_fp_register(self.dst)

    @property
    def writes_int(self) -> bool:
        return self.dst is not None and registers.is_int_register(self.dst)

    def with_target(self, target: int) -> "Instruction":
        """Return a copy with the branch target resolved to *target*."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=self.srcs,
            imm=self.imm,
            target=target,
            label=self.label,
            comment=self.comment,
        )

    def render(self) -> str:
        """Render the instruction back to assembly text."""
        parts = [self.opcode]
        operands = []
        if self.dst is not None:
            operands.append(self.dst)
        operands.extend(self.srcs)
        if self.opcode in ("li", "fli", "addi", "andi", "slli", "srli",
                           "ld", "ldx", "fld", "fldx", "st", "fst"):
            operands.append(str(self.imm))
        if self.label is not None:
            operands.append(self.label)
        elif self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            parts.append(", ".join(operands))
        text = " ".join(parts)
        if self.comment:
            text = f"{text}  # {self.comment}"
        return text

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return self.render()
