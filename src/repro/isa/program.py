"""Program container: an ordered list of instructions plus label map."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.isa.instructions import Instruction, InstructionError


class ProgramError(ValueError):
    """Raised for malformed programs (bad labels, empty bodies, ...)."""


@dataclass
class Program:
    """A static program: instructions with resolved branch targets.

    Labels map a symbolic name to the index of the instruction that
    follows it.  Branch targets are stored as static instruction indices
    so the executor never needs the label table.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for label, index in self.labels.items():
            if not 0 <= index <= n:
                raise ProgramError(f"label {label!r} out of range: {index}")
        for pc, inst in enumerate(self.instructions):
            if inst.is_control and inst.target is None:
                raise ProgramError(f"unresolved branch at pc {pc}: {inst}")
            if inst.is_control and not 0 <= inst.target < n:
                raise ProgramError(
                    f"branch target out of range at pc {pc}: {inst.target}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def label_for(self, index: int) -> Optional[str]:
        """Return the first label pointing at *index*, if any."""
        for label, target in self.labels.items():
            if target == index:
                return label
        return None

    def listing(self) -> str:
        """Return a human-readable program listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for label in sorted(by_index.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}  {inst.render()}")
        return "\n".join(lines)


def resolve_labels(instructions: Sequence[Instruction],
                   labels: Dict[str, int],
                   name: str = "program") -> Program:
    """Resolve symbolic labels on control instructions into indices."""
    resolved: List[Instruction] = []
    for pc, inst in enumerate(instructions):
        if inst.is_control and inst.target is None:
            if inst.label not in labels:
                raise ProgramError(f"undefined label {inst.label!r} at pc {pc}")
            resolved.append(inst.with_target(labels[inst.label]))
        else:
            resolved.append(inst)
    try:
        return Program(instructions=resolved, labels=dict(labels), name=name)
    except InstructionError as exc:  # pragma: no cover - defensive
        raise ProgramError(str(exc)) from exc
