"""Functional executor: interprets a Program and emits a dynamic trace.

The executor maintains architectural state (integer registers, FP
registers modelled as integers for determinism, and a sparse 8-byte-word
memory) and yields :class:`~repro.isa.trace.DynInst` records in program
order.  Branches are resolved against real register values, so pointer
chasing and data-dependent control flow behave exactly as they would on
hardware.

The executor also tracks, per architectural register, the sequence number
of the last dynamic writer.  That gives every DynInst its true dataflow
edges without any separate dependence analysis.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import Program
from repro.isa.trace import DynInst

WORD = 8  # bytes per memory word

_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


class ExecutionError(RuntimeError):
    """Raised on functional-execution faults (bad PC, division by zero)."""


class Memory:
    """Sparse word-addressed functional memory (8-byte words)."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self._words: Dict[int, int] = {}
        if initial:
            for addr, value in initial.items():
                self.store(addr, value)

    @staticmethod
    def _word_addr(addr: int) -> int:
        if addr < 0:
            raise ExecutionError(f"negative address 0x{addr:x}")
        return addr - (addr % WORD)

    def load(self, addr: int) -> int:
        return self._words.get(self._word_addr(addr), 0)

    def store(self, addr: int, value: int) -> None:
        self._words[self._word_addr(addr)] = _to_signed(value)

    def __len__(self) -> int:
        return len(self._words)


class Executor:
    """Interprets a :class:`Program`, yielding the dynamic trace."""

    def __init__(self, program: Program,
                 memory: Optional[Memory] = None,
                 int_regs: Optional[Dict[str, int]] = None,
                 fp_regs: Optional[Dict[str, int]] = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.regs: Dict[str, int] = {}
        for name, value in (int_regs or {}).items():
            self.regs[name] = _to_signed(value)
        for name, value in (fp_regs or {}).items():
            self.regs[name] = _to_signed(value)
        # last dynamic writer per architectural register; -1 = initial state
        self._last_writer: Dict[str, int] = {}
        self.pc = 0
        self.seq = 0
        self.halted = False

    def _read(self, reg: str) -> int:
        return self.regs.get(reg, 0)

    def _effective_address(self, inst: Instruction) -> int:
        if inst.opcode in ("ld", "fld"):
            return self._read(inst.srcs[0]) + inst.imm
        if inst.opcode in ("ldx", "fldx"):
            return self._read(inst.srcs[0]) + self._read(inst.srcs[1]) * WORD
        if inst.opcode in ("st", "fst"):
            # srcs = (base, data)
            return self._read(inst.srcs[0]) + inst.imm
        raise ExecutionError(f"not a memory op: {inst}")

    def _alu(self, inst: Instruction) -> int:
        op = inst.opcode
        read = self._read
        if op == "li" or op == "fli":
            return inst.imm
        if op == "mov" or op == "fmov" or op == "cvt":
            return read(inst.srcs[0])
        if op == "addi":
            return read(inst.srcs[0]) + inst.imm
        if op == "andi":
            return read(inst.srcs[0]) & inst.imm
        if op == "slli":
            return read(inst.srcs[0]) << (inst.imm & 63)
        if op == "srli":
            return (read(inst.srcs[0]) & _MASK64) >> (inst.imm & 63)
        a = read(inst.srcs[0])
        b = read(inst.srcs[1]) if len(inst.srcs) > 1 else 0
        if op in ("add", "fadd"):
            return a + b
        if op in ("sub", "fsub"):
            return a - b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "sll":
            return a << (b & 63)
        if op == "srl":
            return (a & _MASK64) >> (b & 63)
        if op in ("mul", "fmul"):
            return a * b
        if op in ("div", "fdiv"):
            if b == 0:
                return 0  # architectural choice: div-by-zero yields 0
            return int(a / b) if (a < 0) != (b < 0) else a // b
        if op == "rem":
            return a % b if b else 0
        if op == "fsqrt":
            return int(abs(a) ** 0.5)
        raise ExecutionError(f"unhandled ALU opcode {op!r}")

    def _branch_taken(self, inst: Instruction) -> bool:
        read = self._read
        op = inst.opcode
        if op == "beq":
            return read(inst.srcs[0]) == read(inst.srcs[1])
        if op == "bne":
            return read(inst.srcs[0]) != read(inst.srcs[1])
        if op == "blt":
            return read(inst.srcs[0]) < read(inst.srcs[1])
        if op == "bge":
            return read(inst.srcs[0]) >= read(inst.srcs[1])
        if op == "bltz":
            return read(inst.srcs[0]) < 0
        if op == "bgez":
            return read(inst.srcs[0]) >= 0
        if op == "bnez":
            return read(inst.srcs[0]) != 0
        if op == "beqz":
            return read(inst.srcs[0]) == 0
        raise ExecutionError(f"unhandled branch opcode {op!r}")

    def step(self) -> Optional[DynInst]:
        """Execute one instruction; return its DynInst or None if halted."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise ExecutionError(f"pc out of range: {self.pc}")
        inst = self.program[self.pc]
        producers = tuple(self._last_writer.get(reg, -1) for reg in inst.srcs)
        addr: Optional[int] = None
        store_value: Optional[int] = None
        taken: Optional[bool] = None
        next_pc = self.pc + 1
        op_class = inst.op_class

        if inst.is_halt:
            self.halted = True
        elif op_class is OpClass.NOP:
            pass
        elif inst.is_load:
            addr = self._effective_address(inst)
            value = self.memory.load(addr)
            self.regs[inst.dst] = _to_signed(value)
        elif inst.is_store:
            addr = self._effective_address(inst)
            store_value = self._read(inst.srcs[1])
            self.memory.store(addr, store_value)
        elif inst.is_branch:
            taken = self._branch_taken(inst)
            if taken:
                next_pc = inst.target
        elif op_class is OpClass.JUMP:
            taken = True
            next_pc = inst.target
        else:
            self.regs[inst.dst] = _to_signed(self._alu(inst))

        dyn = DynInst(seq=self.seq, pc=self.pc, inst=inst,
                      src_producers=producers, addr=addr,
                      store_value=store_value, taken=taken, next_pc=next_pc)
        if inst.dst is not None:
            self._last_writer[inst.dst] = self.seq
        self.seq += 1
        self.pc = next_pc
        return dyn

    def run(self, max_insts: int) -> Iterator[DynInst]:
        """Yield up to *max_insts* dynamic instructions."""
        for _ in range(max_insts):
            dyn = self.step()
            if dyn is None:
                return
            yield dyn


def trace_of(program: Program,
             max_insts: int,
             memory: Optional[Memory] = None,
             int_regs: Optional[Dict[str, int]] = None,
             fp_regs: Optional[Dict[str, int]] = None) -> List[DynInst]:
    """Convenience wrapper: run *program* and return the trace as a list."""
    executor = Executor(program, memory=memory, int_regs=int_regs,
                        fp_regs=fp_regs)
    return list(executor.run(max_insts))
