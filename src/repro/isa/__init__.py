"""Small RISC-like ISA: instructions, assembler, functional executor.

This package provides everything needed to express the paper's kernels as
real programs and turn them into dynamic traces with true dependences:

* :mod:`repro.isa.registers` — architectural register namespace.
* :mod:`repro.isa.instructions` — static instruction definitions.
* :mod:`repro.isa.program` — program container with label resolution.
* :mod:`repro.isa.assembler` — text assembler.
* :mod:`repro.isa.executor` — architectural interpreter producing traces.
* :mod:`repro.isa.trace` — the :class:`DynInst` dynamic record.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.executor import ExecutionError, Executor, Memory, trace_of
from repro.isa.instructions import Instruction, InstructionError, OpClass
from repro.isa.program import Program, ProgramError
from repro.isa.trace import DynInst

__all__ = [
    "AssemblerError",
    "assemble",
    "DynInst",
    "ExecutionError",
    "Executor",
    "Instruction",
    "InstructionError",
    "Memory",
    "OpClass",
    "Program",
    "ProgramError",
    "trace_of",
]
