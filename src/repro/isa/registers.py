"""Architectural register namespace for the repro ISA.

The ISA exposes 32 integer registers (``r0`` .. ``r31``) and 32
floating-point registers (``f0`` .. ``f31``).  Registers are plain strings
(``"r3"``, ``"f7"``); this keeps instructions hashable and trivially
printable while the helpers below centralise validation and classification.

``r0`` is a general-purpose register (it is *not* hardwired to zero); the
assembler provides ``li`` for loading immediates instead.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32

INT_REGS = tuple(f"r{i}" for i in range(NUM_INT_REGS))
FP_REGS = tuple(f"f{i}" for i in range(NUM_FP_REGS))

_VALID = frozenset(INT_REGS) | frozenset(FP_REGS)


class RegisterError(ValueError):
    """Raised when a register name is malformed or out of range."""


def is_register(name: str) -> bool:
    """Return True if *name* names an architectural register."""
    return name in _VALID


def is_int_register(name: str) -> bool:
    """Return True if *name* is an integer register (``rN``)."""
    return name in _VALID and name[0] == "r"


def is_fp_register(name: str) -> bool:
    """Return True if *name* is a floating-point register (``fN``)."""
    return name in _VALID and name[0] == "f"


def reg_class(name: str) -> str:
    """Return ``"int"`` or ``"fp"`` for a valid register name.

    Raises :class:`RegisterError` for anything else.
    """
    if is_int_register(name):
        return "int"
    if is_fp_register(name):
        return "fp"
    raise RegisterError(f"not a register: {name!r}")


def reg_index(name: str) -> int:
    """Return the numeric index of a valid register name."""
    if not is_register(name):
        raise RegisterError(f"not a register: {name!r}")
    return int(name[1:])


def validate(name: str) -> str:
    """Return *name* unchanged if valid, else raise :class:`RegisterError`."""
    if not is_register(name):
        raise RegisterError(f"not a register: {name!r}")
    return name
