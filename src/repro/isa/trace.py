"""Dynamic-instruction records produced by the functional executor.

A :class:`DynInst` is one executed instance of a static instruction.  It
carries everything a trace-driven timing model needs:

* true register dataflow, as the sequence numbers of the producing
  dynamic instructions (``src_producers``),
* the effective memory address for loads/stores,
* the actual branch direction and successor PC.

The timing model treats ``src_producers`` as the rename result: it is
exactly the mapping a RAT would compute, so the timing model can key its
scoreboard by sequence number and model the physical register file purely
as an occupancy resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.instructions import Instruction, OpClass


@dataclass
class DynInst:
    """One dynamic instruction instance.

    Attributes:
        seq: global sequence number (0-based, program order).
        pc: static instruction index.
        inst: the static instruction.
        src_producers: for each register source, the sequence number of
            the dynamic instruction that produced it, or ``-1`` if the
            value predates the trace (initial architectural state).
        addr: effective byte address for loads/stores, else ``None``.
        store_value: value stored (stores only) — used by functional
            memory replay in tests.
        taken: actual branch direction (branches only).
        next_pc: static index of the successor instruction.
    """

    __slots__ = ("seq", "pc", "inst", "src_producers", "addr",
                 "store_value", "taken", "next_pc")

    seq: int
    pc: int
    inst: Instruction
    src_producers: Tuple[int, ...]
    addr: Optional[int]
    store_value: Optional[int]
    taken: Optional[bool]
    next_pc: int

    @property
    def op_class(self) -> OpClass:
        return self.inst.op_class

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def is_mem(self) -> bool:
        return self.inst.is_mem

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def is_control(self) -> bool:
        return self.inst.is_control

    @property
    def has_dst(self) -> bool:
        return self.inst.dst is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        extra = []
        if self.addr is not None:
            extra.append(f"addr=0x{self.addr:x}")
        if self.taken is not None:
            extra.append(f"taken={self.taken}")
        suffix = (" " + " ".join(extra)) if extra else ""
        return f"<DynInst #{self.seq} pc={self.pc} {self.inst.render()}{suffix}>"
