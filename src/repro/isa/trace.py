"""Dynamic-instruction records produced by the functional executor.

A :class:`DynInst` is one executed instance of a static instruction.  It
carries everything a trace-driven timing model needs:

* true register dataflow, as the sequence numbers of the producing
  dynamic instructions (``src_producers``),
* the effective memory address for loads/stores,
* the actual branch direction and successor PC.

The timing model treats ``src_producers`` as the rename result: it is
exactly the mapping a RAT would compute, so the timing model can key its
scoreboard by sequence number and model the physical register file purely
as an occupancy resource.

Because the pipeline touches every record many times per simulated
cycle, all per-instruction metadata the hot loop needs — operation
class, load/store/branch flags, FU group, the non-pipelined flag, the
register-file class of the destination, and the instruction's byte
address in the code region — is *pre-decoded once* here at trace build
time and stored in plain ``__slots__`` attributes.  The timing model
never performs a property call or opcode-table lookup per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import (FU_GROUP, NONPIPELINED_CLASSES,
                                    Instruction, OpClass)

#: byte address of static instruction 0 (code lives far from data)
CODE_BASE = 1 << 40
INST_BYTES = 4

#: dense integer ids for the columnar (struct-of-arrays) kernel engine:
#: op classes and FU groups numbered in definition order, so per-run
#: latency and FU tables are plain lists indexed by these ids
OP_CLASS_ID: Dict[OpClass, int] = {op: i for i, op in enumerate(OpClass)}
FU_GROUPS: Tuple[str, ...] = tuple(dict.fromkeys(
    FU_GROUP[op] for op in OpClass))
CLASS_FU_GID: Tuple[int, ...] = tuple(
    FU_GROUPS.index(FU_GROUP[op]) for op in OpClass)


def predecode_columns(trace: Sequence["DynInst"]) -> Dict[str, List]:
    """Columnar mirror of the pre-decoded per-instruction metadata.

    Returns parallel plain lists (one entry per dynamic instruction, in
    trace order) for every field the kernel engine's hot loop indexes by
    position instead of reaching through ``DynInst`` attributes:
    fetch-side fields (``pc``, ``code_addr``, ``is_branch``, ``taken``)
    and issue-side fields (``cid`` — dense :data:`OP_CLASS_ID`, ``gid``
    — dense FU-group id, ``nonpipelined``, ``n_srcs``).  The columns are
    configuration-independent, so one predecode serves any number of
    simulated configurations over the same trace.
    """
    class_id = OP_CLASS_ID
    gid_of = CLASS_FU_GID
    cid = [class_id[dyn.op_class] for dyn in trace]
    return {
        "pc": [dyn.pc for dyn in trace],
        "code_addr": [dyn.code_addr for dyn in trace],
        "is_branch": [dyn.is_branch for dyn in trace],
        "taken": [dyn.taken for dyn in trace],
        "cid": cid,
        "gid": [gid_of[c] for c in cid],
        "nonpipelined": [dyn.nonpipelined for dyn in trace],
        "n_srcs": [dyn.n_srcs for dyn in trace],
    }


@dataclass(eq=False)
class DynInst:
    """One dynamic instruction instance.

    Attributes:
        seq: global sequence number (0-based, program order).
        pc: static instruction index.
        inst: the static instruction.
        src_producers: for each register source, the sequence number of
            the dynamic instruction that produced it, or ``-1`` if the
            value predates the trace (initial architectural state).
        addr: effective byte address for loads/stores, else ``None``.
        store_value: value stored (stores only) — used by functional
            memory replay in tests.
        taken: actual branch direction (branches only).
        next_pc: static index of the successor instruction.

    Pre-decoded (derived from ``inst``/``pc`` in ``__post_init__``):
        op_class, is_load, is_store, is_mem, is_branch, is_control,
        has_dst, writes_fp, rf_class (``"int"``/``"fp"``/``None``),
        fu_group, nonpipelined, n_srcs, and code_addr (the instruction's
        byte address, ``CODE_BASE + pc * INST_BYTES``).
    """

    __slots__ = ("seq", "pc", "inst", "src_producers", "addr",
                 "store_value", "taken", "next_pc",
                 # pre-decoded metadata (set in __post_init__)
                 "op_class", "is_load", "is_store", "is_mem", "is_branch",
                 "is_control", "has_dst", "writes_fp", "rf_class",
                 "fu_group", "nonpipelined", "n_srcs", "code_addr")

    seq: int
    pc: int
    inst: Instruction
    src_producers: Tuple[int, ...]
    addr: Optional[int]
    store_value: Optional[int]
    taken: Optional[bool]
    next_pc: int

    def __post_init__(self) -> None:
        inst = self.inst
        op_class = inst.op_class
        self.op_class = op_class
        self.is_load = op_class is OpClass.LOAD
        self.is_store = op_class is OpClass.STORE
        self.is_mem = self.is_load or self.is_store
        self.is_branch = op_class is OpClass.BRANCH
        self.is_control = self.is_branch or op_class is OpClass.JUMP
        has_dst = inst.dst is not None
        self.has_dst = has_dst
        writes_fp = has_dst and inst.writes_fp
        self.writes_fp = writes_fp
        self.rf_class = ("fp" if writes_fp else "int") if has_dst else None
        self.fu_group = FU_GROUP[op_class]
        self.nonpipelined = op_class in NONPIPELINED_CLASSES
        self.n_srcs = len(inst.srcs)
        self.code_addr = CODE_BASE + self.pc * INST_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynInst):
            return NotImplemented
        return (self.seq == other.seq and self.pc == other.pc
                and self.inst == other.inst
                and self.src_producers == other.src_producers
                and self.addr == other.addr
                and self.store_value == other.store_value
                and self.taken == other.taken
                and self.next_pc == other.next_pc)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        extra = []
        if self.addr is not None:
            extra.append(f"addr=0x{self.addr:x}")
        if self.taken is not None:
            extra.append(f"taken={self.taken}")
        suffix = (" " + " ".join(extra)) if extra else ""
        return f"<DynInst #{self.seq} pc={self.pc} {self.inst.render()}{suffix}>"
