"""Trace serialization: save and load dynamic traces as JSON lines.

Traces are deterministic, but regeneration costs functional-execution
time; serialization lets long traces be produced once and shared.
Programs serialize alongside the trace so a loaded trace is
self-contained (the static instruction for each record is rebuilt).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.isa.trace import DynInst

FORMAT_VERSION = 1


def _inst_to_dict(inst: Instruction) -> dict:
    return {
        "opcode": inst.opcode,
        "dst": inst.dst,
        "srcs": list(inst.srcs),
        "imm": inst.imm,
        "target": inst.target,
        "label": inst.label,
    }


def _inst_from_dict(data: dict) -> Instruction:
    return Instruction(opcode=data["opcode"], dst=data["dst"],
                       srcs=tuple(data["srcs"]), imm=data["imm"],
                       target=data["target"], label=data["label"])


def save_trace(path: Union[str, Path], program: Program,
               trace: Iterable[DynInst]) -> int:
    """Write *trace* to *path* as JSONL; returns the number of records."""
    path = Path(path)
    count = 0
    with open(path, "w") as handle:
        header = {
            "version": FORMAT_VERSION,
            "program": [_inst_to_dict(inst) for inst in program],
            "labels": program.labels,
            "name": program.name,
        }
        handle.write(json.dumps(header) + "\n")
        for dyn in trace:
            record = [dyn.seq, dyn.pc, dyn.src_producers, dyn.addr,
                      dyn.store_value, dyn.taken, dyn.next_pc]
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[DynInst]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with open(path) as handle:
        header = json.loads(handle.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format: {header.get('version')!r}")
        instructions = [_inst_from_dict(d) for d in header["program"]]
        program = Program(instructions=instructions,
                          labels=dict(header["labels"]),
                          name=header.get("name", "loaded"))
        trace = []
        for line in handle:
            seq, pc, producers, addr, store_value, taken, next_pc = (
                json.loads(line))
            trace.append(DynInst(
                seq=seq, pc=pc, inst=program[pc],
                src_producers=tuple(producers), addr=addr,
                store_value=store_value, taken=taken, next_pc=next_pc))
    return trace
