"""LTP controller: parking decisions, wakeup policy, and learning hooks.

This object owns the parking queue, classifiers, ticket CAM, hit/miss
predictor and DRAM-timer monitor, and exposes the narrow interface the
pipeline drives:

* :meth:`observe_rename` — classify an instruction at rename (urgency,
  readiness/tickets, long-latency prediction).
* :meth:`decide` — park / dispatch / stall, honouring parked-bit
  propagation and the memory-dependence interaction of Section 5.3.
* :meth:`release_candidates` — the wakeup policy: Non-Urgent
  instructions wake between the ROB head and the second in-flight
  long-latency instruction; Non-Ready instructions wake when their
  tickets clear; the ROB head is always forced out (Section 5.4).
* completion/commit hooks that feed the UIT, tickets and predictor.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.inflight import InFlightInst
from repro.ltp.classifier import OnlineClassifier, OracleClassifier
from repro.ltp.config import LTPConfig
from repro.ltp.monitor import DramTimerMonitor
from repro.ltp.oracle import OracleInfo
from repro.ltp.predictor import HitMissPredictor
from repro.ltp.queue import LTPQueue
from repro.ltp.tickets import TicketPool, TicketTracker

#: sentinel for "no boundary" (fewer than two long-latency ops in flight)
NO_BOUNDARY = 1 << 62


class LTPController:
    """Integration point between the pipeline and all LTP structures."""

    def __init__(self, config: LTPConfig, dram_latency: int,
                 oracle: Optional[OracleInfo] = None) -> None:
        config.validate()
        if config.classifier == "oracle" and oracle is None:
            raise ValueError("oracle classifier requires OracleInfo")
        self.config = config
        self.oracle = oracle
        self.queue = LTPQueue(config.entries if config.enabled else 1,
                              fifo_only=(config.mode == "nu"))
        if config.classifier == "oracle":
            self.classifier = OracleClassifier(
                oracle, granularity=config.oracle_granularity)
        else:
            self.classifier = OnlineClassifier(uit_size=config.uit_size,
                                               uit_ways=config.uit_ways)
        self.predictor = (HitMissPredictor()
                          if config.ll_predictor == "twolevel" else None)
        self.tickets = TicketTracker(TicketPool(config.tickets))
        monitor_mode = config.monitor if config.enabled else "off"
        self.monitor = DramTimerMonitor(dram_latency, mode=monitor_mode)
        self.park_stalls = 0
        #: ``config`` is immutable after ``validate()``; cache the mode
        #: predicate and bind the classifier hook the rename hot path
        #: consults on every attempt
        self._parks_nr = config.parks_nr
        self._classify = self.classifier.observe_rename

    # ------------------------------------------------------------------
    # enable state
    # ------------------------------------------------------------------
    def is_enabled(self, now: int) -> bool:
        return self.config.enabled and self.monitor.is_enabled(now)

    def on_dram_demand_access(self, now: int) -> None:
        """A demand access missed in L3 — restart the monitor timer."""
        self.monitor.touch(now)

    # ------------------------------------------------------------------
    # rename-time classification
    # ------------------------------------------------------------------
    def predict_long_latency(self, record: InFlightInst) -> bool:
        dyn = record.dyn
        # pre-decoded nonpipelined <=> op class in LONG_FIXED_CLASSES
        # (both are exactly the divide classes)
        if dyn.nonpipelined:
            return True
        if not dyn.is_load:
            return False
        if self.predictor is not None:
            return self.predictor.predict_long_latency(dyn.pc)
        if self.oracle is not None:
            return self.oracle.is_long_latency(record.seq)
        return False

    def observe_rename(self, record: InFlightInst) -> None:
        """Classify *record*; set urgency/readiness/ticket state.

        Runs on every rename *attempt* (retried stalls included), so the
        long-latency prediction is inlined for the common cases: records
        that are neither loads nor divides keep ``predicted_ll`` at the
        ``False`` their constructor set, without a predictor call.
        """
        record.urgent = self._classify(record)
        dyn = record.dyn
        if self._parks_nr:
            self.tickets.inherit(record, record.producer_records)
            record.non_ready = bool(record.tickets)
            predicted = (True if dyn.nonpipelined else
                         dyn.is_load and self.predict_long_latency(record))
            record.predicted_ll = predicted
            if predicted:
                self.tickets.grant(record)
        elif dyn.nonpipelined:
            record.predicted_ll = True
        elif dyn.is_load:
            record.predicted_ll = self.predict_long_latency(record)

    def observe_attempt(self, dyn) -> bool:
        """Replay :meth:`observe_rename`'s observable side effects for
        a rename attempt whose record is about to be discarded on a
        capacity stall, without constructing the record.

        Only valid on a *disabled* controller (``parks_nr`` False, so
        no ticket inheritance): the classifier probe and — for loads —
        the hit/miss predictor lookup are then the only state the
        reference attempt mutates; everything else the attempt writes
        lands on the discarded record.  (The oracle long-latency lookup
        is a pure list read and is elided.)  Returns the urgency bit so
        the caller can keep the per-attempt classification counters.
        """
        urgent = self.classifier.classify_dyn(dyn)
        if (self.predictor is not None and dyn.is_load
                and not dyn.nonpipelined):
            self.predictor.predict_long_latency(dyn.pc)
        return urgent

    # ------------------------------------------------------------------
    # parking decision
    # ------------------------------------------------------------------
    def decide(self, record: InFlightInst, now: int,
               memdep_forced: bool = False) -> str:
        """Return "park", "dispatch" or "stall" for a renamed record."""
        if not self.config.enabled:
            return "dispatch"
        forced = memdep_forced
        reason = "memdep" if memdep_forced else None
        if not forced:
            for producer in record.producer_records:
                if producer is not None and producer.parked:
                    forced = True
                    reason = "parked-bit"
                    break
        want_park = forced
        if not want_park and self.is_enabled(now):
            if self.config.parks_nu and not record.urgent:
                want_park = True
                reason = "non-urgent"
            elif self.config.parks_nr and record.non_ready:
                want_park = True
                reason = "non-ready"
        if not want_park:
            return "dispatch"
        if self.queue.full:
            self.park_stalls += 1
            return "stall"
        record.park_reason = reason
        return "park"

    def park(self, record: InFlightInst) -> None:
        self.queue.push(record)

    # ------------------------------------------------------------------
    # wakeup policy
    # ------------------------------------------------------------------
    def release_candidates(self, now: int, boundary_seq: int,
                           force_seq: int, limit: int) -> List[InFlightInst]:
        """Records eligible to leave LTP this cycle, oldest first.

        *boundary_seq* is the sequence number of the second-oldest
        in-flight long-latency instruction (Section 3.2's Non-Urgent
        criterion); *force_seq* is the ROB head's sequence number when
        the head is parked (deadlock avoidance, Section 5.4).
        """
        if not len(self.queue):
            return []
        draining = not self.is_enabled(now)
        eager = self.config.wakeup_policy == "eager"

        def eligible(record: InFlightInst) -> bool:
            if record.seq == force_seq:
                record.forced_release = True
                return True
            if draining:
                return not record.tickets
            if record.tickets:
                return False
            if eager or record.urgent:
                # urgent records only land here via parked-bit forcing or
                # ticket (NR) parking: leave as soon as tickets clear;
                # the eager ablation ignores the ROB-position rule.
                return True
            return record.seq < boundary_seq

        return self.queue.candidates(eligible, limit)

    def release(self, record: InFlightInst) -> None:
        self.queue.remove(record)

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def on_tag_known(self, record: InFlightInst) -> None:
        """Early data-return signal: clear the record's ticket."""
        if record.own_ticket is not None:
            ticket = record.own_ticket
            record.own_ticket = None
            self.tickets.clear(ticket)

    def on_load_complete(self, record: InFlightInst,
                         was_long_latency: bool) -> None:
        if self.predictor is not None:
            self.predictor.update(record.dyn.pc, was_long_latency)

    def on_commit(self, record: InFlightInst) -> None:
        if record.actual_ll and record.dyn.is_load:
            self.classifier.on_long_latency_commit(record.dyn.pc)

    def on_violation(self, load_pc: int, store_pc: int) -> None:
        self.classifier.on_violation(store_pc)

    # ------------------------------------------------------------------
    # warmup
    # ------------------------------------------------------------------
    def warm_from_trace(self, trace, long_latency_flags) -> None:
        """Pre-train the online classifier from a warmup slice."""
        if isinstance(self.classifier, OnlineClassifier):
            events = ((dyn.pc, dyn.inst.srcs, dyn.inst.dst, bool(flag))
                      for dyn, flag in zip(trace, long_latency_flags))
            self.classifier.warm(events, None)
        if self.predictor is not None:
            for dyn, flag in zip(trace, long_latency_flags):
                if dyn.is_load:
                    self.predictor.update(dyn.pc, bool(flag))


def null_controller(dram_latency: int = 190) -> LTPController:
    """A disabled controller for baseline (no-LTP) runs."""
    return LTPController(LTPConfig(enabled=False), dram_latency)
