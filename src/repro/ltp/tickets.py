"""Ticket tracking for Non-Ready instructions (Appendix A).

A predicted long-latency instruction allocates a *ticket*.  Descendants
inherit the union of their sources' tickets through the RAT; an
instruction with a non-empty ticket vector is Non-Ready.  When the
long-latency instruction's data is about to return (early tag-hit
signal), its ticket is broadcast and cleared everywhere, and the ticket
id is recycled.

``capacity=None`` models the unlimited case; Figure 11 sweeps the
capacity down to 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class TicketPool:
    """Bounded pool of ticket identifiers with recycling."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._next = 0
        self._free: List[int] = []
        self._live: Set[int] = set()
        self.allocated = 0
        self.exhausted = 0

    def allocate(self) -> Optional[int]:
        """Return a ticket id, or None when the pool is exhausted."""
        if self._free:
            ticket = self._free.pop()
        elif self.capacity is None or self._next < self.capacity:
            ticket = self._next
            self._next += 1
        else:
            self.exhausted += 1
            return None
        self._live.add(ticket)
        self.allocated += 1
        return ticket

    def release(self, ticket: int) -> None:
        if ticket not in self._live:
            raise RuntimeError(f"double release of ticket {ticket}")
        self._live.remove(ticket)
        self._free.append(ticket)

    @property
    def live_count(self) -> int:
        return len(self._live)


class TicketTracker:
    """Maps live tickets to the instruction records that hold them."""

    def __init__(self, pool: TicketPool) -> None:
        self.pool = pool
        self._holders: Dict[int, List[object]] = {}

    def grant(self, owner_record) -> Optional[int]:
        """Allocate a ticket owned by *owner_record* (a predicted-LL op)."""
        ticket = self.pool.allocate()
        if ticket is not None:
            self._holders[ticket] = []
            owner_record.own_ticket = ticket
        return ticket

    def inherit(self, record, producer_records) -> None:
        """Give *record* the union of its producers' live tickets."""
        tickets: Set[int] = set()
        for producer in producer_records:
            if producer is None or producer.done:
                continue
            if producer.own_ticket is not None:
                tickets.add(producer.own_ticket)
            if producer.tickets:
                tickets |= producer.tickets
        for ticket in tickets:
            holders = self._holders.get(ticket)
            if holders is not None:
                holders.append(record)
        record.tickets = tickets

    def clear(self, ticket: int) -> List[object]:
        """Broadcast-clear *ticket*; return the records that held it."""
        holders = self._holders.pop(ticket, [])
        for record in holders:
            record.tickets.discard(ticket)
        self.pool.release(ticket)
        return holders
