"""Oracle classification: exact Urgent / Non-Ready sets from the trace.

The limit study (Section 4) models "an oracle to predict long-latency
instructions" and "perfect instruction classification".  This module
computes that ground truth from a dynamic trace:

1. A functional cache walk (same hierarchy geometry and prefetcher as
   the timing model, no timing) labels every memory access with the
   level that services it.  Long latency = a load serviced beyond the
   L2, or an intrinsically long operation (divide / square root).
2. One reverse pass over the dataflow edges computes the *Urgent* set:
   every transitive ancestor of a long-latency instruction (and the
   long-latency instructions themselves, matching the UIT which holds
   their PCs).
3. One forward pass computes the *Non-Ready* set: every transitive
   descendant of a long-latency instruction whose root is within a
   ROB-sized window (an in-flight-ness approximation: an LL producer
   more than a window older has certainly completed).

Urgency can be queried per dynamic instruction or per static PC; the PC
granularity is what an unlimited UIT converges to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.isa.instructions import OpClass
from repro.isa.trace import DynInst
from repro.memory.hierarchy import MemParams, MemoryHierarchy

LONG_FIXED_CLASSES = (OpClass.INT_DIV, OpClass.FP_DIV)


@dataclass
class OracleInfo:
    """Per-trace ground-truth classification."""

    levels: List[Optional[str]]
    long_latency: List[bool]
    urgent: List[bool]
    non_ready: List[bool]
    urgent_pcs: Set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.long_latency)

    def is_urgent(self, seq: int, pc: int, granularity: str = "pc") -> bool:
        if granularity == "dynamic":
            return self.urgent[seq]
        return pc in self.urgent_pcs

    def is_non_ready(self, seq: int) -> bool:
        return self.non_ready[seq]

    def is_long_latency(self, seq: int) -> bool:
        return self.long_latency[seq]

    def summary(self) -> dict:
        n = max(1, len(self.long_latency))
        return {
            "instructions": len(self.long_latency),
            "long_latency": sum(self.long_latency),
            "urgent_fraction": sum(self.urgent) / n,
            "non_ready_fraction": sum(self.non_ready) / n,
            "urgent_pcs": len(self.urgent_pcs),
        }


def annotate_trace(trace: Sequence[DynInst],
                   mem_params: Optional[MemParams] = None,
                   window: int = 256,
                   warm_regions: Sequence = ()) -> OracleInfo:
    """Compute :class:`OracleInfo` for *trace*.

    *window* approximates the in-flight horizon for Non-Ready
    classification; the ROB size is the natural choice.  *warm_regions*
    are (byte base, word count) spans pre-installed in the L2/L3,
    matching the timing runner's emulation of a paper-scale warmup.
    """
    params = mem_params or MemParams()
    hierarchy = MemoryHierarchy(params)
    for base, words in warm_regions:
        for block in range(base >> 6, ((base + words * 8) >> 6) + 1):
            hierarchy.l2.insert(block)
            hierarchy.l3.insert(block)
    n = len(trace)

    levels: List[Optional[str]] = [None] * n
    long_latency = [False] * n
    for i, dyn in enumerate(trace):
        if dyn.is_mem:
            levels[i] = hierarchy.functional_access(
                dyn.addr, is_store=dyn.is_store, pc=dyn.pc)
            if dyn.is_load and levels[i] in ("l3", "dram"):
                long_latency[i] = True
        elif dyn.op_class in LONG_FIXED_CLASSES:
            long_latency[i] = True

    # Urgent: reverse pass marks all ancestors of long-latency ops.  All
    # dataflow edges point from lower to higher seq, so one pass suffices.
    urgent = list(long_latency)
    for i in range(n - 1, -1, -1):
        if urgent[i]:
            for producer in trace[i].src_producers:
                if producer >= 0:
                    urgent[producer] = True

    # Non-Ready: forward pass propagating the youngest long-latency root.
    root = [-1] * n
    non_ready = [False] * n
    for i, dyn in enumerate(trace):
        best = -1
        for producer in dyn.src_producers:
            if producer < 0:
                continue
            candidate = producer if long_latency[producer] else root[producer]
            if candidate > best:
                best = candidate
        root[i] = best
        if best >= 0 and (i - best) <= window:
            non_ready[i] = True

    urgent_pcs = {trace[i].pc for i in range(n) if urgent[i]}
    return OracleInfo(levels=levels, long_latency=long_latency,
                      urgent=urgent, non_ready=non_ready,
                      urgent_pcs=urgent_pcs)
