"""Urgent Instruction Table (UIT).

A PC-indexed, set-associative tag table: a PC present in the table is
classified Urgent.  Long-latency loads insert themselves at commit;
iterative backward dependency analysis inserts the producers of Urgent
instructions' sources at rename (Section 5.2).

``size=None`` gives the limit study's unlimited table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class UrgentInstructionTable:
    """Set-associative table of Urgent PCs with LRU replacement."""

    def __init__(self, size: Optional[int] = 256, ways: int = 4) -> None:
        if size is not None:
            if size <= 0 or ways <= 0 or size % ways != 0:
                raise ValueError("size must be a positive multiple of ways")
        self.size = size
        self.ways = ways
        self._unlimited: Set[int] = set()
        self._sets: List[Dict[int, int]] = []
        if size is not None:
            self.num_sets = size // ways
            self._sets = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.lookups = 0
        self.inserts = 0

    def contains(self, pc: int) -> bool:
        self.lookups += 1
        if self.size is None:
            return pc in self._unlimited
        entry = self._sets[pc % self.num_sets]
        if pc in entry:
            self._stamp += 1
            entry[pc] = self._stamp
            return True
        return False

    def insert(self, pc: int) -> None:
        self.inserts += 1
        if self.size is None:
            self._unlimited.add(pc)
            return
        entry = self._sets[pc % self.num_sets]
        self._stamp += 1
        if pc in entry:
            entry[pc] = self._stamp
            return
        if len(entry) >= self.ways:
            victim = min(entry, key=entry.get)
            del entry[victim]
        entry[pc] = self._stamp

    def occupancy(self) -> int:
        if self.size is None:
            return len(self._unlimited)
        return sum(len(s) for s in self._sets)
