"""Urgency classification: online (UIT + backward analysis) and oracle.

The online classifier implements Section 5.2's Iterative Backward
Dependency Analysis:

1. When a long-latency load commits, its PC enters the UIT.
2. The RAT is extended with the *PC of the producer* of each
   architectural register.  When an instruction that hits in the UIT is
   renamed, its sources' producer PCs are inserted into the UIT, so the
   Urgent property crawls backwards through the slice one step per
   execution of the consuming instruction.
3. Violating stores are inserted on memory-order violations
   (Section 5.3).

The oracle classifier answers from a trace pre-pass
(:mod:`repro.ltp.oracle`) at either PC or dynamic granularity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.inflight import InFlightInst
from repro.ltp.oracle import OracleInfo
from repro.ltp.uit import UrgentInstructionTable


class OnlineClassifier:
    """UIT-based urgency learning, as implementable in hardware."""

    def __init__(self, uit_size: Optional[int] = 256, uit_ways: int = 4) -> None:
        self.uit = UrgentInstructionTable(size=uit_size, ways=uit_ways)
        # RAT extension: architectural register -> producer PC
        self._producer_pc: Dict[str, int] = {}

    def observe_rename(self, record: InFlightInst) -> bool:
        """Classify *record* and run one backward-propagation step.

        Returns True when the instruction is Urgent.  Runs once per
        rename *attempt*, so the UIT lookup is inlined here (counter and
        LRU-stamp updates identical to :meth:`UrgentInstructionTable.
        contains`) instead of paying a call per attempt.
        """
        dyn = record.dyn
        pc = dyn.pc
        uit = self.uit
        uit.lookups += 1
        if uit.size is None:
            urgent = pc in uit._unlimited
        else:
            entry = uit._sets[pc % uit.num_sets]
            if pc in entry:
                uit._stamp += 1
                entry[pc] = uit._stamp
                urgent = True
            else:
                urgent = False
        if urgent:
            producer_pcs = self._producer_pc
            uit_insert = uit.insert
            for reg in dyn.inst.srcs:
                producer_pc = producer_pcs.get(reg)
                if producer_pc is not None:
                    uit_insert(producer_pc)
        if dyn.has_dst:
            self._producer_pc[dyn.inst.dst] = pc
        return urgent

    def classify_dyn(self, dyn) -> bool:
        """:meth:`observe_rename` keyed by the dynamic instruction alone.

        The classifier never reads timing state off the record, so a
        rename attempt that is about to fail its capacity checks (and
        whose record would be discarded unread) can run the exact same
        UIT lookup/propagation through this entry point without
        constructing the record at all.  Kept textually in sync with
        :meth:`observe_rename`.
        """
        pc = dyn.pc
        uit = self.uit
        uit.lookups += 1
        if uit.size is None:
            urgent = pc in uit._unlimited
        else:
            entry = uit._sets[pc % uit.num_sets]
            if pc in entry:
                uit._stamp += 1
                entry[pc] = uit._stamp
                urgent = True
            else:
                urgent = False
        if urgent:
            producer_pcs = self._producer_pc
            uit_insert = uit.insert
            for reg in dyn.inst.srcs:
                producer_pc = producer_pcs.get(reg)
                if producer_pc is not None:
                    uit_insert(producer_pc)
        if dyn.has_dst:
            self._producer_pc[dyn.inst.dst] = pc
        return urgent

    def on_long_latency_commit(self, pc: int) -> None:
        self.uit.insert(pc)

    def on_violation(self, store_pc: int) -> None:
        self.uit.insert(store_pc)

    def warm(self, pcs_with_ll, src_map) -> None:
        """Pre-train from a warmup trace slice.

        *pcs_with_ll* iterates (pc, srcs, dst, is_long_latency) tuples in
        program order, mimicking rename+commit during cache warmup.
        """
        for pc, srcs, dst, is_ll in pcs_with_ll:
            if self.uit.contains(pc):
                for reg in srcs:
                    producer_pc = self._producer_pc.get(reg)
                    if producer_pc is not None:
                        self.uit.insert(producer_pc)
            if dst is not None:
                self._producer_pc[dst] = pc
            if is_ll:
                self.uit.insert(pc)
        # src_map kept for interface symmetry; unused here
        del src_map


class OracleClassifier:
    """Perfect urgency knowledge from the trace pre-pass."""

    def __init__(self, oracle: OracleInfo, granularity: str = "pc") -> None:
        if granularity not in ("pc", "dynamic"):
            raise ValueError("granularity must be 'pc' or 'dynamic'")
        self.oracle = oracle
        self.granularity = granularity
        self.lookups = 0

    def observe_rename(self, record: InFlightInst) -> bool:
        self.lookups += 1
        return self.oracle.is_urgent(record.seq, record.dyn.pc,
                                     self.granularity)

    def classify_dyn(self, dyn) -> bool:
        """Record-free variant of :meth:`observe_rename` (see the
        online classifier's docstring); ``dyn.seq`` equals the record's
        ``seq`` by construction."""
        self.lookups += 1
        return self.oracle.is_urgent(dyn.seq, dyn.pc, self.granularity)

    def on_long_latency_commit(self, pc: int) -> None:
        pass  # oracle already knows

    def on_violation(self, store_pc: int) -> None:
        pass
