"""The Long Term Parking structure itself.

For the Non-Urgent-only design this is a plain FIFO queue — the paper's
headline simplification.  For modes that park Non-Ready instructions the
structure must release out of order, which the Appendix implements as a
ticket CAM; here that shows up as an oldest-first *scan* for eligible
entries instead of a head-only check.

The queue keeps running counts of parked loads, stores and
register-destination instructions so Figure 7's utilization statistics
are O(1) per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

from repro.core.params import cap


class LTPQueue:
    """Bounded parking structure with FIFO or scan-based release."""

    def __init__(self, entries: Optional[int], fifo_only: bool) -> None:
        self.capacity = cap(entries)
        self.fifo_only = fifo_only
        self._entries: Deque = deque()
        self.parked_loads = 0
        self.parked_stores = 0
        self.parked_with_dst = 0
        self.total_parked = 0
        self.total_released = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, record) -> None:
        if self.full:
            raise RuntimeError("LTP overflow")
        self._entries.append(record)
        record.parked = True
        self.total_parked += 1
        if record.dyn.is_load:
            self.parked_loads += 1
        elif record.dyn.is_store:
            self.parked_stores += 1
        if record.dyn.has_dst:
            self.parked_with_dst += 1

    def head(self):
        return self._entries[0] if self._entries else None

    def candidates(self, eligible: Callable[[object], bool],
                   limit: int) -> List[object]:
        """Return up to *limit* releasable records, oldest first.

        FIFO mode checks only the head (a queue cannot release from the
        middle); scan mode walks oldest-to-youngest like the Appendix's
        ticket CAM select.
        """
        found: List[object] = []
        if self.fifo_only:
            head = self.head()
            if head is not None and eligible(head):
                found.append(head)
            return found
        for record in self._entries:
            if len(found) >= limit:
                break
            if eligible(record):
                found.append(record)
        return found

    def remove(self, record) -> None:
        """Release *record* (must be present)."""
        if self.fifo_only:
            if not self._entries or self._entries[0] is not record:
                raise RuntimeError("FIFO LTP can only release its head")
            self._entries.popleft()
        else:
            try:
                self._entries.remove(record)
            except ValueError:
                raise RuntimeError("record not parked") from None
        record.parked = False
        self.total_released += 1
        if record.dyn.is_load:
            self.parked_loads -= 1
        elif record.dyn.is_store:
            self.parked_stores -= 1
        if record.dyn.has_dst:
            self.parked_with_dst -= 1
