"""Long Term Parking: the paper's contribution.

* :mod:`repro.ltp.config` — the LTP design space (mode, entries, ports,
  classifier, tickets, monitor).
* :mod:`repro.ltp.uit` — Urgent Instruction Table.
* :mod:`repro.ltp.classifier` — online (UIT + iterative backward
  dependency analysis) and oracle urgency classification.
* :mod:`repro.ltp.oracle` — ground-truth Urgent/Non-Ready sets.
* :mod:`repro.ltp.predictor` — two-level hit/miss predictor.
* :mod:`repro.ltp.tickets` — ticket CAM for Non-Ready wakeup.
* :mod:`repro.ltp.queue` — the parking structure.
* :mod:`repro.ltp.monitor` — DRAM-timer power management.
* :mod:`repro.ltp.controller` — the pipeline-facing integration.
"""

from repro.ltp.classifier import OnlineClassifier, OracleClassifier
from repro.ltp.config import (LTPConfig, limit_ltp, no_ltp,
                              proposed_ltp, wib_ltp)
from repro.ltp.controller import NO_BOUNDARY, LTPController, null_controller
from repro.ltp.monitor import DramTimerMonitor
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.ltp.predictor import HitMissPredictor
from repro.ltp.queue import LTPQueue
from repro.ltp.tickets import TicketPool, TicketTracker
from repro.ltp.uit import UrgentInstructionTable

__all__ = [
    "DramTimerMonitor",
    "HitMissPredictor",
    "LTPConfig",
    "LTPController",
    "LTPQueue",
    "NO_BOUNDARY",
    "OnlineClassifier",
    "OracleClassifier",
    "OracleInfo",
    "TicketPool",
    "TicketTracker",
    "UrgentInstructionTable",
    "annotate_trace",
    "limit_ltp",
    "no_ltp",
    "wib_ltp",
    "null_controller",
    "proposed_ltp",
]
