"""Timer-based DRAM monitor for LTP power management (Section 5.2).

"On a demand access that misses in L3, a timer (set to the DRAM latency)
is started or restarted, and LTP is enabled.  If the timer expires, LTP
is turned off."

The monitor supports exact accounting of enabled time over arbitrary
cycle spans so statistics stay correct when the pipeline jumps over idle
cycles.
"""

from __future__ import annotations


class DramTimerMonitor:
    """Enables LTP only while long-latency (DRAM) loads are present."""

    def __init__(self, dram_latency: int, mode: str = "auto") -> None:
        if mode not in ("auto", "on", "off"):
            raise ValueError("mode must be auto/on/off")
        if dram_latency <= 0:
            raise ValueError("dram_latency must be positive")
        self.mode = mode
        self.dram_latency = dram_latency
        self._enabled_until = 0
        self.touches = 0

    def touch(self, now: int) -> None:
        """A demand access missed in L3: (re)start the timer."""
        self.touches += 1
        expiry = now + self.dram_latency
        if expiry > self._enabled_until:
            self._enabled_until = expiry

    def is_enabled(self, now: int) -> bool:
        if self.mode == "on":
            return True
        if self.mode == "off":
            return False
        return now < self._enabled_until

    def enabled_span(self, start: int, end: int) -> int:
        """Number of cycles in [start, end) during which LTP is enabled."""
        if end <= start:
            return 0
        if self.mode == "on":
            return end - start
        if self.mode == "off":
            return 0
        overlap_end = min(end, self._enabled_until)
        return max(0, overlap_end - start)

    @property
    def expiry(self) -> int:
        """Cycle at which the timer currently expires (event hint)."""
        return self._enabled_until
