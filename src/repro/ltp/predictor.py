"""Two-level hit/miss predictor for long-latency loads (Appendix A).

"For variable-latency instructions (e.g., loads) we use a two-level
hit/miss predictor that accesses a history table with the last four
outcomes of the PC and then hashes these bits with the PC to access the
prediction table."

Prediction target: will this load be *long latency* (serviced beyond the
L2)?  The pattern table holds 2-bit saturating counters initialised to
"hit" so cold code is optimistically treated as short latency.
"""

from __future__ import annotations

from typing import Dict


class HitMissPredictor:
    """Two-level (per-PC history, shared pattern table) miss predictor."""

    HISTORY_BITS = 4

    def __init__(self, table_bits: int = 12) -> None:
        if not 4 <= table_bits <= 20:
            raise ValueError("table_bits must be in [4, 20]")
        self.table_size = 1 << table_bits
        self._histories: Dict[int, int] = {}
        self._counters = bytearray([0] * self.table_size)  # 0 = strong hit
        self.lookups = 0
        self.predicted_misses = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        history = self._histories.get(pc, 0)
        return (pc * 0x9E3779B1 ^ (history << 7)) % self.table_size

    def predict_long_latency(self, pc: int) -> bool:
        """Predict whether the load at *pc* will be long latency."""
        self.lookups += 1
        miss = self._counters[self._index(pc)] >= 2
        if miss:
            self.predicted_misses += 1
        return miss

    def update(self, pc: int, was_long_latency: bool) -> None:
        """Train with the actual outcome (called at load completion)."""
        index = self._index(pc)
        counter = self._counters[index]
        prediction = counter >= 2
        if prediction != was_long_latency:
            self.mispredictions += 1
        if was_long_latency and counter < 3:
            self._counters[index] = counter + 1
        elif not was_long_latency and counter > 0:
            self._counters[index] = counter - 1
        history = self._histories.get(pc, 0)
        mask = (1 << self.HISTORY_BITS) - 1
        self._histories[pc] = ((history << 1) | int(was_long_latency)) & mask
