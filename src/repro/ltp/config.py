"""LTP configuration.

The defaults correspond to the paper's proposed implementation
(Section 5): a Non-Urgent-only, 128-entry, 4-port queue with a 256-entry
UIT, paired with the reduced IQ 32 / RF 96 core.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

MODES = ("nu", "nr", "nr+nu")
CLASSIFIERS = ("online", "oracle")
LL_PREDICTORS = ("oracle", "twolevel")
MONITORS = ("auto", "on", "off")
GRANULARITIES = ("pc", "dynamic")


@dataclass
class LTPConfig:
    """Configuration of the Long Term Parking mechanism."""

    enabled: bool = False
    #: which classes park: Non-Urgent only ("nu"), Non-Ready only ("nr"),
    #: or both ("nr+nu")
    mode: str = "nu"
    #: queue capacity; None = unlimited (limit study)
    entries: Optional[int] = 128
    #: insertions/releases per cycle
    ports: int = 4
    #: "online" = UIT + iterative backward dependency analysis;
    #: "oracle" = perfect classification from a trace pre-pass
    classifier: str = "online"
    #: oracle urgency granularity: per static PC (what the UIT converges
    #: to) or per dynamic instruction
    oracle_granularity: str = "pc"
    uit_size: Optional[int] = 256
    uit_ways: int = 4
    #: long-latency load prediction: "oracle" or the Appendix's two-level
    #: hit/miss predictor
    ll_predictor: str = "oracle"
    #: ticket CAM size for Non-Ready tracking; None = unlimited
    tickets: Optional[int] = None
    #: DRAM-timer power management: "auto" (Section 5.2), always "on",
    #: or always "off"
    monitor: str = "auto"
    #: limit-study switches: also delay LQ/SQ allocation for parked ops
    park_loads: bool = False
    park_stores: bool = False
    #: registers / LSQ entries reserved for LTP releases (Section 5.4)
    release_reserve: int = 4
    #: False turns the structure into a WIB-style slice buffer (Lebeck
    #: et al. [1], Section 6 related work): parked instructions still
    #: allocate their registers at rename, so only IQ pressure is
    #: relieved — the comparison the paper draws against LTP
    defer_registers: bool = True
    #: Non-Urgent wakeup policy: the paper's ROB-position rule
    #: ("rob-position", Section 3.2) or release-as-soon-as-possible
    #: ("eager") — an ablation of the late-wakeup design choice
    wakeup_policy: str = "rob-position"

    def validate(self) -> "LTPConfig":
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.classifier not in CLASSIFIERS:
            raise ValueError(f"classifier must be one of {CLASSIFIERS}")
        if self.ll_predictor not in LL_PREDICTORS:
            raise ValueError(f"ll_predictor must be one of {LL_PREDICTORS}")
        if self.monitor not in MONITORS:
            raise ValueError(f"monitor must be one of {MONITORS}")
        if self.oracle_granularity not in GRANULARITIES:
            raise ValueError(
                f"oracle_granularity must be one of {GRANULARITIES}")
        if self.ports <= 0:
            raise ValueError("ports must be positive")
        if self.entries is not None and self.entries <= 0:
            raise ValueError("entries must be positive or None")
        if self.tickets is not None and self.tickets <= 0:
            raise ValueError("tickets must be positive or None")
        if self.release_reserve < 0:
            raise ValueError("release_reserve must be >= 0")
        if self.wakeup_policy not in ("rob-position", "eager"):
            raise ValueError("wakeup_policy must be rob-position/eager")
        return self

    def but(self, **overrides) -> "LTPConfig":
        """Return a copy with *overrides* applied (sweep helper)."""
        return replace(self, **overrides)

    @property
    def parks_nu(self) -> bool:
        return self.enabled and self.mode in ("nu", "nr+nu")

    @property
    def parks_nr(self) -> bool:
        return self.enabled and self.mode in ("nr", "nr+nu")


def no_ltp() -> LTPConfig:
    """The baseline: LTP absent."""
    return LTPConfig(enabled=False)


def proposed_ltp() -> LTPConfig:
    """The paper's proposed design (Section 5.7).

    The two-level hit/miss predictor is used only to track long-latency
    instructions for the ROB-position wakeup rule (the NU-only design
    has no tickets).
    """
    return LTPConfig(enabled=True, mode="nu", entries=128, ports=4,
                     classifier="online", uit_size=256,
                     ll_predictor="twolevel").validate()


def limit_ltp(mode: str = "nr+nu") -> LTPConfig:
    """The limit study's ideal LTP: unlimited, oracle-classified.

    Parked memory operations also delay their LQ/SQ allocation, which is
    the idealisation Section 3.1 explores for the LQ/SQ sweeps.
    """
    return LTPConfig(enabled=True, mode=mode, entries=None, ports=1 << 20,
                     classifier="oracle", oracle_granularity="dynamic",
                     ll_predictor="oracle",
                     uit_size=None, tickets=None,
                     park_loads=True, park_stores=True).validate()


def wib_ltp() -> LTPConfig:
    """A WIB-style slice buffer built on the parking substrate.

    Instructions depending on in-flight long-latency loads are drained
    to a large side buffer and reinserted when the data returns — but,
    unlike LTP, their registers were already allocated at rename, so
    only the IQ benefits (Lebeck et al. [1]; the paper's Section 6
    contrast).
    """
    return LTPConfig(enabled=True, mode="nr", entries=None, ports=8,
                     classifier="oracle", ll_predictor="oracle",
                     uit_size=None, tickets=None, monitor="on",
                     defer_registers=False).validate()


# ======================================================================
# named presets — the single registry behind the CLI's --ltp choices
# and the API's `ltp_preset`
# ======================================================================
LTP_PRESETS: Dict[str, Callable[[], LTPConfig]] = {
    "none": no_ltp,
    "proposed": proposed_ltp,
    "limit-nu": lambda: limit_ltp("nu"),
    "limit-nr": lambda: limit_ltp("nr"),
    "limit-nrnu": lambda: limit_ltp("nr+nu"),
    "wib": wib_ltp,
}


def ltp_preset(name: str) -> LTPConfig:
    """Instantiate a named LTP preset (a fresh config every call)."""
    try:
        factory = LTP_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(LTP_PRESETS))
        raise KeyError(f"unknown LTP preset {name!r} "
                       f"(available: {known})") from None
    return factory()


def ltp_preset_names() -> List[str]:
    """Sorted names of every registered LTP preset."""
    return sorted(LTP_PRESETS)
