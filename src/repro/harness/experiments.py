"""One function per paper table/figure; each returns data and renders text.

Every function sweeps configurations through :func:`run_sim` (cached) and
returns a plain dict; the matching ``render_*`` function prints the rows
or series the paper's figure plots.  See DESIGN.md for the experiment
index and EXPERIMENTS.md for paper-vs-measured results.

Sweeps parallelise via a plan/execute split: :func:`plan_configs` runs
an experiment function in *planning mode* — :func:`_run` records every
:class:`SimConfig` it would simulate and returns placeholder statistics
so the sweep's control flow completes without simulating anything —
then :func:`run_parallel` executes the recorded configurations across a
``multiprocessing`` pool (:func:`repro.harness.runner.run_sims`) and
re-runs the experiment for real, where every point is a cache hit.

Each experiment/renderer pair self-registers with the
:mod:`repro.api.registry` via the ``@experiment(name)`` /
``@renderer(name)`` decorators; the CLI and any other consumer resolve
scenarios through :func:`repro.api.get_experiment` instead of a
hard-coded table, so new scenarios only need a decorated function.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import (arithmetic_mean, geometric_mean,
                                      mean_relative_performance)
from repro.analysis.mlp_class import SensitivityInputs, classify
from repro.api.registry import experiment, renderer
from repro.api.spec import SweepSpec
from repro.core.params import CoreParams, baseline_params, ltp_params
from repro.energy.model import compute_energy, relative_ed2p
from repro.harness.config import SimConfig
from repro.harness.report import render_table, size_label
from repro.harness.runner import run_sim, run_sims
from repro.ltp.config import LTPConfig, limit_ltp, no_ltp, proposed_ltp
from repro.ltp.oracle import annotate_trace
from repro.policies import DEFAULT_POLICY, policy_names
from repro.util import first_doc_line
from repro.workloads import (MLP_INSENSITIVE, MLP_SENSITIVE, get_workload,
                             mlp_insensitive_suite, mlp_sensitive_suite)

ASTAR = "ptrchase_astar"
MILC = "lattice_milc"

#: the four columns of Figure 6 (and rows of several other figures)
GROUPS = (ASTAR, MILC, MLP_SENSITIVE, MLP_INSENSITIVE)
GROUP_LABELS = {
    ASTAR: "astar/rivers-like",
    MILC: "milc-like",
    MLP_SENSITIVE: "mlp sensitive",
    MLP_INSENSITIVE: "mlp insensitive",
}


def _suite_names(category: str) -> List[str]:
    if category == MLP_SENSITIVE:
        return [w.name for w in mlp_sensitive_suite()]
    return [w.name for w in mlp_insensitive_suite()]


def _group_members(group: str) -> List[str]:
    if group in (MLP_SENSITIVE, MLP_INSENSITIVE):
        return _suite_names(group)
    return [group]


class _PlanStats(dict):
    """Placeholder result used while planning a sweep.

    Returns a neutral ``1`` for any statistic so the aggregation code an
    experiment runs over its results (means, ratios, energy) completes
    without touching the simulator.  The values are discarded — planning
    only exists to record which configurations the sweep needs.
    """

    def __missing__(self, key: str) -> int:
        return 1


#: when not None, _run records configs here instead of simulating
_plan_sink: Optional[List[SimConfig]] = None


def _run(workload: str, core: CoreParams, ltp: LTPConfig,
         warmup: Optional[int], measure: Optional[int],
         policy: str = DEFAULT_POLICY) -> dict:
    config = SimConfig(workload=workload, core=core, ltp=ltp,
                       policy=policy)
    if warmup is not None:
        config.warmup = warmup
    if measure is not None:
        config.measure = measure
    if _plan_sink is not None:
        _plan_sink.append(config)
        return _PlanStats()
    return run_sim(config)


def plan_configs(experiment: Callable, *args, **kwargs) -> List[SimConfig]:
    """Enumerate the configurations *experiment* would simulate.

    Runs the experiment with :func:`_run` in recording mode; duplicate
    configurations are dropped (first occurrence kept), preserving the
    sweep's deterministic order.
    """
    global _plan_sink
    if _plan_sink is not None:
        raise RuntimeError("planning is not reentrant")
    sink: List[SimConfig] = []
    _plan_sink = sink
    try:
        experiment(*args, **kwargs)
    finally:
        _plan_sink = None
    seen: Dict[str, None] = {}
    unique: List[SimConfig] = []
    for config in sink:
        key = config.key()
        if key not in seen:
            seen[key] = None
            unique.append(config)
    return unique


def run_parallel(experiment: Callable, *args,
                 jobs: Optional[int] = None, **kwargs):
    """Run *experiment*, executing its sweep points across processes.

    Equivalent to calling the experiment directly (identical return
    value) but wall-clock time scales with cores: the sweep is planned,
    executed via :func:`repro.harness.runner.run_sims`, and the final
    in-process pass aggregates from the populated cache.
    """
    configs = plan_configs(experiment, *args, **kwargs)
    run_sims(configs, jobs=jobs)
    return experiment(*args, **kwargs)


def _group_perf(group: str, core: CoreParams, ltp: LTPConfig,
                base_cycles: Dict[str, int],
                warmup: Optional[int], measure: Optional[int]) -> float:
    """Mean relative performance of *group* vs. per-workload baselines."""
    names = _group_members(group)
    test = [int(_run(n, core, ltp, warmup, measure)["cycles"])
            for n in names]
    base = [base_cycles[n] for n in names]
    return mean_relative_performance(test, base)


# ======================================================================
# Table 1
# ======================================================================
@experiment("table1")
def table1_config() -> dict:
    """The baseline configuration, plus the proposal's deltas."""
    base = baseline_params()
    return {
        "baseline": base.describe(),
        "proposal": ("LTP proposal: IQ 64->32, available registers "
                     "128->96, plus a 128-entry 4-port queue-based LTP "
                     "and a 256-entry UIT"),
    }


@renderer("table1")
def render_table1(result: dict) -> str:
    return (f"Table 1: baseline processor configuration\n"
            f"{result['baseline']}\n\n{result['proposal']}")


# ======================================================================
# Figure 1 — motivation
# ======================================================================
@experiment("fig1")
def fig1_motivation(warmup: Optional[int] = None,
                    measure: Optional[int] = None) -> dict:
    """CPI / outstanding requests / resource usage, IQ 32 vs 32+LTP vs 256.

    Matches the paper's setup: infinite RF, LQ, SQ and MSHRs, prefetcher
    enabled, so the IQ is the only limiter.
    """
    def core(iq: Optional[int]) -> CoreParams:
        params = CoreParams(iq_size=iq, int_regs=None, fp_regs=None,
                            lq_size=None, sq_size=None)
        params.mem.mshrs = None
        return params

    configs = [
        ("IQ:32", core(32), no_ltp()),
        ("IQ:32+LTP", core(32), limit_ltp("nr+nu")),
        ("IQ:256", core(256), no_ltp()),
    ]
    out: Dict[str, dict] = {"configs": [c[0] for c in configs]}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        per_config = {}
        for label, params, ltp in configs:
            results = [_run(n, params, ltp, warmup, measure) for n in names]
            per_config[label] = {
                "cpi": arithmetic_mean([r["cpi"] for r in results]),
                "outstanding": arithmetic_mean(
                    [r["avg_outstanding"] for r in results]),
                "avg_iq": arithmetic_mean([r["avg_iq"] for r in results]),
                "avg_rf": arithmetic_mean(
                    [r["avg_rf_int"] + r["avg_rf_fp"] for r in results]),
                "avg_lq": arithmetic_mean([r["avg_lq"] for r in results]),
                "avg_sq": arithmetic_mean([r["avg_sq"] for r in results]),
            }
        out[category] = per_config
    return out


@renderer("fig1")
def render_fig1(result: dict) -> str:
    parts = []
    rows = []
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        for label in result["configs"]:
            data = result[category][label]
            rows.append([GROUP_LABELS[category], label, data["cpi"],
                         data["outstanding"]])
    parts.append(render_table(
        ["suite", "config", "CPI", "avg outstanding reqs"], rows,
        title="Figure 1a/1b: CPI and MLP vs IQ configuration"))
    rows = []
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        data = result[category]["IQ:256"]
        rows.append([GROUP_LABELS[category], data["avg_rf"], data["avg_iq"],
                     data["avg_lq"], data["avg_sq"]])
    parts.append(render_table(
        ["suite", "RF", "IQ", "LQ", "SQ"], rows,
        title="Figure 1c: avg resources in use per cycle (IQ:256)"))
    return "\n\n".join(parts)


# ======================================================================
# Figure 2 — classification of the example loop
# ======================================================================
@experiment("fig2")
def fig2_classification(measure: int = 4000) -> dict:
    """Oracle classification of the Figure 2 kernel, per static PC."""
    workload = get_workload("indirect_fig2")
    trace = workload.trace(measure)
    oracle = annotate_trace(trace)
    program = workload.program
    n_static = len(program)
    urgent_votes = [0] * n_static
    nonready_votes = [0] * n_static
    counts = [0] * n_static
    for i, dyn in enumerate(trace):
        counts[dyn.pc] += 1
        if oracle.urgent[i]:
            urgent_votes[dyn.pc] += 1
        if oracle.non_ready[i]:
            nonready_votes[dyn.pc] += 1
    rows = []
    for pc in range(n_static):
        if counts[pc] == 0:
            continue
        urgent = urgent_votes[pc] / counts[pc] > 0.5
        nonready = nonready_votes[pc] / counts[pc] > 0.5
        label = ("U" if urgent else "NU") + "+" + ("NR" if nonready else "R")
        rows.append({
            "pc": pc,
            "text": program[pc].render(),
            "class": label,
        })
    return {"rows": rows}


@renderer("fig2")
def render_fig2(result: dict) -> str:
    rows = [[r["pc"], r["text"], r["class"]] for r in result["rows"]]
    return render_table(["pc", "instruction", "class"], rows,
                        title="Figure 2: LTP classification of the "
                              "B[A[j]] example loop")


# ======================================================================
# Figure 5 — resource lifetimes
# ======================================================================
@experiment("fig5")
def fig5_lifetimes(workload: str = MILC,
                   warmup: Optional[int] = None,
                   measure: Optional[int] = None) -> dict:
    """Average cycles each instruction holds an IQ entry / register.

    LTP shortens both: instructions enter the IQ ready (shorter IQ
    residency) and allocate their register at LTP exit (shorter RF
    lifetime) — the effect Figure 5's timelines illustrate.
    """
    rows = []
    for label, core, ltp in [
            ("baseline IQ:64 RF:128", baseline_params(), no_ltp()),
            ("LTP IQ:32 RF:96", ltp_params(), limit_ltp("nu"))]:
        result = _run(workload, core, ltp, warmup, measure)
        committed = max(1, result["committed"])
        rows.append({
            "config": label,
            "iq_cycles_per_inst":
                result["avg_iq"] * result["cycles"] / committed,
            "rf_cycles_per_inst":
                (result["avg_rf_int"] + result["avg_rf_fp"])
                * result["cycles"] / committed,
            "cpi": result["cpi"],
        })
    return {"workload": workload, "rows": rows}


@renderer("fig5")
def render_fig5(result: dict) -> str:
    rows = [[r["config"], r["iq_cycles_per_inst"], r["rf_cycles_per_inst"],
             r["cpi"]] for r in result["rows"]]
    return render_table(
        ["config", "IQ cycles/inst", "RF cycles/inst", "CPI"], rows,
        title=f"Figure 5: resource lifetimes ({result['workload']})")


# ======================================================================
# Figure 6 — limit study
# ======================================================================
SWEEP_SIZES = {
    "iq": [None, 128, 64, 32, 16],
    "rf": [None, 128, 96, 64, 32],
    "lq": [None, 64, 32, 16, 8],
    "sq": [None, 64, 32, 16, 8],
}
SWEEP_BASELINE = {"iq": 64, "rf": 128, "lq": 64, "sq": 32}
LTP_VARIANTS = [
    ("no-ltp", None),
    ("ltp-nr", "nr"),
    ("ltp-nu", "nu"),
    ("ltp-nr+nu", "nr+nu"),
]


def _limit_core(resource: str, size: Optional[int]) -> CoreParams:
    """All-but-one unlimited, per the limit-study methodology."""
    params = CoreParams(iq_size=None, int_regs=None, fp_regs=None,
                        lq_size=None, sq_size=None)
    params.mem.mshrs = None
    if resource == "iq":
        params.iq_size = size
    elif resource == "rf":
        params.int_regs = size
        params.fp_regs = size
    elif resource == "lq":
        params.lq_size = size
    elif resource == "sq":
        params.sq_size = size
    else:
        raise ValueError(f"unknown resource {resource!r}")
    return params


@experiment("fig6")
def fig6_limit_study(resources: Sequence[str] = ("iq", "rf", "lq", "sq"),
                     groups: Sequence[str] = GROUPS,
                     warmup: Optional[int] = None,
                     measure: Optional[int] = None) -> dict:
    """The Section 4 limit study: performance vs. structure size."""
    out: Dict[str, dict] = {}
    for resource in resources:
        sizes = SWEEP_SIZES[resource]
        base_core = _limit_core(resource, SWEEP_BASELINE[resource])
        base_cycles = {
            name: int(_run(name, base_core, no_ltp(), warmup,
                           measure)["cycles"])
            for group in groups for name in _group_members(group)
        }
        table: Dict[str, dict] = {}
        for group in groups:
            series: Dict[str, List[float]] = {}
            for label, mode in LTP_VARIANTS:
                ltp = no_ltp() if mode is None else limit_ltp(mode)
                series[label] = [
                    _group_perf(group, _limit_core(resource, size), ltp,
                                base_cycles, warmup, measure)
                    for size in sizes
                ]
            table[group] = series
        out[resource] = {"sizes": sizes, "groups": table}
    return out


@renderer("fig6")
def render_fig6(result: dict) -> str:
    parts = []
    for resource, data in result.items():
        sizes = data["sizes"]
        headers = ["group", "config"] + [size_label(s) for s in sizes]
        rows = []
        for group, series in data["groups"].items():
            for label, values in series.items():
                rows.append([GROUP_LABELS.get(group, group), label]
                            + list(values))
        parts.append(render_table(
            headers, rows, precision=1,
            title=(f"Figure 6 ({resource.upper()} sweep): performance "
                   f"vs base {resource.upper()}:"
                   f"{SWEEP_BASELINE[resource]} (%)")))
    return "\n\n".join(parts)


# ======================================================================
# Figure 7 — LTP utilization
# ======================================================================
@experiment("fig7")
def fig7_utilization(warmup: Optional[int] = None,
                     measure: Optional[int] = None) -> dict:
    """Average LTP contents and enabled time for the IQ32/RF96 core."""
    core = ltp_params()
    out: Dict[str, dict] = {}
    for label, mode in [("nr", "nr"), ("nu", "nu"), ("nr+nu", "nr+nu")]:
        ltp = limit_ltp(mode).but(park_loads=False, park_stores=False,
                                  monitor="auto")
        per_group = {}
        for group in GROUPS:
            names = _group_members(group)
            results = [_run(n, core, ltp, warmup, measure) for n in names]
            per_group[group] = {
                "insts": arithmetic_mean([r["avg_ltp"] for r in results]),
                "regs": arithmetic_mean(
                    [r["avg_ltp_regs"] for r in results]),
                "loads": arithmetic_mean(
                    [r["avg_ltp_loads"] for r in results]),
                "stores": arithmetic_mean(
                    [r["avg_ltp_stores"] for r in results]),
                "enabled_pct": 100 * arithmetic_mean(
                    [r["ltp_enabled_fraction"] for r in results]),
            }
        out[label] = per_group
    return out


@renderer("fig7")
def render_fig7(result: dict) -> str:
    rows = []
    for mode, per_group in result.items():
        for group, data in per_group.items():
            rows.append([GROUP_LABELS.get(group, group), mode,
                         data["insts"], data["regs"], data["loads"],
                         data["stores"], data["enabled_pct"]])
    return render_table(
        ["group", "mode", "insts", "regs", "loads", "stores", "enabled %"],
        rows, precision=1,
        title="Figure 7: LTP utilization and enabled time (IQ:32 RF:96)")


# ======================================================================
# Figure 10 — implementation tradeoffs (entries x ports, ED2P)
# ======================================================================
FIG10_ENTRIES = [None, 128, 64, 32, 16]
FIG10_PORTS = [1, 2, 4, 8]


@experiment("fig10")
def fig10_impl_tradeoffs(warmup: Optional[int] = None,
                         measure: Optional[int] = None) -> dict:
    """Performance and IQ/RF ED2P vs LTP entries and ports.

    Baseline: IQ 64 / RF 128, no LTP.  Red line: IQ 32 / RF 96 without
    LTP.  The LTP design is the practical one: online UIT-256
    classification, NU-only, DRAM-timer monitor.
    """
    base_core = baseline_params()
    small_core = ltp_params()
    out: Dict[str, dict] = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base = {n: _run(n, base_core, no_ltp(), warmup, measure)
                for n in names}
        base_cycles = {n: int(r["cycles"]) for n, r in base.items()}
        base_energy = {n: compute_energy(base_core, no_ltp(), r)
                       for n, r in base.items()}

        def evaluate(core: CoreParams, ltp: LTPConfig) -> Tuple[float, float]:
            perfs, ed2ps = [], []
            for name in names:
                result = _run(name, core, ltp, warmup, measure)
                perfs.append(base_cycles[name] / int(result["cycles"]))
                energy = compute_energy(core, ltp, result)
                ed2ps.append(relative_ed2p(energy, base_energy[name]))
            perf_pct = (geometric_mean(perfs) - 1.0) * 100.0
            return perf_pct, arithmetic_mean(ed2ps)

        series = {}
        for ports in FIG10_PORTS:
            row = []
            for entries in FIG10_ENTRIES:
                ltp = proposed_ltp().but(entries=entries, ports=ports)
                perf, ed2p = evaluate(small_core, ltp)
                row.append({"entries": entries, "perf": perf, "ed2p": ed2p})
            series[f"{ports}p"] = row
        no_ltp_perf, no_ltp_ed2p = evaluate(small_core, no_ltp())
        out[category] = {
            "series": series,
            "no_ltp": {"perf": no_ltp_perf, "ed2p": no_ltp_ed2p},
        }
    return {"entries": FIG10_ENTRIES, "by_category": out}


@renderer("fig10")
def render_fig10(result: dict) -> str:
    parts = []
    entries = result["entries"]
    for category, data in result["by_category"].items():
        for metric in ("perf", "ed2p"):
            headers = ["ports"] + [size_label(e) for e in entries]
            rows = []
            for ports, row in data["series"].items():
                rows.append([ports] + [point[metric] for point in row])
            rows.append(["no-LTP"]
                        + [data["no_ltp"][metric]] * len(entries))
            title = (f"Figure 10 ({GROUP_LABELS[category]}): "
                     f"{'performance' if metric == 'perf' else 'IQ/RF ED2P'}"
                     f" vs base IQ:64 RF:128 (%), by LTP entries")
            parts.append(render_table(headers, rows, precision=1,
                                      title=title))
    return "\n\n".join(parts)


# ======================================================================
# Figure 11 — ticket sweep
# ======================================================================
FIG11_TICKETS = [128, 64, 32, 16, 8, 4]


@experiment("fig11")
def fig11_tickets(warmup: Optional[int] = None,
                  measure: Optional[int] = None) -> dict:
    """Performance vs number of tickets for the NR+NU design."""
    base_core = baseline_params()
    small_core = ltp_params()
    out: Dict[str, dict] = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base_cycles = {
            n: int(_run(n, base_core, no_ltp(), warmup, measure)["cycles"])
            for n in names}
        nr_nu = []
        for tickets in FIG11_TICKETS:
            ltp = limit_ltp("nr+nu").but(
                entries=128, ports=4, tickets=tickets,
                park_loads=False, park_stores=False, monitor="auto")
            nr_nu.append(_group_perf(category, small_core, ltp,
                                     base_cycles, warmup, measure))
        nu_ltp = limit_ltp("nu").but(entries=128, ports=4,
                                     park_loads=False, park_stores=False,
                                     monitor="auto")
        nu_line = _group_perf(category, small_core, nu_ltp,
                              base_cycles, warmup, measure)
        no_ltp_line = _group_perf(category, small_core, no_ltp(),
                                  base_cycles, warmup, measure)
        out[category] = {"nr+nu": nr_nu, "nu": nu_line,
                         "no_ltp": no_ltp_line}
    return {"tickets": FIG11_TICKETS, "by_category": out}


@renderer("fig11")
def render_fig11(result: dict) -> str:
    headers = ["suite", "config"] + [str(t) for t in result["tickets"]]
    rows = []
    n = len(result["tickets"])
    for category, data in result["by_category"].items():
        label = GROUP_LABELS[category]
        rows.append([label, "LTP (NR+NU)"] + data["nr+nu"])
        rows.append([label, "LTP (NU)"] + [data["nu"]] * n)
        rows.append([label, "No LTP"] + [data["no_ltp"]] * n)
    return render_table(headers, rows, precision=1,
                        title="Figure 11: performance vs #tickets, "
                              "vs base IQ:64 RF:128 (%)")


# ======================================================================
# Section 5.6 — UIT size ablation
# ======================================================================
UIT_SIZES = [None, 512, 256, 128, 64]


@experiment("uit")
def uit_ablation(warmup: Optional[int] = None,
                 measure: Optional[int] = None) -> dict:
    """Performance vs UIT size for the practical NU-only design."""
    base_core = baseline_params()
    small_core = ltp_params()
    out = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base_cycles = {
            n: int(_run(n, base_core, no_ltp(), warmup, measure)["cycles"])
            for n in names}
        series = []
        for uit_size in UIT_SIZES:
            ltp = proposed_ltp().but(uit_size=uit_size)
            series.append(_group_perf(category, small_core, ltp,
                                      base_cycles, warmup, measure))
        out[category] = series
    return {"sizes": UIT_SIZES, "by_category": out}


@renderer("uit")
def render_uit_ablation(result: dict) -> str:
    headers = ["suite"] + [size_label(s) for s in result["sizes"]]
    rows = [[GROUP_LABELS[c]] + series
            for c, series in result["by_category"].items()]
    return render_table(headers, rows, precision=1,
                        title="Section 5.6: performance vs UIT size, "
                              "vs base IQ:64 RF:128 (%)")


# ======================================================================
# Appendix — oracle vs two-level hit/miss predictor
# ======================================================================
@experiment("predictor")
def predictor_ablation(warmup: Optional[int] = None,
                       measure: Optional[int] = None) -> dict:
    """Oracle vs two-level long-latency prediction (paper: <2 points)."""
    base_core = baseline_params()
    small_core = ltp_params()
    out = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base_cycles = {
            n: int(_run(n, base_core, no_ltp(), warmup, measure)["cycles"])
            for n in names}
        values = {}
        for predictor in ("oracle", "twolevel"):
            ltp = limit_ltp("nr+nu").but(
                entries=128, ports=4, tickets=128,
                ll_predictor=predictor,
                park_loads=False, park_stores=False, monitor="auto")
            values[predictor] = _group_perf(category, small_core, ltp,
                                            base_cycles, warmup, measure)
        out[category] = values
    return out


@renderer("predictor")
def render_predictor_ablation(result: dict) -> str:
    rows = [[GROUP_LABELS[c], v["oracle"], v["twolevel"],
             v["oracle"] - v["twolevel"]]
            for c, v in result.items()]
    return render_table(
        ["suite", "oracle", "two-level", "delta (pts)"], rows, precision=1,
        title="Appendix: LL-predictor ablation, perf vs base (%)")


# ======================================================================
# Section 4.1 — MLP sensitivity classification
# ======================================================================
@experiment("sensitivity")
def sensitivity_report(warmup: Optional[int] = None,
                       measure: Optional[int] = None) -> dict:
    """Apply the Section 4.1 rule to every workload."""
    def core(iq: Optional[int]) -> CoreParams:
        params = CoreParams(iq_size=iq, int_regs=None, fp_regs=None,
                            lq_size=None, sq_size=None)
        params.mem.mshrs = None
        return params

    rows = []
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        for name in _suite_names(category):
            small = _run(name, core(32), no_ltp(), warmup, measure)
            large = _run(name, core(256), no_ltp(), warmup, measure)
            verdict = classify(SensitivityInputs(
                cycles_small_iq=int(small["cycles"]),
                cycles_large_iq=int(large["cycles"]),
                outstanding_small_iq=small["avg_outstanding"],
                outstanding_large_iq=large["avg_outstanding"],
                avg_load_latency=small["avg_load_latency"],
            ))
            rows.append({
                "workload": name,
                "designed_as": category,
                "classified_sensitive": verdict.sensitive,
                "speedup_pct": verdict.speedup_pct,
                "outstanding_growth_pct": verdict.outstanding_growth_pct,
                "beyond_l2": verdict.latency_beyond_l2,
            })
    return {"rows": rows}


@renderer("sensitivity")
def render_sensitivity(result: dict) -> str:
    rows = [[r["workload"], r["designed_as"], r["classified_sensitive"],
             r["speedup_pct"], r["outstanding_growth_pct"], r["beyond_l2"]]
            for r in result["rows"]]
    return render_table(
        ["workload", "designed as", "sensitive?", "speedup %",
         "outst. growth %", ">L2 lat"],
        rows, precision=1,
        title="Section 4.1: MLP-sensitivity classification (IQ 32 vs 256)")


# ======================================================================
# Section 6 — alternatives: WIB-style slice buffer vs LTP
# ======================================================================
@experiment("alternatives")
def alternatives_comparison(warmup: Optional[int] = None,
                            measure: Optional[int] = None) -> dict:
    """LTP vs a WIB-style slice buffer on the IQ and RF axes.

    The paper's related-work contrast (Lebeck et al. [1]): a WIB drains
    miss-dependent instructions out of the IQ but their registers were
    already allocated at rename, so it only relieves IQ pressure.  LTP
    parks before allocation and relieves both.
    """
    from repro.ltp.config import wib_ltp

    out: Dict[str, dict] = {}
    for resource, size in (("iq", 16), ("iq", 32), ("rf", 64), ("rf", 48)):
        base_core = _limit_core(resource, SWEEP_BASELINE[resource])
        swept_core = _limit_core(resource, size)
        base_cycles = {
            name: int(_run(name, base_core, no_ltp(), warmup,
                           measure)["cycles"])
            for name in _group_members(MLP_SENSITIVE)
        }
        row = {}
        for label, ltp in (("no-ltp", no_ltp()), ("wib", wib_ltp()),
                           ("ltp-nr+nu", limit_ltp("nr+nu"))):
            row[label] = _group_perf(MLP_SENSITIVE, swept_core, ltp,
                                     base_cycles, warmup, measure)
        out[f"{resource}:{size}"] = row
    return out


@renderer("alternatives")
def render_alternatives(result: dict) -> str:
    labels = ["no-ltp", "wib", "ltp-nr+nu"]
    rows = [[point] + [values[label] for label in labels]
            for point, values in result.items()]
    return render_table(
        ["sweep point"] + labels, rows, precision=1,
        title="Section 6: WIB-style slice buffer vs LTP, "
              "perf vs per-resource baseline (%), sensitive suite")


# ======================================================================
# Section 3.2 — wakeup-policy ablation (ROB position vs eager)
# ======================================================================
@experiment("wakeup")
def wakeup_policy_ablation(warmup: Optional[int] = None,
                           measure: Optional[int] = None) -> dict:
    """Late (ROB-position) vs eager Non-Urgent wakeup.

    Waking Non-Urgent instructions eagerly re-allocates registers long
    before commit, wasting them (Section 3.2's argument for the
    ROB-position rule); the effect shows at small register files.
    """
    out: Dict[str, dict] = {}
    for rf_size in (96, 64, 48):
        core = _limit_core("rf", rf_size)
        base_core = _limit_core("rf", SWEEP_BASELINE["rf"])
        base_cycles = {
            name: int(_run(name, base_core, no_ltp(), warmup,
                           measure)["cycles"])
            for name in _group_members(MLP_SENSITIVE)
        }
        row = {}
        for policy in ("rob-position", "eager"):
            ltp = limit_ltp("nu").but(wakeup_policy=policy,
                                      park_loads=False, park_stores=False,
                                      monitor="on")
            row[policy] = _group_perf(MLP_SENSITIVE, core, ltp,
                                      base_cycles, warmup, measure)
        out[f"rf:{rf_size}"] = row
    return out


@renderer("wakeup")
def render_wakeup_policy(result: dict) -> str:
    rows = [[point, values["rob-position"], values["eager"],
             values["rob-position"] - values["eager"]]
            for point, values in result.items()]
    return render_table(
        ["sweep point", "rob-position", "eager", "late-wakeup gain"],
        rows, precision=1,
        title="Section 3.2: Non-Urgent wakeup policy ablation, "
              "perf vs RF:128 baseline (%), sensitive suite")


# ======================================================================
# Headline summary (Section 5.7 / conclusions)
# ======================================================================
@experiment("headline")
def headline_summary(warmup: Optional[int] = None,
                     measure: Optional[int] = None) -> dict:
    """The paper's bottom line, per suite.

    Baseline IQ64/RF128 vs the shrunken IQ32/RF96 core with and without
    the proposed LTP: performance and IQ/RF ED2P deltas.
    """
    base_core = baseline_params()
    small_core = ltp_params()
    out: Dict[str, dict] = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base = {n: _run(n, base_core, no_ltp(), warmup, measure)
                for n in names}
        base_cycles = {n: int(r["cycles"]) for n, r in base.items()}
        base_energy = {n: compute_energy(base_core, no_ltp(), r)
                       for n, r in base.items()}

        def evaluate(ltp: LTPConfig) -> dict:
            perfs, ed2ps, enabled = [], [], []
            for name in names:
                result = _run(name, small_core, ltp, warmup, measure)
                perfs.append(base_cycles[name] / int(result["cycles"]))
                energy = compute_energy(small_core, ltp, result)
                ed2ps.append(relative_ed2p(energy, base_energy[name]))
                enabled.append(result["ltp_enabled_fraction"])
            return {
                "perf_pct": (geometric_mean(perfs) - 1.0) * 100.0,
                "ed2p_pct": arithmetic_mean(ed2ps),
                "enabled_pct": 100.0 * arithmetic_mean(enabled),
            }

        out[category] = {
            "no_ltp": evaluate(no_ltp()),
            "proposed": evaluate(proposed_ltp()),
        }
    return out


@renderer("headline")
def render_headline(result: dict) -> str:
    rows = []
    for category, data in result.items():
        for label in ("no_ltp", "proposed"):
            entry = data[label]
            rows.append([GROUP_LABELS[category], label,
                         entry["perf_pct"], entry["ed2p_pct"],
                         entry["enabled_pct"]])
    return render_table(
        ["suite", "IQ32/RF96 config", "perf vs base (%)",
         "IQ/RF ED2P vs base (%)", "LTP enabled (%)"],
        rows, precision=1,
        title="Headline: shrinking IQ 64->32 and RF 128->96, "
              "with and without the proposed LTP")


# ======================================================================
# Allocation-policy comparison (the repro.policies scenario space)
# ======================================================================
@experiment("policies")
def policy_comparison(warmup: Optional[int] = None,
                      measure: Optional[int] = None,
                      policies: Optional[Sequence[str]] = None) -> dict:
    """Compare every registered allocation policy on the small core.

    The scenario space the policy seam opens: per suite, mean relative
    performance of each :mod:`repro.policies` policy (on the IQ32/RF96
    core with the proposed LTP structure sizes) against the IQ64/RF128
    no-LTP baseline, alongside how much each policy parks and its
    policy-aware IQ/RF/queue ED2P delta
    (:func:`repro.energy.model.compute_energy` charges only the window
    structures the policy's registry metadata says it clocks).
    Criticality-aware policies (``ltp``, ``oracle-park``) should
    recover the big core's performance; the criticality-blind strawmen
    (``random-park``) should not — the paper's central claim, now one
    sweep axis.
    """
    chosen = list(policies) if policies is not None else policy_names()
    base_core = baseline_params()
    small_core = ltp_params()
    ltp = proposed_ltp()
    out: Dict[str, dict] = {}
    for category in (MLP_SENSITIVE, MLP_INSENSITIVE):
        names = _suite_names(category)
        base = {n: _run(n, base_core, no_ltp(), warmup, measure)
                for n in names}
        base_cycles = {n: int(r["cycles"]) for n, r in base.items()}
        base_energy = {n: compute_energy(base_core, no_ltp(), r)
                       for n, r in base.items()}
        per_policy: Dict[str, dict] = {}
        for policy in chosen:
            perfs, parked, ed2ps = [], [], []
            for name in names:
                result = _run(name, small_core, ltp, warmup, measure,
                              policy=policy)
                perfs.append(base_cycles[name] / int(result["cycles"]))
                committed = max(1, int(result["committed"]))
                parked.append(result["ltp_parked"] / committed)
                energy = compute_energy(small_core, ltp, result,
                                        policy=policy)
                ed2ps.append(relative_ed2p(energy, base_energy[name]))
            per_policy[policy] = {
                "perf_pct": (geometric_mean(perfs) - 1.0) * 100.0,
                "parked_frac": arithmetic_mean(parked),
                "ed2p_pct": arithmetic_mean(ed2ps),
            }
        out[category] = per_policy
    return {"policies": chosen, "by_category": out}


@renderer("policies")
def render_policy_comparison(result: dict) -> str:
    rows = []
    for category, per_policy in result["by_category"].items():
        for policy in result["policies"]:
            data = per_policy[policy]
            rows.append([GROUP_LABELS.get(category, category), policy,
                         data["perf_pct"], 100.0 * data["parked_frac"],
                         data.get("ed2p_pct")])
    return render_table(
        ["suite", "policy", "perf vs base (%)", "parked (%)",
         "ED2P vs base (%)"],
        rows, precision=1,
        title="Allocation policies on IQ:32 RF:96, "
              "perf vs IQ:64 RF:128 no-LTP baseline")


# ======================================================================
# named sweep presets (``repro sweep NAME`` / scripts/ci_sweep.py)
# ======================================================================
def ltp_queue_sweep(workloads: Optional[Sequence[str]] = None,
                    warmup: Optional[int] = None,
                    measure: Optional[int] = None) -> SweepSpec:
    """The Figure-style headline sweep: LTP on/off x queue sizes.

    Sweeps the proposed LTP design against the no-LTP baseline across
    issue-queue sizes for the full MLP-sensitive + MLP-insensitive
    kernel suite — the axis product behind the paper's headline
    figures, and the sweep CI shards four ways.
    """
    names = (list(workloads) if workloads is not None
             else [w.name for w in (mlp_sensitive_suite()
                                    + mlp_insensitive_suite())])
    return SweepSpec(
        workloads=names,
        core=ltp_params(),
        ltp=proposed_ltp().but(enabled=False),
        warmup=warmup, measure=measure,
        axes={"core.iq_size": [16, 32, 64],
              "ltp.enabled": [False, True]})


def policy_compare_sweep(workloads: Optional[Sequence[str]] = None,
                         warmup: Optional[int] = None,
                         measure: Optional[int] = None,
                         policies: Optional[Sequence[str]] = None,
                         ) -> SweepSpec:
    """Every allocation policy x the full kernel suite.

    The sweep the policy seam exists for: one ``policy`` axis puts the
    paper's LTP, the stalling baseline and the scenario policies
    (oracle / random / depth parking) on identical cores and budgets,
    shardable and resumable like any other sweep.
    """
    names = (list(workloads) if workloads is not None
             else [w.name for w in (mlp_sensitive_suite()
                                    + mlp_insensitive_suite())])
    return SweepSpec(
        workloads=names,
        core=ltp_params(),
        ltp=proposed_ltp(),
        warmup=warmup, measure=measure,
        axes={"policy": (list(policies) if policies is not None
                         else policy_names())})


#: the ``learned-compare`` contenders: both reference points (perfect
#: labels, the paper's online tables) against the learned subsystem
LEARNED_COMPARE_POLICIES = ("oracle-park", "ltp", "model-park",
                            "confidence-park", "loadpred-park")


def learned_compare_sweep(workloads: Optional[Sequence[str]] = None,
                          warmup: Optional[int] = None,
                          measure: Optional[int] = None,
                          policies: Optional[Sequence[str]] = None,
                          ) -> SweepSpec:
    """Oracle vs LTP vs the learned policies x the kernel suite.

    The headline question of :mod:`repro.policies.learned`: how close
    do the trained/adaptive parkers (``model-park``,
    ``confidence-park``, ``loadpred-park``) get to the oracle's perfect
    labels, with the paper's online LTP tables as the reference point
    in between.  Identical cores and budgets; ``summarize()`` breaks
    the result down per policy with ED2P deltas against ``ltp``.
    """
    names = (list(workloads) if workloads is not None
             else [w.name for w in (mlp_sensitive_suite()
                                    + mlp_insensitive_suite())])
    return SweepSpec(
        workloads=names,
        core=ltp_params(),
        ltp=proposed_ltp(),
        warmup=warmup, measure=measure,
        axes={"policy": (list(policies) if policies is not None
                         else list(LEARNED_COMPARE_POLICIES))})


#: name -> zero-config SweepSpec factory; ``repro sweep <name>`` and the
#: CI driver resolve sweeps here when the argument is not a JSON file
SWEEP_PRESETS: Dict[str, Callable[..., SweepSpec]] = {
    "learned-compare": learned_compare_sweep,
    "ltp-queues": ltp_queue_sweep,
    "policy-compare": policy_compare_sweep,
}


def sweep_preset_descriptions() -> Dict[str, str]:
    """Name -> one-line description for every registered sweep preset."""
    return {name: first_doc_line(SWEEP_PRESETS[name].__doc__)
            for name in sorted(SWEEP_PRESETS)}


def sweep_preset(name: str, **kwargs) -> SweepSpec:
    """Build a registered sweep preset by name."""
    try:
        factory = SWEEP_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SWEEP_PRESETS)) or "none"
        raise KeyError(
            f"unknown sweep preset {name!r} (registered: {known})") \
            from None
    return factory(**kwargs)


def sweep_preset_names() -> List[str]:
    """Sorted names of the registered sweep presets."""
    return sorted(SWEEP_PRESETS)


def resolve_sweep_spec(text: str, warmup: Optional[int] = None,
                       measure: Optional[int] = None,
                       engine: Optional[str] = None) -> SweepSpec:
    """Resolve a sweep argument: a SweepSpec JSON file, else a preset.

    The one place ``repro sweep`` and ``scripts/ci_sweep.py`` share, so
    spec-format and preset changes land once.  Budget and engine
    overrides apply to both forms (``None`` keeps the file's or
    factory's value; an ``"engine"`` axis still wins per point).
    """
    path = Path(text)
    if path.is_file():
        with open(path) as handle:
            spec = SweepSpec.from_dict(json.load(handle))
        if warmup is not None:
            spec.warmup = warmup
        if measure is not None:
            spec.measure = measure
        if engine is not None:
            spec.engine = engine
        return spec
    try:
        spec = sweep_preset(text, warmup=warmup, measure=measure)
        if engine is not None:
            spec.engine = engine
        return spec
    except KeyError:
        presets = ", ".join(sweep_preset_names()) or "none"
        raise ValueError(
            f"sweep spec {text!r} is neither a JSON file nor a "
            f"registered preset (presets: {presets})") from None
