"""Experiment harness: runner shims, caching, reports, per-figure sweeps.

The mutable runner state now lives in :class:`repro.api.session.Session`
objects; this package keeps the configuration/result plumbing and the
legacy functional entry points.
"""

from repro.harness.config import DEFAULT_MEASURE, DEFAULT_WARMUP, SimConfig
from repro.harness.report import render_json, render_table, size_label
from repro.harness.runner import (clear_memory_caches, get_trace, run_sim,
                                  run_sims)

__all__ = [
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
    "SimConfig",
    "clear_memory_caches",
    "get_trace",
    "render_json",
    "render_table",
    "run_sim",
    "run_sims",
    "size_label",
]
