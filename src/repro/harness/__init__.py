"""Experiment harness: runner, caching, reports and per-figure sweeps."""

from repro.harness.config import DEFAULT_MEASURE, DEFAULT_WARMUP, SimConfig
from repro.harness.report import render_table, size_label
from repro.harness.runner import clear_memory_caches, get_trace, run_sim

__all__ = [
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
    "SimConfig",
    "clear_memory_caches",
    "get_trace",
    "render_table",
    "run_sim",
    "size_label",
]
