"""Simulation-run configuration, declarative (de)serialization, keys.

:class:`SimConfig` is the unit of work the whole harness revolves
around.  It round-trips through plain dicts — ``to_dict`` /
``from_dict`` — so sweeps can be declared in JSON/YAML and shipped
across process or service boundaries, and its :meth:`SimConfig.key`
content hash (derived from the same dict) keys the result caches.
Unknown fields in a payload raise ``ValueError`` so schema drift is
caught at the boundary rather than as silently-ignored settings.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.params import CoreParams
from repro.ltp.config import LTPConfig
from repro.memory.hierarchy import MemParams
from repro.policies.registry import DEFAULT_POLICY, check_policy_name

#: default instruction budgets; the paper warms for 250 M and measures
#: 10 M per SimPoint on gem5 — a pure-Python cycle model is ~4 orders of
#: magnitude slower, so the defaults measure a few thousand instructions
#: of steady-state loop execution (scale with REPRO_MEASURE_INSTS /
#: REPRO_WARMUP_INSTS).
DEFAULT_WARMUP = int(os.environ.get("REPRO_WARMUP_INSTS", "6000"))
DEFAULT_MEASURE = int(os.environ.get("REPRO_MEASURE_INSTS", "2500"))

#: config-payload schema version (bump when the dict shape changes in a
#: way that must invalidate cached results)
CONFIG_SCHEMA = 3

#: simulation engines: the reference object-graph pipeline and the
#: columnar struct-of-arrays kernel (:mod:`repro.core.kernel`), which
#: produces bit-identical statistics
DEFAULT_ENGINE = "object"
ENGINES = (DEFAULT_ENGINE, "kernel")


def _dataclass_from_dict(cls: type, data: Mapping[str, Any], what: str):
    try:
        return cls(**data)
    except TypeError as exc:
        raise ValueError(f"bad {what} payload: {exc}") from None


def core_from_dict(data: Mapping[str, Any]) -> CoreParams:
    """Rebuild :class:`CoreParams` (including nested memory params)."""
    payload = dict(data)
    mem_data = payload.pop("mem", None)
    mem = (_dataclass_from_dict(MemParams, mem_data, "memory config")
           if mem_data is not None else MemParams())
    payload["mem"] = mem
    return _dataclass_from_dict(CoreParams, payload, "core config")


def ltp_from_dict(data: Mapping[str, Any]) -> LTPConfig:
    """Rebuild :class:`LTPConfig` from its ``asdict`` payload."""
    return _dataclass_from_dict(LTPConfig, dict(data), "LTP config")


@dataclass
class SimConfig:
    """Everything one simulation run depends on."""

    workload: str
    core: CoreParams = field(default_factory=CoreParams)
    ltp: LTPConfig = field(default_factory=LTPConfig)
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE
    #: allocation policy name (:mod:`repro.policies`); the default
    #: ("ltp") is the historical controller path and is omitted from
    #: payloads, so pre-policy configs keep their cache keys
    policy: str = DEFAULT_POLICY
    #: frozen model artifact payload for learned policies
    #: (:mod:`repro.policies.learned`); ``None`` — the default, omitted
    #: from payloads so model-free configs keep their cache keys —
    #: means a learned policy falls back to the committed example
    #: artifact.  The payload's content hash makes different weights
    #: key differently.
    model: Optional[Dict[str, Any]] = None
    #: simulation engine ("object" or "kernel"); both produce identical
    #: statistics, so the engine is *not* part of the result identity —
    #: it is omitted from default payloads and pre-engine configs keep
    #: their cache keys, while explicit "kernel" payloads key separately
    #: (a cheap safety net: a kernel-vs-object divergence would surface
    #: as a cache mismatch rather than silently reusing results)
    engine: str = DEFAULT_ENGINE

    def validate(self) -> "SimConfig":
        self.core.validate()
        self.ltp.validate()
        check_policy_name(self.policy)
        if self.model is not None:
            # deferred import: the learned package registers policies,
            # which pulls in this module
            from repro.policies.learned.artifact import \
                validate_model_payload
            validate_model_payload(self.model)
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}: expected one of "
                f"{', '.join(ENGINES)}")
        if self.warmup < 0 or self.measure <= 0:
            raise ValueError("warmup must be >= 0, measure > 0")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Declarative payload; also the input of :meth:`key`."""
        payload = {
            "workload": self.workload,
            "core": asdict(self.core),
            "ltp": asdict(self.ltp),
            "warmup": self.warmup,
            "measure": self.measure,
            "schema": CONFIG_SCHEMA,
        }
        if self.policy != DEFAULT_POLICY:
            # key stability: default-policy payloads are byte-identical
            # to pre-policy ones, so stored results keep resolving
            payload["policy"] = self.policy
        if self.model is not None:
            payload["model"] = self.model
        if self.engine != DEFAULT_ENGINE:
            payload["engine"] = self.engine
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimConfig":
        """Inverse of :meth:`to_dict`; preserves :meth:`key` exactly.

        Tolerates payloads that omit ``core``/``ltp``/budgets (defaults
        apply); rejects unknown fields inside them.
        """
        payload = dict(data)
        payload.pop("schema", None)
        try:
            workload = payload.pop("workload")
        except KeyError:
            raise ValueError("config payload is missing 'workload'") \
                from None
        core_data = payload.pop("core", None)
        ltp_data = payload.pop("ltp", None)
        warmup = payload.pop("warmup", DEFAULT_WARMUP)
        measure = payload.pop("measure", DEFAULT_MEASURE)
        policy = payload.pop("policy", DEFAULT_POLICY)
        model = payload.pop("model", None)
        engine = payload.pop("engine", DEFAULT_ENGINE)
        if payload:
            raise ValueError(
                f"unknown config fields: {sorted(payload)}")
        config = cls(
            workload=workload,
            core=(core_from_dict(core_data) if core_data is not None
                  else CoreParams()),
            ltp=(ltp_from_dict(ltp_data) if ltp_data is not None
                 else LTPConfig()),
            warmup=int(warmup), measure=int(measure),
            policy=str(policy), model=model, engine=str(engine))
        return config.validate()

    def key(self) -> str:
        """Stable content hash identifying this configuration."""
        text = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(text.encode()).hexdigest()[:24]
