"""Simulation-run configuration and stable cache keys."""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field

from repro.core.params import CoreParams
from repro.ltp.config import LTPConfig

#: default instruction budgets; the paper warms for 250 M and measures
#: 10 M per SimPoint on gem5 — a pure-Python cycle model is ~4 orders of
#: magnitude slower, so the defaults measure a few thousand instructions
#: of steady-state loop execution (scale with REPRO_MEASURE_INSTS /
#: REPRO_WARMUP_INSTS).
DEFAULT_WARMUP = int(os.environ.get("REPRO_WARMUP_INSTS", "6000"))
DEFAULT_MEASURE = int(os.environ.get("REPRO_MEASURE_INSTS", "2500"))


@dataclass
class SimConfig:
    """Everything one simulation run depends on."""

    workload: str
    core: CoreParams = field(default_factory=CoreParams)
    ltp: LTPConfig = field(default_factory=LTPConfig)
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE

    def validate(self) -> "SimConfig":
        self.core.validate()
        self.ltp.validate()
        if self.warmup < 0 or self.measure <= 0:
            raise ValueError("warmup must be >= 0, measure > 0")
        return self

    def key(self) -> str:
        """Stable content hash identifying this configuration."""
        payload = {
            "workload": self.workload,
            "core": asdict(self.core),
            "ltp": asdict(self.ltp),
            "warmup": self.warmup,
            "measure": self.measure,
            "schema": 3,
        }
        text = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(text.encode()).hexdigest()[:24]
