"""Simulation runner: trace generation, warmup, execution, caching.

The paper warms caches for 250 M instructions and then measures a 10 M
instruction SimPoint.  The runner mirrors that shape:

1. generate ``warmup + measure`` dynamic instructions from the workload,
2. compute the oracle annotation over the *full* trace (miss levels,
   Urgent/Non-Ready ground truth) — also used to warm the online
   structures,
3. warm the memory hierarchy, branch predictor and LTP classifier on
   the warmup slice (functionally, no timing),
4. run the timing pipeline over the measured slice.

Results are cached on disk keyed by the full configuration hash;
re-running a sweep is free.  :func:`run_sims` executes a batch of
independent configurations across a ``multiprocessing`` pool — trace
generation is deterministic, so each worker regenerates what it needs,
and the disk cache's atomic writes make concurrent writers safe.

In-process memoisation is bounded: the trace cache keeps only the
longest trace per workload (callers get a shared or freshly-sliced
prefix, never a retained duplicate per distinct length) and both it and
the oracle cache evict least-recently-used entries beyond a small cap.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams, cap
from repro.core.pipeline import CODE_BASE, INST_BYTES, Pipeline
from repro.harness.cachefile import ResultCache
from repro.harness.config import SimConfig
from repro.isa.trace import DynInst
from repro.ltp.controller import LTPController
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.memory.cache import block_of
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_workload

#: workload name -> (max length ever requested, longest trace so far);
#: a trace shorter than its requested length means the workload halts
#: early and the trace is complete (LRU, bounded)
_trace_cache: "OrderedDict[str, Tuple[int, List[DynInst]]]" = OrderedDict()
_TRACE_CACHE_MAX = 8

#: (workload, length, mem key, window) -> oracle annotation (LRU, bounded)
_oracle_cache: "OrderedDict[Tuple[str, int, str, int], OracleInfo]" = \
    OrderedDict()
_ORACLE_CACHE_MAX = 16

_result_cache = ResultCache()


def get_trace(workload_name: str, length: int) -> List[DynInst]:
    """Build (and memoise) the first *length* instructions of a workload.

    Only the longest trace per workload is retained; shorter requests
    return a slice of it, so distinct sweep lengths never pile up
    duplicate copies in memory.
    """
    cached = _trace_cache.get(workload_name)
    if cached is not None:
        max_requested, full = cached
        # shorter than an earlier request => the workload halts there
        # and the trace is complete; never regenerate it
        complete = len(full) < max_requested
        if len(full) < length and not complete:
            full = get_workload(workload_name).trace(length)
        if length > max_requested or full is not cached[1]:
            _trace_cache[workload_name] = (max(length, max_requested), full)
    else:
        full = get_workload(workload_name).trace(length)
        _trace_cache[workload_name] = (length, full)
    _trace_cache.move_to_end(workload_name)
    while len(_trace_cache) > _TRACE_CACHE_MAX:
        _trace_cache.popitem(last=False)
    if len(full) <= length:
        return full
    return full[:length]


def get_oracle(workload_name: str, length: int, core: CoreParams,
               trace: List[DynInst]) -> OracleInfo:
    """Oracle annotation over the full trace (cached, LRU-bounded)."""
    window = min(cap(core.rob_size), 4096)
    mem_key = (f"{core.mem.l1d_size}/{core.mem.l2_size}/{core.mem.l3_size}/"
               f"{core.mem.prefetch_degree}")
    key = (workload_name, length, mem_key, window)
    oracle = _oracle_cache.get(key)
    if oracle is None:
        workload = get_workload(workload_name)
        oracle = annotate_trace(trace, core.mem, window=window,
                                warm_regions=workload.warm_regions)
        _oracle_cache[key] = oracle
    _oracle_cache.move_to_end(key)
    while len(_oracle_cache) > _ORACLE_CACHE_MAX:
        _oracle_cache.popitem(last=False)
    return oracle


def _warm_hierarchy(hierarchy: MemoryHierarchy, warmup_slice,
                    program_len: int, warm_regions=()) -> None:
    # Hot metadata a paper-scale warmup (250 M instructions) would leave
    # resident: the kernels re-walk these small arrays with a period far
    # longer than our warmup slice, so install them in the L2/L3 first.
    for base, words in warm_regions:
        for block in range(block_of(base), block_of(base + words * 8) + 1):
            hierarchy.l2.insert(block)
            hierarchy.l3.insert(block)
    for dyn in warmup_slice:
        if dyn.is_mem:
            hierarchy.functional_access(dyn.addr, is_store=dyn.is_store,
                                        pc=dyn.pc)
    # warm the instruction path: kernels are tiny, touch every block once
    for pc in range(program_len):
        block = block_of(CODE_BASE + pc * INST_BYTES)
        hierarchy.l1i.insert(block)
        hierarchy.l2.insert(block)
        hierarchy.l3.insert(block)


def _warm_branch_predictor(bpred: GsharePredictor, warmup_slice) -> None:
    for dyn in warmup_slice:
        if dyn.is_branch:
            bpred.predict_and_update(dyn.pc, dyn.taken)


def run_sim(config: SimConfig, use_cache: bool = True) -> dict:
    """Run one simulation; return the flattened statistics dict."""
    config.validate()
    key = config.key()
    if use_cache:
        cached = _result_cache.get(key)
        if cached is not None:
            return cached

    total = config.warmup + config.measure
    trace = get_trace(config.workload, total)
    workload = get_workload(config.workload)

    needs_oracle = (config.ltp.enabled
                    and (config.ltp.classifier == "oracle"
                         or config.ltp.ll_predictor == "oracle"))
    oracle = get_oracle(config.workload, total, config.core, trace) \
        if (needs_oracle or config.ltp.enabled) else None

    warmup_slice = trace[:config.warmup]
    measured = trace[config.warmup:]

    hierarchy = MemoryHierarchy(config.core.mem)
    _warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                    warm_regions=workload.warm_regions)
    bpred = GsharePredictor()
    _warm_branch_predictor(bpred, warmup_slice)

    controller = LTPController(config.ltp, config.core.mem.dram_latency,
                               oracle=oracle)
    if config.ltp.enabled and oracle is not None and config.warmup:
        controller.warm_from_trace(
            warmup_slice, oracle.long_latency[:config.warmup])

    pipeline = Pipeline(measured, params=config.core, ltp=config.ltp,
                        controller=controller, hierarchy=hierarchy,
                        branch_predictor=bpred)
    stats = pipeline.run()
    result = stats.as_dict()
    result["workload"] = config.workload
    result["category"] = workload.category
    if use_cache:
        _result_cache.put(key, result)
    return result


# ======================================================================
# parallel batch execution
# ======================================================================
def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _run_sim_indexed(item: Tuple[int, SimConfig, bool]) -> Tuple[int, dict]:
    index, config, use_cache = item
    return index, run_sim(config, use_cache=use_cache)


def run_sims(configs: Iterable[SimConfig], jobs: Optional[int] = None,
             use_cache: bool = True) -> List[dict]:
    """Run independent configurations, fanning out across processes.

    Results come back in the order of *configs* (deterministic
    aggregation regardless of worker scheduling).  Configurations whose
    results are already cached are resolved in-process; the rest are
    distributed over ``jobs`` workers (default :func:`default_jobs`).
    Workers populate the shared disk cache — its atomic replace-on-write
    keeps concurrent writers safe — and the parent re-inserts every
    result into its in-memory cache, so a subsequent sequential pass
    over the same sweep is free.
    """
    config_list = list(configs)
    if jobs is None:
        jobs = default_jobs()
    results: dict = {}
    pending: List[Tuple[int, SimConfig, bool]] = []
    primary: Dict[str, int] = {}          # key -> index that simulates it
    duplicates: List[Tuple[int, str]] = []
    for index, config in enumerate(config_list):
        config.validate()
        key = config.key()
        cached = _result_cache.get(key) if use_cache else None
        if cached is not None:
            results[index] = cached
        elif key in primary:  # simulate each distinct config once
            duplicates.append((index, key))
        else:
            primary[key] = index
            pending.append((index, config, use_cache))

    if pending and (jobs <= 1 or len(pending) == 1):
        for index, config, _ in pending:
            results[index] = run_sim(config, use_cache=use_cache)
    elif pending:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        ctx = multiprocessing.get_context(method)
        workers = min(jobs, len(pending))
        with ctx.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(
                    _run_sim_indexed, pending):
                results[index] = result
                if use_cache:
                    # the worker already wrote the disk cache; keep only
                    # the in-memory copy here
                    _result_cache.put(config_list[index].key(), result,
                                      disk=False)
    for index, key in duplicates:
        results[index] = results[primary[key]]

    return [results[index] for index in range(len(config_list))]


def clear_memory_caches() -> None:
    """Drop in-process trace/oracle caches (tests use this)."""
    _trace_cache.clear()
    _oracle_cache.clear()
