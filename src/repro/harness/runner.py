"""Simulation runner: trace generation, warmup, execution, caching.

The paper warms caches for 250 M instructions and then measures a 10 M
instruction SimPoint.  The runner mirrors that shape:

1. generate ``warmup + measure`` dynamic instructions from the workload,
2. compute the oracle annotation over the *full* trace (miss levels,
   Urgent/Non-Ready ground truth) — also used to warm the online
   structures,
3. warm the memory hierarchy, branch predictor and LTP classifier on
   the warmup slice (functionally, no timing),
4. run the timing pipeline over the measured slice.

Results are cached on disk keyed by the full configuration hash;
re-running a sweep is free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams, cap
from repro.core.pipeline import CODE_BASE, INST_BYTES, Pipeline
from repro.harness.cachefile import ResultCache
from repro.harness.config import SimConfig
from repro.isa.trace import DynInst
from repro.ltp.controller import LTPController
from repro.ltp.oracle import OracleInfo, annotate_trace
from repro.memory.cache import block_of
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_workload

_trace_cache: Dict[Tuple[str, int], List[DynInst]] = {}
_oracle_cache: Dict[Tuple[str, int, str, int], OracleInfo] = {}
_result_cache = ResultCache()


def get_trace(workload_name: str, length: int) -> List[DynInst]:
    """Build (and memoise) the first *length* instructions of a workload."""
    key = (workload_name, length)
    trace = _trace_cache.get(key)
    if trace is None:
        # reuse a longer cached trace when one exists
        for (name, cached_len), cached in _trace_cache.items():
            if name == workload_name and cached_len >= length:
                trace = cached[:length]
                break
        else:
            trace = get_workload(workload_name).trace(length)
        _trace_cache[key] = trace
    return trace


def get_oracle(workload_name: str, length: int, core: CoreParams,
               trace: List[DynInst]) -> OracleInfo:
    """Oracle annotation over the full trace (cached)."""
    window = min(cap(core.rob_size), 4096)
    mem_key = (f"{core.mem.l1d_size}/{core.mem.l2_size}/{core.mem.l3_size}/"
               f"{core.mem.prefetch_degree}")
    key = (workload_name, length, mem_key, window)
    oracle = _oracle_cache.get(key)
    if oracle is None:
        workload = get_workload(workload_name)
        oracle = annotate_trace(trace, core.mem, window=window,
                                warm_regions=workload.warm_regions)
        _oracle_cache[key] = oracle
    return oracle


def _warm_hierarchy(hierarchy: MemoryHierarchy, warmup_slice,
                    program_len: int, warm_regions=()) -> None:
    # Hot metadata a paper-scale warmup (250 M instructions) would leave
    # resident: the kernels re-walk these small arrays with a period far
    # longer than our warmup slice, so install them in the L2/L3 first.
    for base, words in warm_regions:
        for block in range(block_of(base), block_of(base + words * 8) + 1):
            hierarchy.l2.insert(block)
            hierarchy.l3.insert(block)
    for dyn in warmup_slice:
        if dyn.is_mem:
            hierarchy.functional_access(dyn.addr, is_store=dyn.is_store,
                                        pc=dyn.pc)
    # warm the instruction path: kernels are tiny, touch every block once
    for pc in range(program_len):
        block = block_of(CODE_BASE + pc * INST_BYTES)
        hierarchy.l1i.insert(block)
        hierarchy.l2.insert(block)
        hierarchy.l3.insert(block)


def _warm_branch_predictor(bpred: GsharePredictor, warmup_slice) -> None:
    for dyn in warmup_slice:
        if dyn.is_branch:
            bpred.predict_and_update(dyn.pc, dyn.taken)


def run_sim(config: SimConfig, use_cache: bool = True) -> dict:
    """Run one simulation; return the flattened statistics dict."""
    config.validate()
    key = config.key()
    if use_cache:
        cached = _result_cache.get(key)
        if cached is not None:
            return cached

    total = config.warmup + config.measure
    trace = get_trace(config.workload, total)
    workload = get_workload(config.workload)

    needs_oracle = (config.ltp.enabled
                    and (config.ltp.classifier == "oracle"
                         or config.ltp.ll_predictor == "oracle"))
    oracle = get_oracle(config.workload, total, config.core, trace) \
        if (needs_oracle or config.ltp.enabled) else None

    warmup_slice = trace[:config.warmup]
    measured = trace[config.warmup:]

    hierarchy = MemoryHierarchy(config.core.mem)
    _warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                    warm_regions=workload.warm_regions)
    bpred = GsharePredictor()
    _warm_branch_predictor(bpred, warmup_slice)

    controller = LTPController(config.ltp, config.core.mem.dram_latency,
                               oracle=oracle)
    if config.ltp.enabled and oracle is not None and config.warmup:
        controller.warm_from_trace(
            warmup_slice, oracle.long_latency[:config.warmup])

    pipeline = Pipeline(measured, params=config.core, ltp=config.ltp,
                        controller=controller, hierarchy=hierarchy,
                        branch_predictor=bpred)
    stats = pipeline.run()
    result = stats.as_dict()
    result["workload"] = config.workload
    result["category"] = workload.category
    if use_cache:
        _result_cache.put(key, result)
    return result


def clear_memory_caches() -> None:
    """Drop in-process trace/oracle caches (tests use this)."""
    _trace_cache.clear()
    _oracle_cache.clear()
