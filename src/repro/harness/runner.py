"""Legacy simulation-runner entry points, now thin session shims.

The paper warms caches for 250 M instructions and then measures a 10 M
instruction SimPoint.  The execution recipe mirrors that shape (see
:meth:`repro.api.session.Session._execute`):

1. generate ``warmup + measure`` dynamic instructions from the workload,
2. compute the oracle annotation over the *full* trace (miss levels,
   Urgent/Non-Ready ground truth) — also used to warm the online
   structures,
3. warm the memory hierarchy, branch predictor and LTP classifier on
   the warmup slice (functionally, no timing),
4. run the timing pipeline over the measured slice.

All mutable state — the bounded trace/oracle memoisation and the
memory+disk result cache — is owned by :class:`repro.api.session.Session`
objects; this module keeps the historical functional API
(:func:`run_sim`, :func:`run_sims`, :func:`get_trace`,
:func:`get_oracle`, :func:`clear_memory_caches`) as shims over the
process-global default session, so existing call sites and the
differential-equivalence guarantees keep working unchanged.  The pure
warm-up helpers live here because they carry no state.

Backward-compatible cache access: attribute reads of ``_trace_cache``,
``_oracle_cache`` and ``_result_cache`` resolve to the default
session's objects via module ``__getattr__`` **and emit a
``DeprecationWarning``** (the tier-1 suite escalates it to an error —
new code must hold a :class:`repro.api.session.Session` instead);
assigning ``runner._result_cache`` (as cache-isolation test fixtures
do) routes the shims through the assigned cache.
"""

from __future__ import annotations

import os
import warnings
import weakref
from typing import Iterable, List, Optional

from repro.core.branch import GsharePredictor
from repro.core.params import CoreParams
from repro.core.pipeline import CODE_BASE, INST_BYTES
from repro.harness.config import SimConfig
from repro.isa.trace import DynInst
from repro.ltp.oracle import OracleInfo
from repro.memory.cache import block_of
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads import get_workload

#: LRU caps of the default in-process memoisation (per session)
TRACE_CACHE_MAX = 8
ORACLE_CACHE_MAX = 16

#: legacy aliases (tests import these)
_TRACE_CACHE_MAX = TRACE_CACHE_MAX
_ORACLE_CACHE_MAX = ORACLE_CACHE_MAX

#: module attributes resolved against the default session on first use
_SESSION_ATTRS = ("_trace_cache", "_oracle_cache", "_result_cache")

#: result caches ever handed out as *the default session's* — a module
#: global equal to one of these is a restored read-back (e.g. a
#: monkeypatch teardown), not an explicit override, and must keep
#: tracking the current default session
_default_result_caches: "weakref.WeakSet" = weakref.WeakSet()


def __getattr__(name: str):
    if name in _SESSION_ATTRS:
        warnings.warn(
            f"runner.{name} is deprecated; hold a repro.api.Session "
            f"(or repro.api.default_session()) and use its "
            f"{'results' if name == '_result_cache' else name} instead",
            DeprecationWarning, stacklevel=2)
        from repro.api.session import default_session
        session = default_session()
        if name == "_result_cache":
            _default_result_caches.add(session.results)
        return {
            "_trace_cache": session._trace_cache,
            "_oracle_cache": session._oracle_cache,
            "_result_cache": session.results,
        }[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _module_get_workload(name: str):
    """Resolve workloads through this module's ``get_workload`` global
    at call time, so monkeypatched stand-ins keep working."""
    return get_workload(name)


def _shim_session():
    """The session the legacy entry points run against.

    A view of the process-global default session that (a) uses the
    ``runner._result_cache`` override when a caller (test fixture) has
    assigned one, and (b) resolves workloads through this module's
    ``get_workload`` global so monkeypatched stand-ins apply to every
    entry point, exactly as before the session refactor.
    """
    from repro.api.session import default_session
    session = default_session()
    override = globals().get("_result_cache")
    results = session.results
    if override is not None and override is not results \
            and override not in _default_result_caches:
        results = override
    view = session._with_result_cache(results)
    view._workload_factory = _module_get_workload
    return view


# ======================================================================
# pure warm-up helpers (stateless; also used by the perf bench harness)
# ======================================================================
def warm_hierarchy(hierarchy: MemoryHierarchy, warmup_slice,
                   program_len: int, warm_regions=()) -> None:
    # Hot metadata a paper-scale warmup (250 M instructions) would leave
    # resident: the kernels re-walk these small arrays with a period far
    # longer than our warmup slice, so install them in the L2/L3 first.
    for base, words in warm_regions:
        for block in range(block_of(base), block_of(base + words * 8) + 1):
            hierarchy.l2.insert(block)
            hierarchy.l3.insert(block)
    for dyn in warmup_slice:
        if dyn.is_mem:
            hierarchy.functional_access(dyn.addr, is_store=dyn.is_store,
                                        pc=dyn.pc)
    # warm the instruction path: kernels are tiny, touch every block once
    for pc in range(program_len):
        block = block_of(CODE_BASE + pc * INST_BYTES)
        hierarchy.l1i.insert(block)
        hierarchy.l2.insert(block)
        hierarchy.l3.insert(block)


def warm_branch_predictor(bpred: GsharePredictor, warmup_slice) -> None:
    for dyn in warmup_slice:
        if dyn.is_branch:
            bpred.predict_and_update(dyn.pc, dyn.taken)


#: legacy aliases (the perf bench harness imports the underscored names)
_warm_hierarchy = warm_hierarchy
_warm_branch_predictor = warm_branch_predictor


# ======================================================================
# legacy functional API (shims over the default session)
# ======================================================================
def get_trace(workload_name: str, length: int) -> List[DynInst]:
    """Build (and memoise) the first *length* instructions of a workload.

    Only the longest trace per workload is retained; shorter requests
    return a slice of it, so distinct sweep lengths never pile up
    duplicate copies in memory.
    """
    return _shim_session().get_trace(workload_name, length)


def get_oracle(workload_name: str, length: int, core: CoreParams,
               trace: List[DynInst]) -> OracleInfo:
    """Oracle annotation over the full trace (cached, LRU-bounded)."""
    return _shim_session().get_oracle(workload_name, length, core, trace)


def run_sim_result(config: SimConfig, use_cache: bool = True):
    """Run one simulation on the default session; return a
    :class:`repro.api.result.SimResult` (the shim-aware equivalent of
    ``Session.run``, used by :func:`run_sim`, the CLI and pool
    workers)."""
    return _shim_session().run(config, use_cache=use_cache)


def run_sim(config: SimConfig, use_cache: bool = True) -> dict:
    """Run one simulation; return the flattened statistics dict."""
    return run_sim_result(config, use_cache=use_cache).stats


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def run_sims(configs: Iterable[SimConfig], jobs: Optional[int] = None,
             use_cache: bool = True) -> List[dict]:
    """Run independent configurations, fanning out across processes.

    Results come back in the order of *configs* (deterministic
    aggregation regardless of worker scheduling).  Configurations whose
    results are already cached are resolved in-process; the rest are
    distributed over ``jobs`` workers (default :func:`default_jobs`)
    via :class:`repro.api.backends.ProcessPoolBackend`.  Workers
    populate the shared disk cache — its atomic replace-on-write keeps
    concurrent writers safe — and the parent re-inserts every result
    into its in-memory cache, so a subsequent sequential pass over the
    same sweep is free.
    """
    from repro.api.backends import ProcessPoolBackend
    # the pool backend degrades to in-process execution for jobs <= 1
    # or a single pending item, so it is the policy in both regimes
    backend = ProcessPoolBackend(jobs=jobs)
    results = _shim_session().run_many(configs, use_cache=use_cache,
                                       backend=backend)
    return [result.stats for result in results]


def clear_memory_caches() -> None:
    """Drop in-process trace/oracle caches (tests use this)."""
    from repro.api.session import default_session
    default_session().clear_memory_caches(results=False)
