"""ASCII charts for experiment output.

The paper's figures are bar and line charts; these helpers render the
same data as monospace text so `pytest benchmarks/` output and
EXPERIMENTS.md can show shapes, not just numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 50,
              title: Optional[str] = None, unit: str = "") -> str:
    """Horizontal bar chart; bars scale to the largest |value|.

    Negative values are rendered with ``<`` bars so sweeps "performance
    vs baseline (%)" read naturally.
    """
    if not items:
        raise ValueError("nothing to chart")
    label_width = max(len(label) for label, _ in items)
    peak = max(abs(value) for _, value in items) or 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in items:
        bar_len = int(round(abs(value) / peak * width))
        bar = ("<" if value < 0 else "#") * bar_len
        lines.append(f"{label:>{label_width}} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: "Dict[str, Sequence[Tuple[str, float]]]",
                      width: int = 40, title: Optional[str] = None,
                      unit: str = "") -> str:
    """Bar chart with one block of bars per group, on a shared scale.

    *groups* maps a group label (e.g. an allocation policy) to its
    ``(bar label, value)`` pairs (e.g. per-workload means).  All bars
    scale to the largest |value| across every group, so blocks compare
    against each other — the shape sweep summaries use for their
    per-policy breakdowns.
    """
    if not groups or not any(items for items in groups.values()):
        raise ValueError("nothing to chart")
    label_width = max(len(label)
                      for items in groups.values()
                      for label, _ in items)
    peak = max((abs(value)
                for items in groups.values()
                for _, value in items), default=0.0) or 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group_index, (group, items) in enumerate(groups.items()):
        if group_index:
            lines.append("")
        lines.append(f"{group}:")
        for label, value in items:
            bar_len = int(round(abs(value) / peak * width))
            bar = ("<" if value < 0 else "#") * bar_len
            lines.append(
                f"  {label:>{label_width}} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def series_chart(x_labels: Sequence[str],
                 series: Dict[str, Sequence[float]],
                 height: int = 12, title: Optional[str] = None) -> str:
    """A line chart: one printable column per x point, one mark per series.

    Marks are the first letter of each series name (uppercased
    alphabetically to keep them distinct); collisions render ``*``.
    """
    if not series:
        raise ValueError("nothing to chart")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("series lengths must match x_labels")

    marks = {}
    used = set()
    for name in sorted(series):
        mark = name[0].upper()
        while mark in used:
            mark = chr(ord(mark) + 1) if mark < "Z" else "*"
            if mark == "*":
                break
        used.add(mark)
        marks[name] = mark

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    col_width = max(len(label) for label in x_labels) + 2

    def row_of(value: float) -> int:
        return int(round((value - lo) / (hi - lo) * (height - 1)))

    grid = [[" "] * (len(x_labels) * col_width) for _ in range(height)]
    for name, values in series.items():
        for i, value in enumerate(values):
            row = height - 1 - row_of(value)
            col = i * col_width + col_width // 2
            cell = grid[row][col]
            grid[row][col] = marks[name] if cell == " " else "*"

    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for i, row in enumerate(grid):
        edge_value = hi - (hi - lo) * i / (height - 1)
        lines.append(f"{edge_value:8.1f} |" + "".join(row))
    axis = " " * 9 + "+" + "-" * (len(x_labels) * col_width)
    lines.append(axis)
    labels_line = " " * 10 + "".join(
        label.center(col_width) for label in x_labels)
    lines.append(labels_line)
    legend = "  ".join(f"{mark}={name}" for name, mark in sorted(
        marks.items()))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
