"""Tiny JSON result cache so repeated sweeps don't recompute runs."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple


class ResultCache:
    """Disk + memory cache of simulation statistics keyed by config hash."""

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get(
                "REPRO_CACHE_DIR",
                str(Path(__file__).resolve().parents[3] / ".simcache"))
        self.directory = Path(directory)
        self._memory: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> Optional[Tuple[dict, str]]:
        """Resolve *key* to ``(value, source)``; source is "memory" or
        "disk" (the first disk hit promotes the value to memory)."""
        if key in self._memory:
            self.hits += 1
            return self._memory[key], "memory"
        path = self._path(key)
        if path.is_file():
            try:
                with open(path) as handle:
                    value = json.load(handle)
            except (OSError, ValueError):
                return None
            self._memory[key] = value
            self.hits += 1
            return value, "disk"
        self.misses += 1
        return None

    def get(self, key: str) -> Optional[dict]:
        found = self.lookup(key)
        return None if found is None else found[0]

    def put(self, key: str, value: dict, disk: bool = True) -> None:
        self._memory[key] = value
        if not disk:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                       suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(value, handle)
            os.replace(tmp, self._path(key))
        except OSError:
            pass  # disk cache is best-effort; memory cache still holds it
