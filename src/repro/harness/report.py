"""Fixed-width text tables for experiment output.

Every benchmark prints the rows/series the paper's figures plot, using
these helpers, so `pytest benchmarks/ --benchmark-only -s` regenerates
the evaluation as readable text.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def render_json(payload: Any) -> str:
    """Stable JSON for ``--json`` CLI output: sorted keys, indented,
    non-serialisable values stringified."""
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render a fixed-width table with a rule under the header."""
    text_rows: List[List[str]] = [[format_cell(c, precision) for c in row]
                                  for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    for row in text_rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def size_label(size) -> str:
    """Render a structure-size sweep point ('inf' for unlimited)."""
    return "inf" if size is None else str(size)


def _render_summary_groups(groups: dict, label: str,
                           title: Optional[str]) -> str:
    """One aggregate row per group (``store.summarize`` shape).

    Policy groups carrying an ``ed2p_pct`` (the mean ED2P delta vs the
    ltp baseline) get an extra column; rows without one — the baseline
    itself, or no comparable rows — render '-'.
    """
    with_ed2p = any("ed2p_pct" in data for data in groups.values())
    rows = [[name, data["points"], data["mean_cpi"],
             data["geomean_ipc"], data["mean_cycles"]]
            + ([data.get("ed2p_pct")] if with_ed2p else [])
            for name, data in groups.items()]
    headers = [label, "points", "mean CPI", "geomean IPC", "mean cycles"]
    if with_ed2p:
        headers.append("ED2P vs ltp %")
    return render_table(headers, rows, precision=3, title=title)


def render_sweep_summary(summary: dict, title: Optional[str] = None) -> str:
    """Render a :func:`repro.api.store.summarize` payload as a table.

    One row per workload (points, mean CPI, geomean IPC, mean cycles),
    preceded by the sweep's point/simulated counts.  Sweeps spanning
    more than one allocation policy (``summarize`` adds a
    ``"policies"`` section for those) get a per-policy breakdown table
    appended, plus a grouped bar chart of per-workload mean CPI keyed
    by the ``policy`` axis when the per-policy entries carry workload
    breakdowns.
    """
    counts = (f"{summary['points']} points "
              f"({summary['simulated']} simulated, "
              f"{summary['points'] - summary['simulated']} from "
              f"cache/store)")
    parts = [counts,
             _render_summary_groups(summary["workloads"], "workload",
                                    title)]
    policies = summary.get("policies")
    if policies:
        parts.append(_render_summary_groups(policies, "policy",
                                            "By allocation policy"))
        groups = {
            policy: [(workload, agg["mean_cpi"])
                     for workload, agg in data["workloads"].items()]
            for policy, data in policies.items()
            if data.get("workloads")
        }
        if groups:
            from repro.harness.charts import grouped_bar_chart
            parts.append(grouped_bar_chart(
                groups, title="Mean CPI by policy"))
    return "\n".join(parts)
