"""Pipeline tests: branch handling and resource-limit behaviour."""

from repro.core.params import CoreParams
from repro.core.pipeline import Pipeline

from tests.conftest import make_trace


def run(asm, max_insts=500, params=None, memory=None, int_regs=None):
    trace = make_trace(asm, max_insts=max_insts, memory=memory,
                       int_regs=int_regs)
    pipeline = Pipeline(trace, params=params or CoreParams())
    return pipeline, pipeline.run()


def test_predictable_loop_has_no_mispredicts():
    _, stats = run("""
        li r1, 0
        li r2, 100
    loop:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """, max_insts=400)
    # the final not-taken exit may mispredict; the body must not
    assert stats.branch_mispredicts <= 2


def test_random_branches_mispredict_and_cost_cycles():
    # branch direction depends on a pseudo-random bit
    asm = """
        li r1, 0
        li r2, 60
        li r3, 1103515245
        li r4, 12345
        li r6, 1
    loop:
        mul r5, r7, r3
        add r7, r5, r4
        srli r5, r7, 16
        and  r5, r5, r6
        beqz r5, skip
        addi r8, r8, 1
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    _, stats = run(asm, max_insts=600)
    assert stats.branch_mispredicts > 5


def test_mispredict_penalty_slows_execution():
    body = """
        mul r5, r7, r3
        add r7, r5, r4
        srli r5, r7, 16
        and  r5, r5, r6
        beqz r5, skip
        addi r8, r8, 1
    skip:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """
    asm = ("li r1, 0\nli r2, 60\nli r3, 1103515245\nli r4, 12345\n"
           "li r6, 1\nloop:\n" + body)
    fast_params = CoreParams(mispredict_penalty=0)
    slow_params = CoreParams(mispredict_penalty=40)
    p1, stats_fast = run(asm, params=fast_params, max_insts=600)
    p2, stats_slow = run(asm, params=slow_params, max_insts=600)
    assert stats_slow.cycles > stats_fast.cycles


def test_rob_limits_window():
    """A tiny ROB caps how many misses can overlap."""
    lines = ["li r1, 0x100000", "li r9, 0", "li r10, 10", "loop:"]
    for i in range(6):
        lines.append(f"ld r{2 + i}, r1, 0")
        lines.append("addi r1, r1, 0x100000")
    lines += ["addi r9, r9, 1", "blt r9, r10, loop", "halt"]
    asm = "\n".join(lines)
    big = CoreParams(rob_size=256, iq_size=None, lq_size=None, sq_size=None)
    small = CoreParams(rob_size=8, iq_size=None, lq_size=None, sq_size=None)
    big.mem.mshrs = None
    small.mem.mshrs = None
    _, stats_big = run(asm, params=big)
    _, stats_small = run(asm, params=small)
    assert stats_small.cycles > stats_big.cycles * 1.5


def test_lq_limits_loads_in_flight():
    lines = ["li r1, 0x100000", "li r9, 0", "li r10, 12", "loop:"]
    for i in range(4):
        lines.append(f"ld r{2 + i}, r1, 0")
        lines.append("addi r1, r1, 0x100000")
    lines += ["addi r9, r9, 1", "blt r9, r10, loop", "halt"]
    asm = "\n".join(lines)
    wide = CoreParams(lq_size=None, iq_size=None, sq_size=None)
    narrow = CoreParams(lq_size=2, iq_size=None, sq_size=None)
    wide.mem.mshrs = None
    narrow.mem.mshrs = None
    _, stats_wide = run(asm, params=wide)
    _, stats_narrow = run(asm, params=narrow)
    assert stats_narrow.cycles > stats_wide.cycles
    assert stats_narrow.occupancies["lq"].peak <= 2


def test_register_limit_stalls_rename():
    # long chain of integer definitions with a slow anchor at the head
    lines = ["li r1, 0x100000", "ld r2, r1, 0"]
    for i in range(40):
        lines.append(f"addi r{3 + (i % 20)}, r2, {i}")
    lines.append("halt")
    asm = "\n".join(lines)
    tight = CoreParams(int_regs=4, fp_regs=4, iq_size=None)
    roomy = CoreParams(int_regs=None, fp_regs=None, iq_size=None)
    _, stats_tight = run(asm, params=tight)
    _, stats_roomy = run(asm, params=roomy)
    assert stats_tight.stall_regs > 0
    assert stats_tight.cycles >= stats_roomy.cycles
    assert stats_tight.occupancies["rf_int"].peak <= 4


def test_sq_limit_respected():
    lines = ["li r1, 0x200000", "li r2, 1", "li r9, 0", "li r10, 20",
             "loop:"]
    for i in range(4):
        lines.append(f"st r2, r1, {8 * i}")
    lines += ["addi r1, r1, 64", "addi r9, r9, 1", "blt r9, r10, loop",
              "halt"]
    asm = "\n".join(lines)
    params = CoreParams(sq_size=2)
    pipeline, stats = run(asm, params=params)
    assert stats.occupancies["sq"].peak <= 2
    assert stats.committed_stores == 80


def test_stall_attribution_counters_exist():
    # a DRAM miss blocks commit while the tiny ROB fills behind it
    _, stats = run("""
        li r1, 0x300000
        ld r2, r1, 0
        li r3, 0
        li r4, 80
    loop:
        addi r3, r3, 1
        blt r3, r4, loop
        halt
    """, params=CoreParams(rob_size=8))
    assert stats.stall_rob > 0
