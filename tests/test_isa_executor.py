"""Unit tests for the functional executor (architectural semantics)."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.executor import ExecutionError, Executor, Memory, trace_of

from tests.conftest import make_trace


def run_regs(asm, max_insts=500, **kwargs):
    program = assemble(asm)
    executor = Executor(program, **kwargs)
    list(executor.run(max_insts))
    return executor


def test_memory_word_granularity():
    mem = Memory()
    mem.store(0x100, 42)
    assert mem.load(0x100) == 42
    assert mem.load(0x104) == 42  # same 8-byte word
    assert mem.load(0x108) == 0


def test_memory_negative_address_raises():
    mem = Memory()
    with pytest.raises(ExecutionError):
        mem.load(-8)


def test_alu_basics():
    ex = run_regs("""
        li r1, 6
        li r2, 7
        mul r3, r1, r2
        add r4, r3, r1
        sub r5, r4, r2
        halt
    """)
    assert ex.regs["r3"] == 42
    assert ex.regs["r4"] == 48
    assert ex.regs["r5"] == 41


def test_shifts_and_masks():
    ex = run_regs("""
        li r1, 0xF0
        srli r2, r1, 4
        slli r3, r2, 2
        andi r4, r1, 0x30
        halt
    """)
    assert ex.regs["r2"] == 0x0F
    assert ex.regs["r3"] == 0x3C
    assert ex.regs["r4"] == 0x30


def test_division_semantics():
    ex = run_regs("""
        li r1, 7
        li r2, 2
        div r3, r1, r2
        li r4, 0
        div r5, r1, r4
        rem r6, r1, r2
        halt
    """)
    assert ex.regs["r3"] == 3
    assert ex.regs["r5"] == 0  # div-by-zero yields 0 by definition
    assert ex.regs["r6"] == 1


def test_loads_and_stores():
    ex = run_regs("""
        li r1, 0x1000
        li r2, 99
        st r2, r1, 8
        ld r3, r1, 8
        halt
    """)
    assert ex.regs["r3"] == 99
    assert ex.memory.load(0x1008) == 99


def test_indexed_load():
    mem = Memory({0x2010: 7})
    ex = run_regs("""
        li r1, 0x2000
        li r2, 2
        ldx r3, r1, r2
        halt
    """, memory=mem)
    assert ex.regs["r3"] == 7


def test_branch_taken_and_fallthrough():
    trace = make_trace("""
        li r1, 0
        li r2, 3
    loop:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    """)
    branches = [d for d in trace if d.is_branch]
    assert [d.taken for d in branches] == [True, True, False]


def test_trace_producers_track_dataflow():
    trace = make_trace("""
        li r1, 1
        li r2, 2
        add r3, r1, r2
        add r4, r3, r3
        halt
    """)
    assert trace[2].src_producers == (0, 1)
    assert trace[3].src_producers == (2, 2)


def test_initial_state_producer_is_minus_one():
    trace = make_trace("add r3, r1, r2", max_insts=1)
    assert trace[0].src_producers == (-1, -1)


def test_store_value_recorded():
    trace = make_trace("""
        li r1, 0x4000
        li r2, 17
        st r2, r1, 0
        halt
    """)
    store = next(d for d in trace if d.is_store)
    assert store.store_value == 17
    assert store.addr == 0x4000


def test_next_pc_chaining():
    trace = make_trace("""
        li r1, 1
        beqz r1, skip
        addi r1, r1, 1
    skip:
        halt
    """)
    for prev, cur in zip(trace, trace[1:]):
        assert prev.next_pc == cur.pc


def test_run_respects_budget():
    trace = make_trace("""
    loop:
        addi r1, r1, 1
        j loop
    """, max_insts=50)
    assert len(trace) == 50


def test_halt_stops_execution():
    trace = make_trace("""
        nop
        halt
        nop
    """, max_insts=100)
    assert len(trace) == 2
    assert trace[-1].inst.is_halt


def test_pointer_chase_follows_memory():
    # node at 0x1000 -> 0x2000 -> 0x3000
    mem = Memory({0x1000: 0x2000, 0x2000: 0x3000})
    ex = Executor(assemble("""
        ld r1, r1, 0
        ld r1, r1, 0
        halt
    """), memory=mem, int_regs={"r1": 0x1000})
    trace = list(ex.run(10))
    assert trace[0].addr == 0x1000
    assert trace[1].addr == 0x2000
    assert ex.regs["r1"] == 0x3000


def test_trace_of_convenience():
    program = assemble("li r1, 1\nhalt")
    trace = trace_of(program, 10)
    assert len(trace) == 2


def test_seq_numbers_are_dense():
    trace = make_trace("""
    loop:
        addi r1, r1, 1
        j loop
    """, max_insts=20)
    assert [d.seq for d in trace] == list(range(20))


def test_values_wrap_to_64_bits():
    ex = run_regs("""
        li r1, 1
        slli r2, r1, 63
        slli r3, r2, 1
        halt
    """)
    assert ex.regs["r2"] == -(1 << 63)
    assert ex.regs["r3"] == 0
