"""Tests for the WIB-style configuration and wakeup-policy ablation."""

import pytest

from repro.core.pipeline import Pipeline
from repro.ltp.config import LTPConfig, limit_ltp, wib_ltp
from repro.ltp.controller import LTPController
from repro.ltp.oracle import annotate_trace

from tests.test_pipeline_ltp import miss_trace, run_with_ltp, small_core


def test_wib_config_shape():
    config = wib_ltp()
    assert not config.defer_registers
    assert config.mode == "nr"
    assert config.enabled


def test_wakeup_policy_validation():
    with pytest.raises(ValueError):
        LTPConfig(wakeup_policy="random").validate()
    LTPConfig(wakeup_policy="eager").validate()


def test_wib_parks_and_completes():
    trace = miss_trace()
    _, stats = run_with_ltp(trace, small_core(), wib_ltp())
    assert stats.ltp_parked > 0
    assert stats.committed == len(trace)


def test_wib_allocates_registers_at_rename():
    """Unlike LTP, WIB-parked instructions hold registers while parked."""
    trace = miss_trace(iters=40)
    core = small_core()
    oracle = annotate_trace(trace, core.mem, window=64)

    def run(ltp):
        controller = LTPController(ltp, core.mem.dram_latency,
                                   oracle=oracle)
        pipeline = Pipeline(trace, params=core, ltp=ltp,
                            controller=controller)
        return pipeline.run()

    wib_stats = run(wib_ltp())
    ltp_stats = run(limit_ltp("nr").but(monitor="on", park_loads=False,
                                        park_stores=False))
    # with deferred allocation, average register occupancy must be lower
    wib_regs = (wib_stats.average_occupancy("rf_int")
                + wib_stats.average_occupancy("rf_fp"))
    ltp_regs = (ltp_stats.average_occupancy("rf_int")
                + ltp_stats.average_occupancy("rf_fp"))
    assert ltp_regs < wib_regs


def test_wib_relieves_iq_pressure():
    trace = miss_trace()
    _, stats_no = run_with_ltp(trace, small_core(),
                               ltp=None)
    _, stats_wib = run_with_ltp(trace, small_core(), wib_ltp())
    assert stats_wib.cycles <= stats_no.cycles


def test_eager_wakeup_still_correct():
    trace = miss_trace()
    ltp = limit_ltp("nu").but(monitor="on", wakeup_policy="eager",
                              park_loads=False, park_stores=False)
    _, stats = run_with_ltp(trace, small_core(), ltp)
    assert stats.committed == len(trace)
    assert stats.ltp_parked > 0


def test_late_wakeup_wins_at_scarce_registers():
    """Section 3.2's argument: eager wakeup re-allocates registers long
    before commit, so with a small register file it loses performance."""
    trace = miss_trace(iters=60)
    core = small_core()
    core.iq_size = None
    core.int_regs = 24
    core.fp_regs = 24
    base = limit_ltp("nu").but(monitor="on", park_loads=False,
                               park_stores=False)
    _, late = run_with_ltp(trace, core, base)
    _, eager = run_with_ltp(trace, core, base.but(wakeup_policy="eager"))
    assert late.cycles <= eager.cycles
