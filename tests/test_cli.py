"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.harness.config import SimConfig


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_command():
    code, text = run_cli(["list"])
    assert code == 0
    assert "indirect_fig2" in text
    assert "mlp_sensitive" in text
    assert "milc" in text


def test_run_command_baseline():
    code, text = run_cli(["run", "compute_int", "--warmup", "200",
                          "--measure", "200", "--no-cache"])
    assert code == 0
    assert "CPI" in text
    assert "compute_int" in text


def test_run_command_with_ltp_and_overrides():
    code, text = run_cli(["run", "sparse_gather", "--core", "small",
                          "--ltp", "limit-nrnu", "--iq", "16",
                          "--warmup", "400", "--measure", "300",
                          "--no-cache"])
    assert code == 0
    assert "instructions parked" in text


def test_run_command_alias():
    code, text = run_cli(["run", "milc", "--warmup", "200",
                          "--measure", "200", "--no-cache"])
    assert code == 0
    assert "milc" in text


def test_classify_command():
    code, text = run_cli(["classify", "indirect_fig2", "--insts", "1500"])
    assert code == 0
    assert "U+R" in text
    assert "NU+NR" in text


def test_experiment_command_table1():
    code, text = run_cli(["experiment", "table1"])
    assert code == 0
    assert "3.4 GHz" in text


def test_experiment_command_fig2():
    code, text = run_cli(["experiment", "fig2"])
    assert code == 0
    assert "Figure 2" in text


def test_run_json_emits_simresult_payload():
    code, text = run_cli(["run", "compute_int", "--warmup", "200",
                          "--measure", "200", "--no-cache", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["stats"]["committed"] == 200
    assert payload["source"] == "simulated"
    assert payload["cached"] is False
    # the embedded config round-trips to the same cache key
    assert SimConfig.from_dict(payload["config"]).key() == payload["key"]


def test_experiment_json_emits_result_document():
    code, text = run_cli(["experiment", "table1", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["experiment"] == "table1"
    assert "3.4 GHz" in payload["result"]["baseline"]


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


# ----------------------------------------------------- discoverability
def test_experiment_list_names_and_descriptions():
    code, text = run_cli(["experiment", "--list"])
    assert code == 0
    for name in ("fig6", "headline", "policies", "table1"):
        assert name in text
    # one-line descriptions ride along
    assert "limit study" in text


def test_experiment_list_json():
    code, text = run_cli(["experiment", "--list", "--json"])
    assert code == 0
    payload = json.loads(text)
    names = [entry["name"] for entry in payload["experiments"]]
    assert "fig6" in names and "policies" in names
    assert all(entry["description"] for entry in payload["experiments"])


def test_experiment_without_name_or_list_errors():
    code, text = run_cli(["experiment"])
    assert code == 2
    assert "--list" in text


def test_sweep_list_presets():
    code, text = run_cli(["sweep", "--list-presets"])
    assert code == 0
    assert "ltp-queues" in text
    assert "policy-compare" in text
    assert "allocation policy" in text


def test_sweep_list_presets_json():
    code, text = run_cli(["sweep", "--list-presets", "--json"])
    assert code == 0
    payload = json.loads(text)
    names = [entry["name"] for entry in payload["presets"]]
    assert names == sorted(names)
    assert "policy-compare" in names
    assert all(entry["description"] for entry in payload["presets"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_cli(["run", "not_a_workload", "--no-cache"])


# -------------------------------------------------------------- sweep
SPEC_PAYLOAD = {
    "workloads": ["compute_int"],
    "axes": {"core.iq_size": [16, 32]},
    "warmup": 150, "measure": 120,
}


def write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_PAYLOAD))
    return path


def test_sweep_command_runs_spec_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)), "--json",
                          "--no-cache"])
    assert code == 0
    payload = json.loads(text)
    assert payload["points"] == 2
    assert payload["simulated"] == 2
    assert payload["shard"] is None
    assert payload["summary"]["workloads"]["compute_int"]["points"] == 2
    assert len(payload["results"]) == 2


def test_sweep_command_shard_store_resume_merge(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    shard_args = []
    for index in range(2):
        store = tmp_path / f"shard{index}.jsonl"
        code, text = run_cli(["sweep", str(spec), "--no-cache",
                              "--shard", f"{index}/2",
                              "--store", str(store), "--json"])
        assert code == 0
        shard_args.append(str(store))
    merged = tmp_path / "merged.jsonl"
    code, text = run_cli(["sweep", "--merge", *shard_args,
                          "--store", str(merged), "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["points"] == 2
    # resuming from the merged store simulates nothing
    code, text = run_cli(["sweep", str(spec), "--no-cache", "--resume",
                          "--store", str(merged), "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["simulated"] == 0
    assert payload["from_store"] == 2


def test_sweep_merge_validates_named_spec(tmp_path, monkeypatch):
    """SPEC alongside --merge binds the merged store to that sweep."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    store = tmp_path / "shard.jsonl"
    assert run_cli(["sweep", str(spec), "--no-cache", "--shard", "0/2",
                    "--store", str(store)])[0] == 0
    # matching spec: merge succeeds
    assert run_cli(["sweep", str(spec), "--merge", str(store),
                    "--store", str(tmp_path / "ok.jsonl")])[0] == 0
    # different spec: the merge is refused
    other = tmp_path / "other.json"
    other.write_text(json.dumps({**SPEC_PAYLOAD, "measure": 130}))
    with pytest.raises(ValueError, match="belongs to sweep"):
        run_cli(["sweep", str(other), "--merge", str(store),
                 "--store", str(tmp_path / "bad.jsonl")])


def test_sweep_command_table_output(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache"])
    assert code == 0
    assert "2 points (2 simulated" in text
    assert "compute_int" in text


def test_sweep_command_refuses_existing_store_without_resume(
        tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    store = tmp_path / "store.jsonl"
    assert run_cli(["sweep", str(spec), "--store", str(store),
                    "--no-cache"])[0] == 0
    code, text = run_cli(["sweep", str(spec), "--store", str(store),
                          "--no-cache"])
    assert code == 2
    assert "--resume" in text


def test_sweep_command_argument_errors(tmp_path):
    code, text = run_cli(["sweep"])
    assert code == 2 and "SPEC" in text
    code, text = run_cli(["sweep", "--merge", "x.jsonl"])
    assert code == 2 and "--store" in text
    code, text = run_cli(["sweep", str(tmp_path / "spec.json"),
                          "--resume"])
    assert code == 2 and "--store" in text
    with pytest.raises(ValueError, match="neither a JSON file nor"):
        run_cli(["sweep", "no-such-preset"])
    with pytest.raises(SystemExit):  # argparse rejects bad shards
        run_cli(["sweep", "x.json", "--shard", "4/4"])


def test_sweep_preset_resolves(tmp_path, monkeypatch):
    """Preset names expand without a spec file (shard keeps it tiny)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.harness.experiments import sweep_preset
    spec = sweep_preset("ltp-queues")
    assert len(spec) == 90  # 15 workloads x 3 IQ sizes x LTP on/off
    assert len(spec.workloads) == 15


def test_sweep_coordinate_matches_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    serial_store = tmp_path / "serial.jsonl"
    code, _ = run_cli(["sweep", str(spec), "--no-cache",
                       "--store", str(serial_store)])
    assert code == 0
    coord_store = tmp_path / "coordinated.jsonl"
    code, text = run_cli(["sweep", str(spec), "--no-cache",
                          "--coordinate", "--shards", "2", "--jobs", "2",
                          "--store", str(coord_store), "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["points"] == 2
    assert payload["coordinate"]["shards"] == 2
    assert sum(payload["coordinate"]["per_shard"]) == 2
    # the lifecycle-event log rides the JSON document
    kinds = [event["kind"] for event in payload["events"]]
    assert kinds.count("submitted") == 2
    assert kinds.count("finished") == 2
    from repro.api import ResultStore
    with ResultStore(serial_store) as a, ResultStore(coord_store) as b:
        left, right = a.load(), b.load()
        assert set(left) == set(right)
        assert all(left[key].stats == right[key].stats for key in left)


def test_sweep_coordinate_table_reports_shards(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache", "--coordinate", "--shards", "2"])
    assert code == 0
    assert "coordinated 2 shards" in text


def test_sweep_coordinate_rejects_shard_flag(tmp_path):
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--coordinate", "--shard", "0/2"])
    assert code == 2
    assert "incompatible with --shard" in text


def test_sweep_progress_renders_line_updates(tmp_path, monkeypatch,
                                             capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache", "--progress"])
    assert code == 0
    progress = capsys.readouterr().err
    assert "[2/2]" in progress
    assert "finished" in progress


def test_sweep_budget_overrides_apply(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache", "--warmup", "100",
                          "--measure", "90", "--json"])
    assert code == 0
    payload = json.loads(text)
    configs = [row["config"] for row in payload["results"]]
    assert all(c["warmup"] == 100 and c["measure"] == 90
               for c in configs)


def test_sweep_shards_requires_coordinate(tmp_path):
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--shards", "4"])
    assert code == 2
    assert "--shards only applies to --coordinate" in text
