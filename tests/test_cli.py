"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.harness.config import SimConfig


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_command():
    code, text = run_cli(["list"])
    assert code == 0
    assert "indirect_fig2" in text
    assert "mlp_sensitive" in text
    assert "milc" in text


def test_run_command_baseline():
    code, text = run_cli(["run", "compute_int", "--warmup", "200",
                          "--measure", "200", "--no-cache"])
    assert code == 0
    assert "CPI" in text
    assert "compute_int" in text


def test_run_command_with_ltp_and_overrides():
    code, text = run_cli(["run", "sparse_gather", "--core", "small",
                          "--ltp", "limit-nrnu", "--iq", "16",
                          "--warmup", "400", "--measure", "300",
                          "--no-cache"])
    assert code == 0
    assert "instructions parked" in text


def test_run_command_alias():
    code, text = run_cli(["run", "milc", "--warmup", "200",
                          "--measure", "200", "--no-cache"])
    assert code == 0
    assert "milc" in text


def test_classify_command():
    code, text = run_cli(["classify", "indirect_fig2", "--insts", "1500"])
    assert code == 0
    assert "U+R" in text
    assert "NU+NR" in text


def test_experiment_command_table1():
    code, text = run_cli(["experiment", "table1"])
    assert code == 0
    assert "3.4 GHz" in text


def test_experiment_command_fig2():
    code, text = run_cli(["experiment", "fig2"])
    assert code == 0
    assert "Figure 2" in text


def test_run_json_emits_simresult_payload():
    code, text = run_cli(["run", "compute_int", "--warmup", "200",
                          "--measure", "200", "--no-cache", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["stats"]["committed"] == 200
    assert payload["source"] == "simulated"
    assert payload["cached"] is False
    # the embedded config round-trips to the same cache key
    assert SimConfig.from_dict(payload["config"]).key() == payload["key"]


def test_experiment_json_emits_result_document():
    code, text = run_cli(["experiment", "table1", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["experiment"] == "table1"
    assert "3.4 GHz" in payload["result"]["baseline"]


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_cli(["run", "not_a_workload", "--no-cache"])
