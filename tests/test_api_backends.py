"""Backend-equivalence: serial and process-pool execution must produce
identical statistics (the execution-mode-invariant signature and more)."""


from repro.api import ProcessPoolBackend, SerialBackend, Session
from repro.core.params import baseline_params, ltp_params
from repro.harness.config import SimConfig
from repro.ltp.config import limit_ltp, no_ltp

#: scalar statistics mirrored from SimStats.equivalence_signature();
#: occupancy integrals surface as avg_*/peak_* in the flattened dict
SIGNATURE_KEYS = (
    "cycles", "committed", "committed_loads", "committed_stores",
    "committed_branches", "fetched", "renamed", "issued",
    "branch_mispredicts", "memory_violations", "ltp_parked",
    "ltp_released", "ltp_enabled_cycles", "long_latency_loads",
    "iq_writes", "rf_reads", "rf_writes", "ltp_writes", "ltp_reads",
    "ipc",
)


def _configs():
    return [
        SimConfig(workload="compute_int", core=baseline_params(),
                  ltp=no_ltp(), warmup=200, measure=150),
        SimConfig(workload="stream_triad", core=baseline_params(),
                  ltp=no_ltp(), warmup=200, measure=150),
        SimConfig(workload="lattice_milc", core=ltp_params(),
                  ltp=limit_ltp("nu"), warmup=200, measure=150),
    ]


def _signature(stats: dict) -> dict:
    sig = {key: stats[key] for key in SIGNATURE_KEYS}
    sig.update({key: value for key, value in stats.items()
                if key.startswith(("avg_", "peak_"))})
    return sig


def test_serial_and_pool_backends_are_equivalent(tmp_path):
    serial = Session(cache_dir=str(tmp_path / "serial"),
                     backend=SerialBackend())
    pooled = Session(cache_dir=str(tmp_path / "pooled"),
                     backend=ProcessPoolBackend(jobs=2))
    serial_results = serial.run_many(_configs(), use_cache=False)
    pooled_results = pooled.run_many(_configs(), use_cache=False)
    for a, b in zip(serial_results, pooled_results):
        assert _signature(a.stats) == _signature(b.stats)
        assert a.stats == b.stats  # the full dict, not just the signature
        assert a.backend == "serial"
        assert b.backend == "process-pool"


def test_pool_backend_writes_the_sessions_cache_dir(tmp_path):
    session = Session(cache_dir=str(tmp_path / "pool"),
                      backend=ProcessPoolBackend(jobs=2))
    results = session.run_many(_configs())
    files = list((tmp_path / "pool").glob("*.json"))
    assert len(files) == len(_configs())
    # the parent re-inserted every worker result into its memory cache
    again = session.run_many(_configs())
    assert all(r.source == "memory" for r in again)
    assert [r.stats for r in again] == [r.stats for r in results]


def test_pool_backend_degrades_to_serial_for_single_item(tmp_path):
    session = Session(cache_dir=str(tmp_path))
    backend = ProcessPoolBackend(jobs=4)
    results = session.run_many(_configs()[:1], use_cache=False,
                               backend=backend)
    assert results[0]["committed"] == 150


def test_pool_jobs_one_runs_in_process(tmp_path):
    session = Session(cache_dir=str(tmp_path))
    backend = ProcessPoolBackend(jobs=1)
    results = session.run_many(_configs(), use_cache=False,
                               backend=backend)
    assert [r["workload"] for r in results] == \
        [c.workload for c in _configs()]


def test_backend_protocol_runtime_check():
    from repro.api import ExecutionBackend
    assert isinstance(SerialBackend(), ExecutionBackend)
    assert isinstance(ProcessPoolBackend(), ExecutionBackend)


def test_custom_executor_subclass_plugs_in(tmp_path):
    """A futures-style backend subclasses SerialBackend/ExecutorBackend."""

    class CountingExecutor(SerialBackend):
        name = "counting"

        def __init__(self):
            super().__init__()
            self.calls = 0

        def submit(self, item, shard=None):
            self.calls += 1
            return super().submit(item, shard=shard)

    backend = CountingExecutor()
    session = Session(cache_dir=str(tmp_path), backend=backend)
    results = session.run_many(_configs()[:2], use_cache=False)
    assert backend.calls == 2
    assert all(r.backend == "counting" for r in results)


def test_legacy_iterator_backend_plugs_in(tmp_path):
    """A bare `name` + `execute()` object still works (adapted, with a
    DeprecationWarning)."""
    import pytest

    class CountingBackend:
        name = "counting"

        def __init__(self):
            self.calls = 0

        def execute(self, session, items):
            self.calls += len(items)
            for index, config, use_cache in items:
                result = session.run(config, use_cache=use_cache)
                yield (index, result.stats, result.wall_time_s,
                       result.source)

    backend = CountingBackend()
    session = Session(cache_dir=str(tmp_path), backend=backend)
    with pytest.warns(DeprecationWarning,
                      match="iterator-style execution backends"):
        results = session.run_many(_configs()[:2], use_cache=False)
    assert backend.calls == 2
    assert all(r.backend == "counting" for r in results)
