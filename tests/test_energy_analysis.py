"""Tests for the energy/ED2P model and the analysis helpers."""

import pytest

from repro.analysis.aggregate import (arithmetic_mean, average_dicts,
                                      geometric_mean,
                                      mean_relative_performance)
from repro.analysis.mlp_class import SensitivityInputs, classify
from repro.core.params import baseline_params, ltp_params
from repro.energy.model import (compute_energy, relative_ed2p,
                                relative_performance)
from repro.ltp.config import no_ltp, proposed_ltp


def fake_result(cycles=1000, avg_iq=30.0, avg_rf_int=60.0, avg_rf_fp=60.0,
                avg_ltp=0.0, enabled=0.0):
    return {
        "cycles": cycles,
        "avg_iq": avg_iq,
        "avg_rf_int": avg_rf_int,
        "avg_rf_fp": avg_rf_fp,
        "avg_ltp": avg_ltp,
        "ltp_enabled_fraction": enabled,
    }


def test_smaller_structures_use_less_energy():
    base = compute_energy(baseline_params(), no_ltp(), fake_result())
    small = compute_energy(ltp_params(), no_ltp(), fake_result())
    assert small.iq < base.iq
    assert small.rf < base.rf
    assert small.total < base.total


def test_ltp_adds_structure_energy():
    without = compute_energy(ltp_params(), no_ltp(), fake_result())
    with_ltp = compute_energy(ltp_params(), proposed_ltp(),
                              fake_result(avg_ltp=40.0, enabled=1.0))
    assert with_ltp.ltp > 0
    assert with_ltp.uit > 0
    assert with_ltp.total > without.total


def test_power_gating_reduces_ltp_energy():
    on = compute_energy(ltp_params(), proposed_ltp(),
                        fake_result(avg_ltp=40.0, enabled=1.0))
    off = compute_energy(ltp_params(), proposed_ltp(),
                         fake_result(avg_ltp=0.0, enabled=0.0))
    assert off.ltp < on.ltp / 3


def test_ltp_config_beats_baseline_ed2p_at_equal_performance():
    """The core claim of Figure 10: IQ32/RF96 + LTP at ~equal cycles has
    far lower IQ/RF ED2P than the IQ64/RF128 baseline."""
    base = compute_energy(baseline_params(), no_ltp(),
                          fake_result(cycles=1000))
    ltp = compute_energy(ltp_params(), proposed_ltp(),
                         fake_result(cycles=1010, avg_ltp=40.0,
                                     enabled=0.95))
    delta = relative_ed2p(ltp, base)
    assert -55 < delta < -20


def test_ed2p_penalises_slowdown_cubically():
    """With constant per-cycle power, E ~ D, so ED2P ~ D^3."""
    base = compute_energy(baseline_params(), no_ltp(),
                          fake_result(cycles=1000))
    slow = compute_energy(baseline_params(), no_ltp(),
                          fake_result(cycles=2000))
    assert relative_ed2p(slow, base) == pytest.approx(700.0)


def test_relative_performance_sign():
    assert relative_performance(900, 1000) > 0    # faster than base
    assert relative_performance(1100, 1000) < 0   # slower than base
    assert relative_performance(1000, 1000) == 0.0


def test_energy_breakdown_total():
    breakdown = compute_energy(ltp_params(), proposed_ltp(),
                               fake_result(avg_ltp=10, enabled=0.5))
    assert breakdown.total == pytest.approx(
        breakdown.iq + breakdown.rf + breakdown.ltp + breakdown.uit)


# ------------------------------------------------------------ analysis
def test_means():
    assert arithmetic_mean([1, 2, 3]) == 2.0
    assert geometric_mean([1, 4]) == 2.0
    with pytest.raises(ValueError):
        arithmetic_mean([])
    with pytest.raises(ValueError):
        geometric_mean([0, 1])


def test_mean_relative_performance():
    # both runs 10% faster than their baselines -> +10%
    value = mean_relative_performance([90, 180], [99, 198])
    assert value == pytest.approx(10.0)
    with pytest.raises(ValueError):
        mean_relative_performance([1], [1, 2])


def test_average_dicts():
    merged = average_dicts([{"a": 1.0, "b": 2.0}, {"a": 3.0, "b": 4.0}])
    assert merged == {"a": 2.0, "b": 3.0}
    with pytest.raises(ValueError):
        average_dicts([{"a": 1}, {"b": 2}])


def test_sensitivity_rule_positive():
    verdict = classify(SensitivityInputs(
        cycles_small_iq=1200, cycles_large_iq=1000,
        outstanding_small_iq=5.0, outstanding_large_iq=7.0,
        avg_load_latency=50.0))
    assert verdict.sensitive
    assert verdict.speedup_pct == pytest.approx(20.0)
    assert verdict.outstanding_growth_pct == pytest.approx(40.0)


def test_sensitivity_rule_requires_all_three():
    # fast caches: latency below L2 -> insensitive even with speedup
    verdict = classify(SensitivityInputs(
        cycles_small_iq=1200, cycles_large_iq=1000,
        outstanding_small_iq=5.0, outstanding_large_iq=7.0,
        avg_load_latency=6.0))
    assert not verdict.sensitive
    # no speedup
    verdict = classify(SensitivityInputs(
        cycles_small_iq=1010, cycles_large_iq=1000,
        outstanding_small_iq=5.0, outstanding_large_iq=7.0,
        avg_load_latency=50.0))
    assert not verdict.sensitive
    # no outstanding growth
    verdict = classify(SensitivityInputs(
        cycles_small_iq=1200, cycles_large_iq=1000,
        outstanding_small_iq=5.0, outstanding_large_iq=5.2,
        avg_load_latency=50.0))
    assert not verdict.sensitive


def test_sensitivity_rejects_bad_input():
    with pytest.raises(ValueError):
        classify(SensitivityInputs(
            cycles_small_iq=0, cycles_large_iq=1000,
            outstanding_small_iq=1, outstanding_large_iq=1,
            avg_load_latency=10))
