"""Differential guarantees of the allocation-policy refactor.

Three layers of evidence that extracting the policy seam changed
nothing for the behaviors that existed before it:

1. **Tracked-cache bit-identity** — the repository tracks ``.simcache``
   result files recorded by the pre-seam pipeline.  Re-simulating those
   configurations fresh (isolated cache directory) must reproduce every
   statistic bit-for-bit, through the full session path.  This also
   proves cache-key stability: if adding ``SimConfig.policy`` had
   perturbed the key, the tracked files would simply not be found.
2. **Seam-wiring equivalence** — ``policy="ltp"`` /
   ``policy="baseline-stall"`` through the registry must equal the
   legacy explicit ``Pipeline(controller=...)`` wiring bit-for-bit
   over a config grid (workloads x LTP variants x queue sizes).
3. **Soundness of the whole policy space** — every registered policy,
   over random programs and random cores, runs deadlock-free,
   commits every instruction exactly once, respects structure
   capacities, drains its parking queue, and is invariant to
   idle-span jumping (strict vs. skip execution).
4. **Kernel-engine bit-identity** — the columnar struct-of-arrays
   engine (:class:`repro.core.kernel.KernelPipeline`) must reproduce
   the reference pipeline's full ``SimStats.as_dict()`` over the same
   grid, for the LTP policy, the baseline-stall policy, and the three
   learned/adaptive policies (model-park via the committed frozen
   artifact, confidence-park, loadpred-park).
"""

import json
import random
from pathlib import Path

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.api import Session
from repro.core.branch import GsharePredictor
from repro.core.params import baseline_params, ltp_params
from repro.core.pipeline import Pipeline
from repro.harness.runner import (get_oracle, get_trace,
                                  warm_branch_predictor, warm_hierarchy)
from repro.isa.assembler import assemble
from repro.isa.executor import Executor
from repro.ltp.config import limit_ltp, no_ltp, proposed_ltp
from repro.ltp.controller import LTPController
from repro.ltp.oracle import annotate_trace
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies import build_policy, policy_names, policy_needs_oracle
from repro.workloads import get_workload

from test_properties_pipeline import random_core, random_program

REPO_ROOT = Path(__file__).resolve().parents[1]
TRACKED_CACHE = REPO_ROOT / ".simcache"


# ================================================================
# 1. bit-identity against the tracked pre-seam result cache
# ================================================================
def tracked_headline_points():
    """Headline-sweep configs whose results the repository tracks."""
    from repro.harness.experiments import sweep_preset
    spec = sweep_preset("ltp-queues")
    return [config for config in spec.expand()
            if (TRACKED_CACHE / f"{config.key()}.json").is_file()]


def tracked_stats(config):
    with open(TRACKED_CACHE / f"{config.key()}.json") as handle:
        return json.load(handle)


def test_tracked_cache_exists_for_headline_sweep():
    """Key stability: pre-seam keys still resolve to tracked results."""
    points = tracked_headline_points()
    assert points, ("no tracked .simcache entry matches the headline "
                    "sweep — SimConfig.key() is no longer stable")


def test_fresh_simulation_reproduces_tracked_stats(tmp_path):
    """The refactored session path is bit-identical to the tracked
    (pre-policy-seam) results, LTP on and off."""
    points = tracked_headline_points()
    # LTP-off coverage: the tracked baseline runs of the headline
    # experiment (default budgets, baseline core)
    from repro.harness.config import SimConfig
    for name in ("lattice_milc", "ptrchase_astar", "stream_triad"):
        config = SimConfig(workload=name, core=baseline_params(),
                           ltp=no_ltp())
        if (TRACKED_CACHE / f"{config.key()}.json").is_file():
            points.append(config)
    enabled = [c for c in points if c.ltp.enabled]
    disabled = [c for c in points if not c.ltp.enabled]
    assert enabled and disabled, "need both LTP-on and LTP-off coverage"
    sample = enabled[:3] + disabled[:3]
    with Session(cache_dir=str(tmp_path)) as session:
        for config in sample:
            fresh = session.run(config, use_cache=False)
            assert fresh.stats == tracked_stats(config), \
                (config.workload, config.ltp.enabled)


def test_baseline_stall_matches_tracked_no_ltp_stats(tmp_path):
    """policy="baseline-stall" reproduces the pre-seam no-LTP machine
    bit-for-bit (same stats, distinct cache key)."""
    import dataclasses
    from repro.harness.config import SimConfig
    checked = 0
    with Session(cache_dir=str(tmp_path)) as session:
        for name in ("lattice_milc", "ptrchase_astar"):
            config = SimConfig(workload=name, core=baseline_params(),
                               ltp=no_ltp())
            if not (TRACKED_CACHE / f"{config.key()}.json").is_file():
                continue
            explicit = dataclasses.replace(config, policy="baseline-stall")
            assert explicit.key() != config.key()
            fresh = session.run(explicit, use_cache=False)
            assert fresh.stats == tracked_stats(config), name
            checked += 1
    assert checked, "no tracked no-LTP baseline point found"


# ================================================================
# 2. registry path == legacy explicit controller wiring
# ================================================================
def _legacy_stats(name, core, ltp, warmup, measure):
    """The pre-seam wiring: hand-built controller, explicit warmup."""
    total = warmup + measure
    trace = get_trace(name, total)
    workload = get_workload(name)
    oracle = (get_oracle(name, total, core, trace)
              if ltp.enabled else None)
    warmup_slice = trace[:warmup]
    hierarchy = MemoryHierarchy(core.mem)
    warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                   warm_regions=workload.warm_regions)
    bpred = GsharePredictor()
    warm_branch_predictor(bpred, warmup_slice)
    controller = LTPController(ltp, core.mem.dram_latency, oracle=oracle)
    if ltp.enabled and oracle is not None and warmup:
        controller.warm_from_trace(warmup_slice,
                                   oracle.long_latency[:warmup])
    pipeline = Pipeline(trace[warmup:], params=core, ltp=ltp,
                        controller=controller, hierarchy=hierarchy,
                        branch_predictor=bpred)
    return pipeline.run().equivalence_signature()


def _policy_stats(policy, name, core, ltp, warmup, measure):
    """The same run through the policy registry."""
    total = warmup + measure
    trace = get_trace(name, total)
    workload = get_workload(name)
    oracle = (get_oracle(name, total, core, trace)
              if policy_needs_oracle(policy, ltp) else None)
    warmup_slice = trace[:warmup]
    hierarchy = MemoryHierarchy(core.mem)
    warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                   warm_regions=workload.warm_regions)
    bpred = GsharePredictor()
    warm_branch_predictor(bpred, warmup_slice)
    built = build_policy(policy, ltp, core.mem.dram_latency, oracle=oracle)
    built.warm_from_trace(
        warmup_slice,
        oracle.long_latency[:warmup] if oracle is not None else None)
    pipeline = Pipeline(trace[warmup:], params=core, ltp=ltp,
                        policy=built, hierarchy=hierarchy,
                        branch_predictor=bpred)
    return pipeline.run().equivalence_signature()


GRID_WORKLOADS = ("lattice_milc", "ptrchase_astar", "stream_triad")
GRID_LTP = (
    ("off", no_ltp()),
    ("proposed", proposed_ltp()),
    ("proposed-16", proposed_ltp().but(entries=16, ports=2)),
    ("limit-nrnu", limit_ltp("nr+nu").but(park_loads=False,
                                          park_stores=False,
                                          monitor="auto")),
)


@pytest.mark.parametrize("workload", GRID_WORKLOADS)
@pytest.mark.parametrize("label,ltp", GRID_LTP, ids=[g[0] for g in GRID_LTP])
def test_ltp_policy_bit_identical_to_legacy_wiring(workload, label, ltp):
    legacy = _legacy_stats(workload, ltp_params(), ltp, 500, 400)
    seam = _policy_stats("ltp", workload, ltp_params(), ltp, 500, 400)
    mismatches = {key: (legacy[key], seam[key])
                  for key in legacy if legacy[key] != seam[key]}
    assert not mismatches, (workload, label, mismatches)


def test_baseline_stall_bit_identical_to_disabled_ltp():
    for workload in GRID_WORKLOADS:
        legacy = _legacy_stats(workload, baseline_params(), no_ltp(),
                               500, 400)
        seam = _policy_stats("baseline-stall", workload, baseline_params(),
                             no_ltp(), 500, 400)
        assert legacy == seam, workload


# ================================================================
# 3. every registered policy is sound
# ================================================================
def _policy_pipeline(policy_name, trace, core, ltp, allow_skip=True):
    oracle = None
    if policy_needs_oracle(policy_name, ltp):
        oracle = annotate_trace(trace, core.mem,
                                window=min(core.rob_size or 256, 256))
    policy = build_policy(policy_name, ltp, core.mem.dram_latency,
                          oracle=oracle)
    return Pipeline(trace, params=core, ltp=ltp, policy=policy,
                    allow_skip=allow_skip)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_every_policy_completes_and_conserves(seed):
    """Random program x random core x every registered policy:
    deadlock-free completion with the SimStats conservation
    invariants intact."""
    rng = random.Random(seed)
    asm = random_program(rng, n_body=rng.randrange(3, 8))
    trace = list(Executor(assemble(asm)).run(400))
    core = random_core(rng)
    ltp = proposed_ltp().but(entries=rng.choice([8, 32, 128]),
                             ports=rng.choice([1, 2, 4]))
    for name in policy_names():
        stats = _policy_pipeline(name, trace, core, ltp).run()
        assert stats.committed == len(trace), name
        assert stats.renamed == len(trace), name
        assert stats.ltp_parked == stats.ltp_released, name
        assert stats.occupancies["rob"].peak <= (core.rob_size or 1 << 30)
        assert stats.occupancies["iq"].peak <= (core.iq_size or 1 << 30)
        assert stats.occupancies["lq"].peak <= (core.lq_size or 1 << 30)
        assert stats.occupancies["sq"].peak <= (core.sq_size or 1 << 30)
        assert stats.occupancies["ltp"].peak <= (ltp.entries or 1 << 30)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=6, deadline=None)
def test_every_policy_skip_equivalent(seed):
    """Idle-span jumping must never change any policy's results (the
    policy event hints keep time-based wakeups exact)."""
    rng = random.Random(seed)
    asm = random_program(rng, n_body=rng.randrange(3, 8))
    trace = list(Executor(assemble(asm)).run(300))
    core = random_core(rng)
    ltp = proposed_ltp()
    for name in policy_names():
        fast = _policy_pipeline(name, trace, core, ltp,
                                allow_skip=True).run()
        slow = _policy_pipeline(name, trace, core, ltp,
                                allow_skip=False).run()
        fast_sig = fast.equivalence_signature()
        slow_sig = slow.equivalence_signature()
        mismatches = {key: (fast_sig[key], slow_sig[key])
                      for key in fast_sig if fast_sig[key] != slow_sig[key]}
        assert not mismatches, (name, mismatches)


# ================================================================
# 4. kernel engine == reference engine, full stats
# ================================================================
def _engine_stats(engine_cls, policy_name, name, core, ltp,
                  warmup, measure):
    """One run through *engine_cls*, full ``as_dict`` statistics."""
    total = warmup + measure
    trace = get_trace(name, total)
    workload = get_workload(name)
    needs = (policy_needs_oracle(policy_name, ltp)
             or ltp.classifier == "oracle" or ltp.ll_predictor == "oracle")
    oracle = get_oracle(name, total, core, trace) if needs else None
    warmup_slice = trace[:warmup]
    hierarchy = MemoryHierarchy(core.mem)
    warm_hierarchy(hierarchy, warmup_slice, len(workload.program),
                   warm_regions=workload.warm_regions)
    bpred = GsharePredictor()
    warm_branch_predictor(bpred, warmup_slice)
    policy = build_policy(policy_name, ltp, core.mem.dram_latency,
                          oracle=oracle)
    policy.warm_from_trace(
        warmup_slice,
        oracle.long_latency[:warmup] if oracle is not None else None)
    pipeline = engine_cls(trace[warmup:], params=core, ltp=ltp,
                          policy=policy, hierarchy=hierarchy,
                          branch_predictor=bpred)
    return pipeline.run().as_dict()


#: model-park exercises the committed frozen artifact (build_policy's
#: default-artifact fallback), so this grid also proves the example
#: model drives both engines identically.
ENGINE_GRID_POLICIES = ("ltp", "baseline-stall", "model-park",
                        "confidence-park", "loadpred-park")


@pytest.mark.parametrize("workload", GRID_WORKLOADS)
@pytest.mark.parametrize("label,ltp", GRID_LTP, ids=[g[0] for g in GRID_LTP])
def test_kernel_engine_bit_identical_to_reference(workload, label, ltp):
    """Every statistic the reference produces, the kernel reproduces."""
    from repro.core.kernel import KernelPipeline
    for policy_name in ENGINE_GRID_POLICIES:
        ref = _engine_stats(Pipeline, policy_name, workload,
                            ltp_params(), ltp, 500, 400)
        ker = _engine_stats(KernelPipeline, policy_name, workload,
                            ltp_params(), ltp, 500, 400)
        mismatches = {key: (ref[key], ker.get(key))
                      for key in ref if ref[key] != ker.get(key)}
        assert set(ref) == set(ker), (workload, label, policy_name)
        assert not mismatches, (workload, label, policy_name, mismatches)


def test_policies_skip_equivalent_on_real_workloads():
    ltp = proposed_ltp()
    for name in policy_names():
        for workload in ("lattice_milc", "sparse_gather"):
            core = ltp_params()
            full = get_trace(workload, 900)
            oracle = None
            if policy_needs_oracle(name, ltp):
                # annotate the FULL trace (producer seqs are absolute)
                oracle = annotate_trace(full, core.mem,
                                        window=min(core.rob_size or 256,
                                                   256))
            signatures = []
            for allow_skip in (True, False):
                policy = build_policy(name, ltp, core.mem.dram_latency,
                                      oracle=oracle)
                pipeline = Pipeline(full[300:], params=core, ltp=ltp,
                                    policy=policy, allow_skip=allow_skip)
                signatures.append(pipeline.run().equivalence_signature())
            assert signatures[0] == signatures[1], (name, workload)
