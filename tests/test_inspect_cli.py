"""The observability surface end to end: ``sweep --inspect``, the
``watch`` command, non-TTY progress rendering, and the daemon's
per-sweep inspector."""

import io
import json

from repro.api import (Annotation, MockExecutor, ResultStore,
                       SweepDaemon, SweepSpec)
from repro.api.exec import ExecEvent
from repro.cli import _ProgressReporter, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


SPEC_PAYLOAD = {
    "workloads": ["compute_int"],
    "axes": {"core.iq_size": [16, 32]},
    "warmup": 150, "measure": 120,
}


def write_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_PAYLOAD))
    return path


def event(kind, key="k0", workload="compute_int", index=0, **kwargs):
    return ExecEvent(kind=kind, key=key, workload=workload,
                     index=index, **kwargs)


# --------------------------------------------------- progress reporter
def test_progress_degrades_to_plain_lines_off_tty():
    stream = io.StringIO()  # no isatty -> non-TTY path
    reporter = _ProgressReporter(stream=stream, clock=lambda: 0.0)
    reporter(event("submitted"))
    reporter(event("started"))
    reporter(event("finished", wall_time_s=0.5))
    reporter.close()
    text = stream.getvalue()
    assert "\r" not in text  # no carriage-return spam in CI logs
    # only the terminal event makes a line, with the running counter
    lines = [line for line in text.splitlines() if line]
    assert lines == ["[1/1] finished compute_int"]


def test_progress_plain_lines_carry_counts_and_anomalies():
    stream = io.StringIO()
    reporter = _ProgressReporter(stream=stream, clock=lambda: 0.0)
    for index in range(2):
        reporter(event("submitted", key=f"k{index}", index=index))
    reporter(event("retried", error="boom"))
    reporter(event("finished"))
    reporter(event("anomaly", error="invariant: committed=207"))
    reporter(event("failed", key="k1", index=1, error="dead"))
    lines = [line for line in stream.getvalue().splitlines() if line]
    assert lines[0].startswith("[1/2] finished compute_int "
                               "(retried: 1)")
    assert "(anomalies: 1) [invariant: committed=207]" in lines[1]
    assert lines[2].startswith("[2/2] failed compute_int (failed: 1)")


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


def test_progress_renders_live_line_and_shard_throughput_on_tty():
    clock_value = [0.0]
    stream = _TtyStream()
    reporter = _ProgressReporter(stream=stream,
                                 clock=lambda: clock_value[0])
    for index in range(2):
        reporter(event("submitted", key=f"k{index}", index=index,
                       shard=0))
    reporter(event("started", shard=0))
    clock_value[0] = 2.0
    reporter(event("finished", shard=0))
    reporter(event("anomaly", error="outlier: ipc=2 vs median 1"))
    reporter.close()
    text = stream.getvalue()
    assert "\r" in text  # live single-line refresh
    assert "ETA" in text  # 1 of 2 done, rate known -> projected finish
    assert "shard throughput: s0:" in text
    assert "anomaly: outlier: ipc=2 vs median 1" in text


# ------------------------------------------------------ sweep --inspect
def test_sweep_inspect_reports_clean_run(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache", "--inspect"])
    assert code == 0
    assert "inspector: 2 result(s) validated, no anomalies" in text


def test_sweep_inspect_json_carries_the_summary(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--no-cache", "--inspect", "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["inspector"]["observed"] == 2
    assert payload["inspector"]["anomalies"] == []


def test_sweep_inspect_refuses_daemon_mode(tmp_path):
    code, text = run_cli(["sweep", str(write_spec(tmp_path)),
                          "--daemon", "127.0.0.1:1", "--inspect"])
    assert code == 2
    assert "repro serve --inspect" in text


def test_quarantined_point_reruns_via_resume(tmp_path, monkeypatch):
    """An annotation in the store drives `sweep --resume` re-runs."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    store_path = tmp_path / "store.jsonl"
    assert run_cli(["sweep", str(spec), "--no-cache",
                    "--store", str(store_path)])[0] == 0
    with ResultStore(store_path) as store:
        suspect = store.keys()[0]
        store.annotate(Annotation(key=suspect, check="outlier",
                                  detail="ipc drift",
                                  workload="compute_int"))
    code, text = run_cli(["sweep", str(spec), "--no-cache", "--resume",
                          "--store", str(store_path), "--inspect",
                          "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["simulated"] == 1  # exactly the quarantined point
    assert payload["from_store"] == 1
    # the re-run landed clean: quarantine lifted, store healed
    assert payload["inspector"]["quarantined"] == []
    with ResultStore(store_path) as store:
        assert store.quarantined_keys() == []
    # watch shows the lifted quarantine as history, not state
    code, text = run_cli(["watch", str(store_path)])
    assert code == 0
    assert " healed " in text
    assert "point(s) quarantined" not in text


# --------------------------------------------------------------- watch
def test_watch_renders_store_and_annotations(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = write_spec(tmp_path)
    store_path = tmp_path / "store.jsonl"
    assert run_cli(["sweep", str(spec), "--no-cache",
                    "--store", str(store_path)])[0] == 0
    code, text = run_cli(["watch", str(store_path)])
    assert code == 0
    assert "compute_int" in text
    assert "no anomaly annotations" in text

    with ResultStore(store_path) as store:
        store.annotate(Annotation(key=store.keys()[0], check="outlier",
                                  detail="ipc drift",
                                  workload="compute_int"))
    code, text = run_cli(["watch", str(store_path)])
    assert code == 0
    assert "1 anomaly annotation(s)" in text
    assert "quarantined" in text
    assert "a resumed sweep re-runs exactly them" in text


def test_watch_json_snapshot(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    store_path = tmp_path / "store.jsonl"
    assert run_cli(["sweep", str(write_spec(tmp_path)), "--no-cache",
                    "--store", str(store_path)])[0] == 0
    code, text = run_cli(["watch", str(store_path), "--json"])
    assert code == 0
    payload = json.loads(text)
    assert payload["points"] == 2
    assert payload["quarantined"] == []
    assert payload["annotations"] == []
    assert payload["summary"]["workloads"]["compute_int"]["points"] == 2


def test_watch_follow_stops_at_point_target(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    store_path = tmp_path / "store.jsonl"
    assert run_cli(["sweep", str(write_spec(tmp_path)), "--no-cache",
                    "--store", str(store_path)])[0] == 0
    code, text = run_cli(["watch", str(store_path), "--follow",
                          "--points", "2", "--interval", "0.01"])
    assert code == 0
    assert "[2 points]" in text  # the poll line
    assert "compute_int" in text  # the final rendered summary


def test_watch_missing_store_errors(tmp_path):
    code, text = run_cli(["watch", str(tmp_path / "absent.jsonl")])
    assert code == 2
    assert "does not exist" in text


# -------------------------------------------------------------- daemon
class _TamperingMock(MockExecutor):
    """Corrupt the stats of every config matching *predicate*."""

    def __init__(self, predicate, **kwargs):
        super().__init__(**kwargs)
        self.predicate = predicate

    def _fabricate(self, future):
        stats = super()._fabricate(future)
        if self.predicate(future.config):
            stats["committed"] += 7  # break measure-window conservation
        return stats


def drain(daemon):
    while True:
        batch = daemon._collect_batch()
        if not batch:
            return
        daemon._run_batch(batch)


def test_daemon_inspects_and_streams_anomalies(tmp_path):
    spec = SweepSpec(workloads=["compute_int"], warmup=150, measure=100,
                     axes={"core.iq_size": [16, 32, 48, 64]})
    tampered = _TamperingMock(lambda config: config.core.iq_size == 32)
    daemon = SweepDaemon(executor=tampered, listen=False,
                         store_dir=str(tmp_path), inspect=True)
    frames = []
    job = daemon.submit(spec, use_cache=False, sink=frames.append)
    drain(daemon)
    assert job.done.is_set()

    anomalies = [frame["event"] for frame in frames
                 if frame["op"] == "event"
                 and frame["event"]["kind"] == "anomaly"]
    assert len(anomalies) == 1
    assert "invariant" in anomalies[0]["error"]
    done = [frame for frame in frames if frame["op"] == "done"][-1]
    assert done["anomalies"] == 1
    assert done["quarantined"] == 1

    # the verdict is durable in the daemon's own per-sweep store
    store = ResultStore.for_sweep(tmp_path, job.sweep_id)
    assert len(store.quarantined_keys()) == 1
    bad_key = store.quarantined_keys()[0]
    assert store.get(bad_key).config.core.iq_size == 32
    daemon.close()


def test_daemon_without_inspect_reports_no_counts(tmp_path):
    daemon = SweepDaemon(executor=MockExecutor(), listen=False,
                         store_dir=str(tmp_path))
    frames = []
    job = daemon.submit(SweepSpec(workloads=["compute_int"], warmup=150,
                                  measure=100,
                                  axes={"core.iq_size": [16, 32]}),
                        use_cache=False, sink=frames.append)
    drain(daemon)
    assert job.done.is_set()
    done = [frame for frame in frames if frame["op"] == "done"][-1]
    assert "anomalies" not in done
    store = ResultStore.for_sweep(tmp_path, job.sweep_id)
    assert store.quarantined_keys() == []
    daemon.close()
