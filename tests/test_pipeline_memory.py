"""Pipeline tests: memory-system interactions."""

from repro.core.params import CoreParams
from repro.core.pipeline import Pipeline

from tests.conftest import make_trace


def build(asm, max_insts=300, memory=None, int_regs=None, params=None):
    trace = make_trace(asm, max_insts=max_insts, memory=memory,
                       int_regs=int_regs)
    return Pipeline(trace, params=params or CoreParams()), trace


def test_pointer_chase_serialises():
    """Dependent loads must see the full memory latency each."""
    mem = {}
    addr = 0x100000
    for i in range(6):
        nxt = 0x100000 + (i + 1) * 0x100000
        mem[addr] = nxt
        addr = nxt
    pipeline, trace = build("""
        ld r1, r1, 0
        ld r1, r1, 0
        ld r1, r1, 0
        ld r1, r1, 0
        halt
    """, memory=mem, int_regs={"r1": 0x100000})
    stats = pipeline.run()
    # 4 serial DRAM accesses at ~226 cycles each
    assert stats.cycles >= 4 * 200


def test_independent_misses_overlap():
    pipeline, _ = build("""
        li r1, 0x100000
        li r2, 0x200000
        li r3, 0x300000
        li r4, 0x400000
        ld r5, r1, 0
        ld r6, r2, 0
        ld r7, r3, 0
        ld r8, r4, 0
        halt
    """)
    stats = pipeline.run()
    # 4 overlapped misses: far less than 4 serial latencies
    assert stats.cycles < 2 * 226 + 100
    assert stats.extra["avg_outstanding"] > 0.5


def test_same_block_loads_merge():
    pipeline, _ = build("""
        li r1, 0x500000
        ld r2, r1, 0
        ld r3, r1, 8
        ld r4, r1, 16
        halt
    """)
    stats = pipeline.run()
    assert pipeline.hierarchy.stats.mshr_merges >= 2
    assert stats.committed == 5


def test_mshr_limit_throttles_mlp():
    asm_lines = ["li r1, 0x100000"]
    for i in range(12):
        asm_lines.append(f"li r{2 + (i % 8)}, {0x100000 * (i + 1)}")
        asm_lines.append(f"ld r10, r{2 + (i % 8)}, 0")
    asm_lines.append("halt")
    asm = "\n".join(asm_lines)

    limited = CoreParams()
    limited.mem.mshrs = 1
    unlimited = CoreParams()
    unlimited.mem.mshrs = None

    p1, _ = build(asm, params=limited)
    p2, _ = build(asm, params=unlimited)
    cycles_limited = p1.run().cycles
    cycles_unlimited = p2.run().cycles
    assert cycles_limited > cycles_unlimited * 2


def test_memory_violation_detected_and_penalised():
    """A load speculating past an unknown-address older store to the
    same word must be flagged when the store resolves."""
    asm = """
        li r2, 77
        li r3, 0x600000
        ld r4, r3, 0        # slow: r3's value known but cold miss
        addx: add r5, r4, r3
        st r2, r5, 0        # address depends on the slow load
        ld r6, r1, 0        # speculates past the unknown store
        add r7, r6, r6
        halt
    """
    # make the store address == the speculating load address:
    # r5 = mem[0x600000] + r3; set mem so r5 == r1 region
    memory = {0x600000: 0x100000 - 0x600000}
    pipeline, _ = build(asm.replace("addx: ", ""), memory=memory,
                        int_regs={"r1": 0x100000})
    stats = pipeline.run()
    assert stats.memory_violations >= 1
    assert stats.committed == 8


def test_memdep_predictor_trains_on_violations():
    body = """
        li r2, 5
        li r3, 0x700000
        ld r4, r3, 0
        add r5, r4, r3
        st r2, r5, 0
        ld r6, r1, 0
        add r7, r6, r6
    """
    asm = "li r9, 0\nli r10, 6\nloop:\n" + body + """
        addi r9, r9, 1
        blt r9, r10, loop
        halt
    """
    memory = {0x700000: 0x100000 - 0x700000}
    pipeline, trace = build(asm, memory=memory, int_regs={"r1": 0x100000},
                            max_insts=200)
    stats = pipeline.run()
    assert stats.memory_violations >= 1
    # the predictor must have learned the (load, store) pair
    store_pc = next(d.pc for d in trace if d.is_store)
    load_pc = next(d.pc for d in trace
                   if d.is_load and d.addr == 0x100000)
    assert pipeline.memdep.must_wait(load_pc, store_pc)


def test_prefetcher_reduces_stream_time():
    asm = """
        li r1, 0x800000
        li r3, 0
        li r4, 120
    loop:
        ld r2, r1, 0
        addi r1, r1, 64
        addi r3, r3, 1
        blt r3, r4, loop
        halt
    """
    with_pf = CoreParams()
    without_pf = CoreParams()
    without_pf.mem.prefetch_degree = 0
    p1, _ = build(asm, params=with_pf, max_insts=600)
    p2, _ = build(asm, params=without_pf, max_insts=600)
    fast = p1.run().cycles
    slow = p2.run().cycles
    assert fast < slow


def test_store_commit_installs_block():
    pipeline, _ = build("""
        li r1, 0x900000
        li r2, 3
        st r2, r1, 0
        halt
    """)
    pipeline.run()
    assert pipeline.hierarchy.l1d.probe(0x900000 >> 6)


def test_outstanding_stat_small_for_cache_resident():
    pipeline, _ = build("""
        li r1, 0x1000
        li r3, 0
        li r4, 400
    loop:
        ld r2, r1, 0
        addi r3, r3, 1
        blt r3, r4, loop
        halt
    """, max_insts=1400)
    stats = pipeline.run()
    # only the single cold miss contributes to the integral
    assert stats.extra["avg_outstanding"] < 0.5
