"""The ``repro serve`` sweep daemon: fair scheduling, event/result
streaming, durable per-sweep stores, crash-resume, and end-to-end
equivalence with a serial run."""

from pathlib import Path

import pytest

from repro.api import (MockExecutor, ResultStore, Session, SweepDaemon,
                       SweepSpec, WorkerServer, submit_sweep)
from repro.api.remote.protocol import format_address


def make_spec(workload="compute_int", points=4):
    sizes = [16, 32, 48, 64, 80, 96, 112, 128][:points]
    return SweepSpec(workloads=[workload], warmup=150, measure=100,
                     axes={"core.iq_size": sizes})


def drain(daemon):
    """Drive the scheduler synchronously until no job has work."""
    while True:
        batch = daemon._collect_batch()
        if not batch:
            return
        daemon._run_batch(batch)


# ------------------------------------------------------ fair scheduling
def test_round_robin_interleaves_concurrent_sweeps():
    mock = MockExecutor()
    daemon = SweepDaemon(executor=mock, listen=False, batch_size=4)
    job_a = daemon.submit(make_spec("compute_int", 4), use_cache=False)
    job_b = daemon.submit(make_spec("stream_triad", 4), use_cache=False)
    drain(daemon)
    assert job_a.done.is_set() and job_b.done.is_set()
    assert job_a.completed == 4 and job_b.completed == 4
    # each 4-point batch takes one point per active job per round:
    # strict A/B alternation, so neither sweep starves the other
    workloads = [workload for _, workload in mock.dispatched]
    assert workloads[:4] in (
        ["compute_int", "stream_triad"] * 2,
        ["stream_triad", "compute_int"] * 2)
    assert workloads.count("compute_int") == 4
    assert workloads.count("stream_triad") == 4
    daemon.close()


def test_rotation_origin_advances_between_batches():
    mock = MockExecutor()
    daemon = SweepDaemon(executor=mock, listen=False, batch_size=1)
    daemon.submit(make_spec("compute_int", 2), use_cache=False)
    daemon.submit(make_spec("stream_triad", 2), use_cache=False)
    drain(daemon)
    # batch_size 1 + rotating origin: no job owns the front slot
    workloads = [workload for _, workload in mock.dispatched]
    assert workloads[0] != workloads[1]
    daemon.close()


# ------------------------------------------------- streamed frames
def test_sink_receives_events_results_and_done():
    mock = MockExecutor()
    daemon = SweepDaemon(executor=mock, listen=False)
    frames = []
    job = daemon.submit(make_spec(points=2), use_cache=False,
                        sink=frames.append)
    drain(daemon)
    assert job.done.is_set()
    ops = [frame["op"] for frame in frames]
    assert ops.count("result") == 2
    assert ops[-1] == "done"
    done = frames[-1]
    assert done["points"] == 2 and done["completed"] == 2
    assert done["failures"] == 0
    events = [frame["event"] for frame in frames
              if frame["op"] == "event"]
    # event indexes are rewritten to the sweep's expansion order
    assert {event["index"] for event in events} == {0, 1}
    assert {event["kind"] for event in events} >= {"started",
                                                   "finished"}
    daemon.close()


def test_client_disconnect_keeps_the_sweep_running(tmp_path):
    mock = MockExecutor()
    daemon = SweepDaemon(executor=mock, listen=False,
                         store_dir=str(tmp_path))

    def broken_sink(frame):
        raise OSError("client went away")

    job = daemon.submit(make_spec(points=3), use_cache=False,
                        sink=broken_sink)
    drain(daemon)
    assert job.done.is_set()
    assert job.completed == 3  # submit-and-forget: points all landed
    store = ResultStore.for_sweep(tmp_path, job.sweep_id)
    assert len(store) == 3
    daemon.close()


# --------------------------------------------------- socket round trip
def test_client_submission_over_the_socket():
    mock = MockExecutor()
    with SweepDaemon(executor=mock).start() as daemon:
        events = []
        results = submit_sweep(format_address(daemon.address),
                               make_spec(points=3), use_cache=False,
                               on_event=events.append)
    assert len(results) == 3
    assert all(result.backend == "mock" for result in results)
    assert {event.kind for event in events} >= {"submitted", "started",
                                                "finished"}


def test_daemon_rejects_bad_specs():
    with SweepDaemon(executor=MockExecutor()).start() as daemon:
        with pytest.raises(RuntimeError, match="bad sweep spec"):
            submit_sweep(format_address(daemon.address),
                         SweepSpec(workloads=[]))


# ------------------------------------------------ durability / resume
def test_store_resume_across_daemon_restarts(tmp_path):
    spec = make_spec(points=3)
    with SweepDaemon(executor=MockExecutor(),
                     store_dir=str(tmp_path)).start() as daemon:
        first = submit_sweep(format_address(daemon.address), spec,
                             use_cache=False)
    assert len(first) == 3
    store_files = list(Path(tmp_path).glob("sweep-*.jsonl"))
    assert [p.name for p in store_files] == \
        [f"sweep-{spec.sweep_id()}.jsonl"]
    # a fresh daemon over the same directory serves everything from
    # the store: zero dispatches, sources say so
    replacement = MockExecutor()
    with SweepDaemon(executor=replacement,
                     store_dir=str(tmp_path)).start() as daemon:
        second = submit_sweep(format_address(daemon.address), spec,
                              use_cache=False)
    assert replacement.dispatched == []
    assert {result.source for result in second} == {"store"}
    assert [r.stats for r in first] == [r.stats for r in second]


# ------------------------------------------------ end-to-end equivalence
def test_daemon_over_worker_fleet_matches_serial(tmp_path):
    spec = make_spec(points=4)
    with WorkerServer(session=Session(cache_dir=str(tmp_path / "w0")),
                      heartbeat_interval=0.2) as w0, \
            WorkerServer(session=Session(cache_dir=str(tmp_path / "w1")),
                         heartbeat_interval=0.2) as w1:
        w0.start()
        w1.start()
        with SweepDaemon(workers=[w0.address, w1.address],
                         store_dir=str(tmp_path / "stores")
                         ).start() as daemon:
            results = submit_sweep(format_address(daemon.address),
                                   spec, use_cache=False)
    with Session(cache_dir=str(tmp_path / "serial")) as session:
        baseline = session.sweep(spec, use_cache=False)
    assert [r.stats for r in results] == [r.stats for r in baseline]
    store = ResultStore.for_sweep(tmp_path / "stores", spec.sweep_id())
    for expected in baseline:
        row = store.get(expected.key)
        assert row is not None and row.stats == expected.stats
