"""Unit tests for the text assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import OpClass


def test_basic_program():
    program = assemble("""
        li r1, 5
        addi r1, r1, 1
        halt
    """)
    assert len(program) == 3
    assert program[0].imm == 5
    assert program[1].srcs == ("r1",)


def test_labels_resolve():
    program = assemble("""
    top:
        addi r1, r1, 1
        bne r1, r2, top
        halt
    """)
    assert program.labels["top"] == 0
    assert program[1].target == 0


def test_forward_label():
    program = assemble("""
        beqz r1, end
        addi r1, r1, 1
    end:
        halt
    """)
    assert program[0].target == 2


def test_store_operand_order():
    program = assemble("st r5, r6, 16")
    inst = program[0]
    # srcs = (base, data)
    assert inst.srcs == ("r6", "r5")
    assert inst.imm == 16


def test_load_displacement():
    program = assemble("ld r1, r2, -8")
    assert program[0].imm == -8
    assert program[0].srcs == ("r2",)


def test_indexed_load():
    program = assemble("ldx r1, r2, r3")
    assert program[0].srcs == ("r2", "r3")


def test_comments_and_blank_lines():
    program = assemble("""
        # full-line comment
        li r1, 1   # trailing comment
        ; alt comment
        halt
    """)
    assert len(program) == 2


def test_hex_immediates():
    program = assemble("li r1, 0xFF")
    assert program[0].imm == 255


def test_unknown_opcode():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1, r2")


def test_undefined_label():
    with pytest.raises(AssemblerError):
        assemble("j nowhere")


def test_duplicate_label():
    with pytest.raises(AssemblerError):
        assemble("""
        a:
            nop
        a:
            halt
        """)


def test_empty_program_rejected():
    with pytest.raises(AssemblerError):
        assemble("   \n  # nothing\n")


def test_bad_immediate():
    with pytest.raises(AssemblerError):
        assemble("li r1, fnord")


def test_missing_destination():
    with pytest.raises(AssemblerError):
        assemble("add")


def test_error_reports_line_number():
    try:
        assemble("nop\nbogus r1\n")
    except AssemblerError as exc:
        assert "line 2" in str(exc)
    else:
        pytest.fail("expected AssemblerError")


def test_branch_classes():
    program = assemble("""
    loop:
        blt r1, r2, loop
        j loop
        halt
    """)
    assert program[0].op_class is OpClass.BRANCH
    assert program[1].op_class is OpClass.JUMP


def test_listing_contains_labels():
    program = assemble("""
    main:
        nop
        halt
    """)
    listing = program.listing()
    assert "main:" in listing
    assert "nop" in listing
