"""Unit tests for the online sweep inspector: stat invariants,
outlier baselines, operational alarms under a fake clock, anomaly
sinks, and the ``inspect=`` argument normalisation."""

import pytest

from repro.api import (InspectorConfig, ResultStore, SimConfig,
                       SimResult, SweepInspector, stat_invariants)
from repro.api.exec import (EVENT_ANOMALY, EVENT_FINISHED,
                            EVENT_RETRIED, EVENT_STARTED,
                            EVENT_SUBMITTED, ExecEvent)
from repro.api.inspect import as_inspector
from repro.core.params import baseline_params
from repro.ltp.config import no_ltp


def make_result(workload="compute_int", measure=100, cpi=2.0,
                **extra_stats):
    config = SimConfig(workload=workload, core=baseline_params(),
                       ltp=no_ltp(), warmup=50, measure=measure)
    cycles = int(cpi * measure)
    stats = {"cpi": measure and cycles / measure, "ipc": measure / cycles,
             "cycles": cycles, "committed": measure,
             "workload": workload}
    stats.update(extra_stats)
    return SimResult(config=config, stats=stats, key=config.key())


def event(kind, key="k0", workload="compute_int", index=0, **kwargs):
    return ExecEvent(kind=kind, key=key, workload=workload,
                     index=index, **kwargs)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# ----------------------------------------------------- stat invariants
def test_invariants_accept_a_clean_result():
    assert stat_invariants(make_result()) == []


@pytest.mark.parametrize("tamper, fragment", [
    ({"committed": 107}, "exceeds the measure window"),
    ({"committed": 0}, "committed=0"),
    ({"cycles": 0}, "cycles=0 < 1"),
    ({"renamed": 93}, "renamed=93 != committed"),
    ({"ipc": 3.5}, "ipc=3.5 inconsistent"),
    ({"cpi": 0.01}, "cpi=0.01 inconsistent"),
    ({"ltp_parked": 5, "ltp_released": 3},
     "ltp_parked=5 != ltp_released=3"),
    ({"mispredicts": -1}, "negative counter mispredicts"),
])
def test_invariants_flag_broken_accounting(tamper, fragment):
    result = make_result()
    result.stats.update(tamper)
    problems = stat_invariants(result)
    assert any(fragment in problem for problem in problems)


def test_invariants_flag_occupancy_over_capacity():
    result = make_result()
    result.stats["peak_rob"] = result.config.core.rob_size + 1
    problems = stat_invariants(result)
    assert any("peak_rob" in problem and "exceeds size" in problem
               for problem in problems)


def test_invariants_tolerate_sparse_stats():
    """Fabricated/historical rows without the optional counters pass."""
    result = make_result()
    result.stats.pop("cycles")
    result.stats.pop("ipc")
    result.stats.pop("cpi")
    assert stat_invariants(result) == []


# --------------------------------------------------------- observation
def test_observe_quarantines_invariant_violations(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    inspector = SweepInspector(store=store)
    raised = inspector.observe(make_result(committed=107), index=3)
    assert [a.check for a in raised] == ["invariant"]
    assert raised[0].quarantine
    assert raised[0].index == 3
    assert inspector.quarantined == [raised[0].key]
    # the verdict is durable: the store holds the annotation row
    assert store.quarantined(raised[0].key)
    store.close()


def test_observe_flags_consistent_outliers_after_baseline():
    inspector = SweepInspector()
    for _ in range(5):
        assert inspector.observe(make_result(cpi=2.0)) == []
    # a *consistent* point (no invariant trips) far off the baseline
    raised = inspector.observe(make_result(cpi=1.0))
    assert [a.check for a in raised] == ["outlier"]
    assert raised[0].quarantine
    assert "ipc" in raised[0].values
    # the outlier never joins the baseline: the next clean point passes
    assert inspector.observe(make_result(cpi=2.0)) == []


def test_outliers_need_a_minimum_baseline():
    inspector = SweepInspector()
    for _ in range(4):  # one short of baseline_min
        inspector.observe(make_result(cpi=2.0))
    assert inspector.observe(make_result(cpi=1.0)) == []


def test_baselines_are_per_workload():
    inspector = SweepInspector()
    for _ in range(5):
        inspector.observe(make_result("compute_int", cpi=2.0))
    # a different workload starts its own baseline: nothing to flag
    assert inspector.observe(make_result("stream_triad", cpi=1.0)) == []


# --------------------------------------------------- operational alarms
def test_straggler_alarm_flags_latency_outliers():
    clock = FakeClock()
    inspector = SweepInspector(clock=clock)
    for i in range(6):
        inspector(event(EVENT_STARTED, key=f"k{i}", index=i))
        clock.now += 0.1
        inspector(event(EVENT_FINISHED, key=f"k{i}", index=i))
    inspector(event(EVENT_STARTED, key="slow", index=6))
    clock.now += 30.0
    inspector(event(EVENT_FINISHED, key="slow", index=6))
    checks = [a.check for a in inspector.anomalies]
    assert checks == ["straggler"]
    straggler = inspector.anomalies[0]
    assert straggler.key == "slow"
    assert not straggler.quarantine  # the data is fine, the host is not


def test_retry_rate_alarm_latches_once():
    inspector = SweepInspector(clock=FakeClock())
    for i in range(2):
        inspector(event(EVENT_STARTED, key=f"k{i}", index=i))
    for _ in range(6):
        inspector(event(EVENT_RETRIED, key="k0", error="boom"))
    flagged = [a for a in inspector.anomalies
               if a.check == "retry-rate"]
    assert len(flagged) == 1
    assert not flagged[0].quarantine


def test_dead_shard_alarm_fires_on_silence():
    clock = FakeClock()
    inspector = SweepInspector(clock=clock)
    inspector(event(EVENT_SUBMITTED, key="k0", shard=1))
    inspector(event(EVENT_SUBMITTED, key="k1", shard=1))
    # unsharded work (shard None) never counts as a dead shard
    inspector(event(EVENT_SUBMITTED, key="k2"))
    clock.now += inspector.config.dead_shard_timeout_s + 1
    inspector.check_alarms()
    flagged = [a for a in inspector.anomalies
               if a.check == "dead-shard"]
    assert len(flagged) == 1
    assert flagged[0].values["shard"] == 1
    assert flagged[0].values["outstanding"] == 2
    inspector.check_alarms()  # latched: no duplicate alarm
    assert len(inspector.anomalies) == 1


# --------------------------------------------------------------- sinks
def test_anomalies_reach_sinks_as_synthetic_events():
    inspector = SweepInspector()
    seen = []
    inspector.add_sink(seen.append)
    inspector.add_sink(seen.append)  # deduped: delivered once
    inspector.observe(make_result(committed=107))
    assert len(seen) == 1
    assert seen[0].kind == EVENT_ANOMALY
    assert seen[0].error.startswith("invariant:")
    inspector.remove_sink(seen.append)
    inspector.observe(make_result(committed=108))
    assert len(seen) == 1


def test_broken_sink_does_not_fail_the_sweep():
    inspector = SweepInspector()

    def explode(_event):
        raise RuntimeError("broken renderer")

    inspector.add_sink(explode)
    raised = inspector.observe(make_result(committed=107))
    assert len(raised) == 1  # the verdict still lands


def test_on_anomaly_callback_receives_annotations():
    seen = []
    inspector = SweepInspector(on_anomaly=seen.append)
    inspector.observe(make_result(committed=107))
    assert [a.check for a in seen] == ["invariant"]


# ------------------------------------------------------------ reporting
def test_summary_counts_events_and_anomalies():
    clock = FakeClock()
    inspector = SweepInspector(clock=clock)
    inspector(event(EVENT_SUBMITTED, key="k0", shard=0))
    inspector(event(EVENT_STARTED, key="k0", shard=0))
    clock.now += 2.0
    inspector(event(EVENT_FINISHED, key="k0", shard=0))
    inspector.observe(make_result())
    inspector.observe(make_result(committed=107))
    summary = inspector.summary()
    assert summary["observed"] == 2
    assert summary["finished"] == 1
    assert summary["elapsed_s"] == 2.0
    assert len(summary["anomalies"]) == 1
    assert len(summary["quarantined"]) == 1
    assert summary["shards"]["0"]["finished"] == 1


# ------------------------------------------------------- normalisation
def test_as_inspector_normalises_the_inspect_argument(tmp_path):
    store = ResultStore(tmp_path / "store.jsonl")
    assert as_inspector(None) is None
    assert as_inspector(False) is None
    built = as_inspector(True, store)
    assert isinstance(built, SweepInspector)
    assert built.store is store
    existing = SweepInspector()
    assert as_inspector(existing, store) is existing
    assert existing.store is store  # adopted the drive's store
    bound = SweepInspector(store=store)
    other = ResultStore(tmp_path / "other.jsonl")
    assert as_inspector(bound, other).store is store  # never rebinds
    with pytest.raises(TypeError):
        as_inspector("yes")
    store.close()
    other.close()


def test_inspector_config_overrides_apply():
    config = InspectorConfig(z_threshold=2.0, baseline_min=2,
                             metrics=("ipc",))
    inspector = SweepInspector(config=config)
    inspector.observe(make_result(cpi=2.0))
    inspector.observe(make_result(cpi=2.0))
    raised = inspector.observe(make_result(cpi=1.9))
    assert [a.check for a in raised] == ["outlier"]
    assert list(raised[0].values) == ["ipc"]
