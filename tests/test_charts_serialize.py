"""Tests for ASCII charts and trace serialization."""

import pytest

from repro.harness.charts import bar_chart, series_chart
from repro.isa.serialize import load_trace, save_trace
from repro.workloads import get_workload

from tests.conftest import make_trace


# --------------------------------------------------------------- charts
def test_bar_chart_renders_values():
    text = bar_chart([("a", 10.0), ("bb", -5.0)], width=10, title="T")
    assert "T" in text
    assert "10.0" in text and "-5.0" in text
    assert "<" in text        # negative bars
    assert "#" in text


def test_bar_chart_scales_to_peak():
    text = bar_chart([("x", 100.0), ("y", 50.0)], width=20)
    lines = text.splitlines()
    x_bar = lines[0].count("#")
    y_bar = lines[1].count("#")
    assert x_bar == 20
    assert y_bar == 10


def test_bar_chart_empty_rejected():
    with pytest.raises(ValueError):
        bar_chart([])


def test_bar_chart_zero_values():
    text = bar_chart([("a", 0.0), ("b", 0.0)])
    assert "0.0" in text


def test_series_chart_contains_marks_and_labels():
    text = series_chart(["16", "32", "64"],
                        {"noltp": [-30.0, -10.0, 0.0],
                         "ltp": [-2.0, -1.0, 0.0]},
                        title="sweep")
    assert "sweep" in text
    assert "N=noltp" in text
    assert "L=ltp" in text
    assert "16" in text and "64" in text


def test_series_chart_length_mismatch():
    with pytest.raises(ValueError):
        series_chart(["a"], {"s": [1.0, 2.0]})


def test_series_chart_flat_series():
    text = series_chart(["a", "b"], {"s": [5.0, 5.0]})
    assert "S" in text


# ------------------------------------------------------------ serialize
def test_trace_roundtrip(tmp_path):
    trace = make_trace("""
        li r1, 0x1000
        li r2, 7
        st r2, r1, 0
        ld r3, r1, 0
        beqz r3, end
        addi r3, r3, 1
    end:
        halt
    """)
    workload_path = tmp_path / "trace.jsonl"
    from repro.isa.assembler import assemble
    program = assemble("""
        li r1, 0x1000
        li r2, 7
        st r2, r1, 0
        ld r3, r1, 0
        beqz r3, end
        addi r3, r3, 1
    end:
        halt
    """)
    count = save_trace(workload_path, program, trace)
    assert count == len(trace)
    loaded = load_trace(workload_path)
    assert len(loaded) == len(trace)
    for a, b in zip(trace, loaded):
        assert a.seq == b.seq
        assert a.pc == b.pc
        assert a.src_producers == b.src_producers
        assert a.addr == b.addr
        assert a.taken == b.taken
        assert a.inst.opcode == b.inst.opcode


def test_loaded_trace_runs_identically(tmp_path):
    workload = get_workload("compute_fp")
    trace = workload.trace(300)
    path = tmp_path / "wl.jsonl"
    save_trace(path, workload.program, trace)
    loaded = load_trace(path)

    from repro.core.pipeline import Pipeline
    original = Pipeline(trace).run()
    replayed = Pipeline(loaded).run()
    assert original.cycles == replayed.cycles
    assert original.committed == replayed.committed


def test_version_check(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"version": 99, "program": [], "labels": {}}\n')
    with pytest.raises(ValueError):
        load_trace(path)
