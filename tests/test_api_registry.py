"""Tests for the experiment registry and the shared LTP preset table."""

import pytest

from repro.api import (Experiment, experiment, experiment_names,
                       get_experiment, ltp_preset, ltp_preset_names,
                       renderer)
from repro.api import registry as registry_mod
from repro.ltp.config import LTP_PRESETS, proposed_ltp

BUILTINS = {"table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig10",
            "fig11", "uit", "predictor", "sensitivity", "alternatives",
            "wakeup", "headline"}


def test_builtin_experiments_registered():
    assert BUILTINS <= set(experiment_names())


def test_get_experiment_resolves_runner_and_renderer():
    exp = get_experiment("table1")
    assert isinstance(exp, Experiment)
    assert exp.renderer is not None
    assert exp.description  # first docstring line
    result = exp.run(jobs=1)
    assert "3.4 GHz" in exp.render(result)


def test_get_experiment_unknown_name():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_decorators_register_and_protect():
    @experiment("_test_dummy", description="a dummy")
    def dummy_runner():
        return {"answer": 42}

    try:
        assert "_test_dummy" in experiment_names()
        exp = get_experiment("_test_dummy")
        assert exp.description == "a dummy"
        assert exp.run(jobs=1) == {"answer": 42}
        # no renderer yet: render falls back to repr
        assert exp.render({"answer": 42}) == repr({"answer": 42})

        @renderer("_test_dummy")
        def dummy_render(result):
            return f"answer={result['answer']}"

        assert exp.render({"answer": 42}) == "answer=42"

        with pytest.raises(ValueError, match="already registered"):
            experiment("_test_dummy")(dummy_runner)
        with pytest.raises(ValueError, match="already has a renderer"):
            renderer("_test_dummy")(dummy_render)
    finally:
        registry_mod._REGISTRY.pop("_test_dummy", None)


def test_renderer_requires_runner_first():
    with pytest.raises(ValueError, match="register the runner first"):
        renderer("_test_orphan")(lambda result: "")


# ------------------------------------------------------------- presets
def test_ltp_presets_are_the_single_registry():
    from repro.cli import LTP_CHOICES
    assert LTP_CHOICES is LTP_PRESETS
    assert set(ltp_preset_names()) == set(LTP_PRESETS)


def test_ltp_preset_instantiates_fresh_configs():
    a = ltp_preset("proposed")
    b = ltp_preset("proposed")
    assert a == proposed_ltp() == b
    assert a is not b  # fresh instance per call; safe to mutate
    assert ltp_preset("limit-nrnu").mode == "nr+nu"
    assert ltp_preset("none").enabled is False
    assert ltp_preset("wib").defer_registers is False


def test_ltp_preset_unknown_name():
    with pytest.raises(KeyError, match="unknown LTP preset"):
        ltp_preset("turbo")
