"""The remote execution subsystem: wire protocol, worker server,
remote executor fault tolerance, and the subprocess acceptance proof
(worker fleet + mid-sweep kill == serial, bit for bit)."""

import json
import os
import socket
import struct
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api import (RemoteExecutor, ResultStore, Session, SweepSpec,
                       WorkerFleetError, WorkerServer)
from repro.api.remote.protocol import (MAX_FRAME, ProtocolError,
                                       format_address, parse_address,
                                       recv_frame, send_frame)

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_spec(points=2):
    return SweepSpec(workloads=["compute_int"], warmup=150, measure=100,
                     axes={"core.iq_size": [16, 32, 48, 64, 80, 96,
                                            112, 128][:points]})


def dead_address():
    """An address nothing listens on (bound, resolved, closed)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()[:2]
    probe.close()
    return address


# ---------------------------------------------------------- protocol
def test_parse_and_format_address():
    assert parse_address("127.0.0.1:7777") == ("127.0.0.1", 7777)
    assert format_address(("localhost", 9)) == "localhost:9"
    for bad in ("no-port", ":7777", "host:", "host:notanint",
                "host:70000"):
        with pytest.raises(ValueError, match="bad address"):
            parse_address(bad)


def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    payload = {"op": "run", "config": {"workload": "x"}, "n": 3}
    send_frame(left, payload)
    send_frame(left, {"op": "ping"})
    assert recv_frame(right) == payload
    assert recv_frame(right) == {"op": "ping"}
    left.close()
    assert recv_frame(right) is None  # clean EOF between frames
    right.close()


def test_torn_frame_raises_protocol_error():
    left, right = socket.socketpair()
    left.sendall(struct.pack("!I", 100) + b'{"op": "tr')
    left.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        recv_frame(right)
    right.close()


def test_oversized_and_malformed_frames_rejected():
    left, right = socket.socketpair()
    left.sendall(struct.pack("!I", MAX_FRAME + 1))
    with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
        recv_frame(right)
    left2, right2 = socket.socketpair()
    left2.sendall(struct.pack("!I", 4) + b"nope")
    with pytest.raises(ProtocolError, match="not valid JSON"):
        recv_frame(right2)
    left3, right3 = socket.socketpair()
    left3.sendall(struct.pack("!I", 2) + b"[]")
    with pytest.raises(ProtocolError, match="must be an object"):
        recv_frame(right3)
    for sock in (left, right, left2, right2, left3, right3):
        sock.close()


# ------------------------------------------------------- worker server
@pytest.fixture
def worker(tmp_path):
    with WorkerServer(session=Session(cache_dir=str(tmp_path / "w")),
                      heartbeat_interval=0.1) as server:
        server.start()
        yield server


def connect_to(server):
    sock = socket.create_connection(server.address, timeout=10)
    sock.settimeout(10)
    return sock


def test_worker_ping_and_unknown_op(worker):
    sock = connect_to(worker)
    send_frame(sock, {"op": "ping"})
    assert recv_frame(sock) == {"op": "pong", "ok": True}
    send_frame(sock, {"op": "teleport"})
    reply = recv_frame(sock)
    assert reply["ok"] is False and "teleport" in reply["error"]
    sock.close()


def test_worker_runs_config_with_heartbeats(worker, tmp_path):
    config = make_spec(1).expand()[0]
    sock = connect_to(worker)
    send_frame(sock, {"op": "run", "id": config.key(),
                      "config": config.to_dict(), "use_cache": False})
    heartbeats = 0
    while True:
        frame = recv_frame(sock)
        if frame["op"] == "heartbeat":
            heartbeats += 1
            continue
        break
    assert frame["op"] == "done" and frame["ok"] is True
    assert frame["id"] == config.key()
    expected = Session(cache_dir=str(tmp_path / "serial")).run(
        config, use_cache=False)
    assert frame["stats"] == expected.stats
    sock.close()


def test_worker_reports_simulation_errors(worker):
    config = make_spec(1).expand()[0]
    payload = config.to_dict()
    payload["workload"] = "no_such_workload"
    sock = connect_to(worker)
    send_frame(sock, {"op": "run", "id": "x", "config": payload,
                      "use_cache": False})
    while True:
        frame = recv_frame(sock)
        if frame["op"] != "heartbeat":
            break
    assert frame["op"] == "done" and frame["ok"] is False
    assert "no_such_workload" in frame["error"]
    sock.close()


# ------------------------------------------------------ remote executor
def test_unreachable_worker_is_tolerated(worker, tmp_path):
    """A fleet with one dead member still lands every point."""
    spec = make_spec(3)
    executor = RemoteExecutor([dead_address(), worker.address],
                              connect_timeout=2.0)
    with Session(cache_dir=str(tmp_path / "s1")) as session:
        results = session.sweep(spec, use_cache=False, backend=executor)
    with Session(cache_dir=str(tmp_path / "s2")) as session:
        baseline = session.sweep(spec, use_cache=False)
    assert [r.stats for r in results] == [r.stats for r in baseline]


def test_all_workers_unreachable_raises_fleet_error(tmp_path):
    executor = RemoteExecutor([dead_address(), dead_address()],
                              connect_timeout=2.0)
    with Session(cache_dir=str(tmp_path)) as session:
        with pytest.raises(WorkerFleetError, match="none of the 2"):
            session.sweep(make_spec(2), use_cache=False,
                          backend=executor)


def test_executor_reconnects_across_batches(worker, tmp_path):
    """Fresh links per drive: one executor serves sequential sweeps."""
    executor = RemoteExecutor([worker.address])
    with Session(cache_dir=str(tmp_path / "s"),
                 backend=executor) as session:
        first = session.sweep(make_spec(2), use_cache=False)
        second = session.sweep(make_spec(2), use_cache=False)
    assert [r.stats for r in first] == [r.stats for r in second]


# --------------------------------------------- subprocess acceptance
def spawn_worker_process(cache_dir):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src if not env.get("PYTHONPATH") \
        else os.pathsep.join([src, env["PYTHONPATH"]])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen",
         "127.0.0.1:0", "--cache-dir", str(cache_dir),
         "--heartbeat", "0.2"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = (proc.stdout.readline() or "").strip()
    assert line.startswith("worker listening on "), line
    return proc, parse_address(line.rsplit(" ", 1)[-1])


def test_worker_processes_with_mid_sweep_kill_match_serial(tmp_path):
    """Two real worker processes; one dies mid-sweep; the store is
    bit-identical to a serial run (the acceptance criterion)."""
    spec = make_spec(8)
    procs = []
    try:
        for i in range(2):
            procs.append(spawn_worker_process(tmp_path / f"cache{i}"))
        executor = RemoteExecutor(
            [address for _, address in procs],
            max_retries=2, heartbeat_timeout=5.0)
        victim = procs[0][0]
        killed = threading.Event()

        def kill_on_first_finish(event):
            if event.kind == "finished" and not killed.is_set():
                killed.set()
                victim.kill()

        store = ResultStore(tmp_path / "remote.jsonl")
        with Session(cache_dir=str(tmp_path / "session")) as session:
            results = session.sweep(spec, use_cache=False,
                                    backend=executor, store=store,
                                    progress=kill_on_first_finish)
        store.close()
        assert killed.is_set()
    finally:
        for proc, _ in procs:
            if proc.poll() is None:
                proc.kill()
    with Session(cache_dir=str(tmp_path / "serial")) as session:
        baseline = session.sweep(spec, use_cache=False)
    assert [r.stats for r in results] == [r.stats for r in baseline]
    # the durable store agrees point for point (full stats equality)
    reloaded = ResultStore(tmp_path / "remote.jsonl")
    assert reloaded.sweep_id == spec.sweep_id()
    for expected in baseline:
        row = reloaded.get(expected.key)
        assert row is not None and row.stats == expected.stats


def test_worker_cli_rejects_bad_listen_address(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "worker", "--listen", "nope"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 2
    assert "bad address" in proc.stdout


def test_store_written_by_remote_sweep_round_trips(worker, tmp_path):
    spec = make_spec(2)
    executor = RemoteExecutor([worker.address])
    store = ResultStore(tmp_path / "store.jsonl")
    with Session(cache_dir=str(tmp_path / "s")) as session:
        session.sweep(spec, use_cache=False, backend=executor,
                      store=store)
    store.close()
    rows = [json.loads(line)
            for line in open(tmp_path / "store.jsonl") if line.strip()]
    assert rows[0]["record"] == "header"
    assert all(row.get("backend") == "remote"
               for row in rows[1:])
