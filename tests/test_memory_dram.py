"""Unit tests for the DRAM channel model."""

import pytest

from repro.memory.dram import DRAMChannel


def test_basic_latency():
    dram = DRAMChannel(latency=190, issue_interval=6)
    timing = dram.schedule(100)
    assert timing.start_cycle == 100
    assert timing.complete_cycle == 290


def test_bandwidth_spacing():
    dram = DRAMChannel(latency=190, issue_interval=6)
    first = dram.schedule(0)
    second = dram.schedule(0)
    third = dram.schedule(0)
    assert second.start_cycle == first.start_cycle + 6
    assert third.start_cycle == second.start_cycle + 6


def test_idle_channel_resets_spacing():
    dram = DRAMChannel(latency=100, issue_interval=6)
    dram.schedule(0)
    late = dram.schedule(500)
    assert late.start_cycle == 500


def test_early_wakeup_lead():
    dram = DRAMChannel(latency=190, issue_interval=6, wakeup_lead=8)
    timing = dram.schedule(0)
    assert timing.tag_known_cycle == timing.complete_cycle - 8


def test_queue_delay_statistics():
    dram = DRAMChannel(latency=100, issue_interval=10)
    dram.schedule(0)
    dram.schedule(0)   # waits 10
    dram.schedule(0)   # waits 20
    assert dram.accesses == 3
    assert dram.average_queue_delay == pytest.approx(10.0)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DRAMChannel(latency=0)
    with pytest.raises(ValueError):
        DRAMChannel(latency=100, issue_interval=0)
    with pytest.raises(ValueError):
        DRAMChannel(latency=100, wakeup_lead=101)
