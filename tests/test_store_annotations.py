"""Tests for annotation rows in the result store: round-trips,
quarantine timelines, torn-write repair, old/new reader compatibility,
and merge semantics."""

import json

from repro.api import (Annotation, ResultStore, SimConfig, SimResult,
                       merge_stores)
from repro.core.params import baseline_params
from repro.ltp.config import no_ltp


def make_config(workload="compute_int", measure=100):
    return SimConfig(workload=workload, core=baseline_params(),
                     ltp=no_ltp(), warmup=50, measure=measure)


def make_result(workload="compute_int", measure=100, cpi=2.0):
    config = make_config(workload, measure)
    stats = {"cpi": cpi, "ipc": 1.0 / cpi, "cycles": int(cpi * measure),
             "committed": measure, "workload": workload}
    return SimResult(config=config, stats=stats, key=config.key())


def make_annotation(key, check="invariant", quarantine=True, **kwargs):
    return Annotation(key=key, check=check,
                      detail=kwargs.pop("detail", "broken accounting"),
                      quarantine=quarantine, **kwargs)


# -------------------------------------------------------- round-trips
def test_annotation_dict_roundtrip():
    annotation = Annotation(key="abc", check="outlier",
                            detail="ipc=2 vs median 1",
                            workload="compute_int", index=7,
                            quarantine=True,
                            values={"ipc": {"z": 50.0}})
    payload = annotation.to_dict()
    assert payload["record"] == "annotation"
    assert Annotation.from_dict(payload) == annotation


def test_annotation_dict_omits_unset_fields():
    payload = make_annotation("k").to_dict()
    assert "index" not in payload
    assert "values" not in payload
    rebuilt = Annotation.from_dict(payload)
    assert rebuilt.index is None
    assert rebuilt.values == {}


def test_annotations_roundtrip_through_reopen(tmp_path):
    path = tmp_path / "store.jsonl"
    result = make_result()
    noted = make_annotation("alarm:retry-rate", check="retry-rate",
                            quarantine=False, detail="4/6 retries")
    with ResultStore(path, sweep_id="s1") as store:
        store.append(result)
        store.annotate(make_annotation(result.key))
        store.annotate(noted)

    reopened = ResultStore(path)
    assert reopened.sweep_id == "s1"
    assert len(reopened) == 1  # annotations are not result rows
    assert {a.key for a in reopened.annotations()} \
        == {result.key, "alarm:retry-rate"}
    assert reopened.annotation(result.key).check == "invariant"
    assert reopened.quarantined(result.key)
    # a non-quarantine (operational) annotation never quarantines
    assert not reopened.quarantined("alarm:retry-rate")
    assert reopened.quarantined_keys() == [result.key]


# ------------------------------------------------- quarantine timeline
def test_later_result_row_lifts_quarantine(tmp_path):
    path = tmp_path / "store.jsonl"
    bad = make_result(cpi=9.0)
    with ResultStore(path) as store:
        store.append(bad)
        store.annotate(make_annotation(bad.key))
        assert store.quarantined(bad.key)
        # the idempotent add accepts a re-run for a quarantined key
        assert store.add(make_result(cpi=2.0)) is True
        assert not store.quarantined(bad.key)
        # ... and refuses it again once the key is clean
        assert store.add(make_result(cpi=2.0)) is False

    reopened = ResultStore(path)
    assert reopened.quarantined_keys() == []
    assert reopened.get(bad.key).stats["cpi"] == 2.0
    # the annotation row itself survives as the audit trail
    assert reopened.annotation(bad.key) is not None


def test_annotation_last_wins_per_key(tmp_path):
    path = tmp_path / "store.jsonl"
    result = make_result()
    with ResultStore(path) as store:
        store.append(result)
        store.annotate(make_annotation(result.key, check="invariant"))
        store.annotate(make_annotation(result.key, check="outlier",
                                       detail="ipc drift"))
    reopened = ResultStore(path)
    assert len(reopened.annotations()) == 1
    assert reopened.annotation(result.key).check == "outlier"


# ------------------------------------------------------ crash recovery
def test_torn_trailing_annotation_line_is_repaired(tmp_path):
    path = tmp_path / "store.jsonl"
    result = make_result()
    with ResultStore(path) as store:
        store.append(result)
    with open(path, "a") as handle:
        handle.write('{"record": "annotation", "key": "tor')  # crash

    reopened = ResultStore(path)
    assert reopened.skipped_rows == 1
    assert reopened.annotations() == []
    assert len(reopened) == 1
    # the next append starts on a fresh line; everything stays loadable
    reopened.annotate(make_annotation(result.key))
    reopened.close()
    final = ResultStore(path)
    assert final.quarantined_keys() == [result.key]
    assert final.get(result.key).stats == result.stats


def test_annotation_row_missing_fields_is_skipped(tmp_path):
    path = tmp_path / "store.jsonl"
    with ResultStore(path) as store:
        store.append(make_result())
    with open(path, "a") as handle:
        handle.write(json.dumps({"record": "annotation"}) + "\n")
    reopened = ResultStore(path)
    assert reopened.skipped_rows == 1
    assert reopened.annotations() == []


# -------------------------------------------------------- compatibility
def test_result_rows_carry_no_record_tag(tmp_path):
    """Readers that predate annotations key on the absence of a
    ``record`` tag — result rows must never grow one."""
    path = tmp_path / "store.jsonl"
    with ResultStore(path, sweep_id="s1") as store:
        store.append(make_result())
        store.annotate(make_annotation("some-key"))
    rows = [json.loads(line)
            for line in path.read_text().splitlines() if line]
    assert [row.get("record") for row in rows] \
        == ["header", None, "annotation"]


def test_pre_annotation_store_still_parses(tmp_path):
    """A store written before the annotation row kind loads cleanly."""
    path = tmp_path / "store.jsonl"
    result = make_result()
    rows = [{"record": "header", "schema": 1, "sweep_id": "old"},
            result.to_dict()]
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))
    store = ResultStore(path)
    assert store.sweep_id == "old"
    assert store.skipped_rows == 0
    assert store.annotations() == []
    assert store.get(result.key).stats == result.stats


# -------------------------------------------------------------- merge
def test_merge_carries_standing_quarantine(tmp_path):
    flagged = make_result("compute_int")
    clean = make_result("stream_triad")
    with ResultStore(tmp_path / "a.jsonl", sweep_id="s1") as left:
        left.append(flagged)
        left.annotate(make_annotation(flagged.key))
    with ResultStore(tmp_path / "b.jsonl", sweep_id="s1") as right:
        right.append(clean)

    with merge_stores(tmp_path / "merged.jsonl",
                      [tmp_path / "a.jsonl",
                       tmp_path / "b.jsonl"]) as merged:
        assert set(merged.keys()) == {flagged.key, clean.key}
        assert merged.quarantined_keys() == [flagged.key]
    reopened = ResultStore(tmp_path / "merged.jsonl")
    assert reopened.quarantined_keys() == [flagged.key]


def test_merge_drops_lifted_quarantine(tmp_path):
    result = make_result()
    with ResultStore(tmp_path / "a.jsonl", sweep_id="s1") as source:
        source.append(make_result(cpi=9.0))
        source.annotate(make_annotation(result.key))
        source.append(make_result(cpi=2.0))  # the healing re-run

    with merge_stores(tmp_path / "merged.jsonl",
                      [tmp_path / "a.jsonl"]) as merged:
        assert merged.quarantined_keys() == []
        # a lifted data-anomaly annotation is history, not state
        assert merged.annotations() == []
        assert merged.get(result.key).stats["cpi"] == 2.0


def test_merge_keeps_operational_annotations(tmp_path):
    with ResultStore(tmp_path / "a.jsonl", sweep_id="s1") as source:
        source.append(make_result())
        source.annotate(make_annotation(
            "alarm:shard-2", check="dead-shard", quarantine=False,
            detail="shard 2 silent for 600s"))
    with merge_stores(tmp_path / "merged.jsonl",
                      [tmp_path / "a.jsonl"]) as merged:
        assert [a.key for a in merged.annotations()] == ["alarm:shard-2"]
        assert merged.quarantined_keys() == []
